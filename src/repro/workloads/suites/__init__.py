"""Synthetic analogs of the paper's 23 evaluation benchmarks.

The decision tree never reads program text — it only sees sampled memory
behaviour.  Each analog therefore reproduces the *memory behaviour* of its
benchmark: which objects are allocated (and by whom, fixing first-touch
placement), how threads share them, per-phase access patterns and compute
intensity.  The contention outcome per configuration is **emergent** from
the bandwidth model, not scripted; the per-benchmark parameters are chosen
so the interleave-oracle ground truth matches the paper's Table IV/V
classes.

* :mod:`repro.workloads.suites.npb` — NAS Parallel Benchmarks (BT, CG, DC,
  EP, FT, IS, LU, MG, UA, SP);
* :mod:`repro.workloads.suites.parsec` — Blackscholes, Bodytrack, Ferret,
  Fluidanimate, Freqmine, Raytrace, Swaptions, X264, Streamcluster;
* :mod:`repro.workloads.suites.rodinia` — Needleman-Wunsch (NW);
* :mod:`repro.workloads.suites.sequoia` — AMG2006, IRSmk;
* :mod:`repro.workloads.suites.lulesh` — LULESH;
* :mod:`repro.workloads.suites.registry` — one
  :class:`~repro.workloads.suites.registry.BenchmarkSpec` per benchmark
  with its input list and Table V case bookkeeping.
"""

from repro.workloads.suites.registry import (
    BenchmarkSpec,
    BENCHMARKS,
    benchmark,
    benchmark_names,
)

__all__ = ["BenchmarkSpec", "BENCHMARKS", "benchmark", "benchmark_names"]
