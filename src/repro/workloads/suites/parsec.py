"""PARSEC benchmark analogs.

Inputs simSmall / simMedium / simLarge / native scale the working sets
0.1× / 0.25× / 0.5× / 2×.  Seven of the nine are compute-bound or
cache-resident and sit firmly in the ``good`` class; the exceptions:

* **Streamcluster** — the online clustering kernel's ``block`` array
  (the input points) is allocated and filled by the master thread (pages
  on node 0), then read *randomly* by every worker and never written
  again.  That is the paper's flagship RMC case (Section VIII.C) and the
  motivation for the *replicate* optimization.
* **Fluidanimate** — particle grids are partitioned and colocated, but
  every timestep exchanges cell boundaries with neighbours; at native scale
  the exchange bursts get a few configurations detected (4 in Table V)
  while whole-program interleaving stays under the oracle's 10%.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.numasim.cachemodel import PatternKind
from repro.osl.pages import FirstTouch
from repro.workloads.base import ObjectSpec, PhaseSpec, Share, StreamSpec, Workload
from repro.workloads.suites.common import (
    MB,
    THREAD_CAP,
    balanced_accesses,
    compute_bound,
    scale_bytes,
)

__all__ = ["PARSEC_INPUTS", "make_parsec"]

PARSEC_INPUTS = {"simsmall": 0.1, "simmedium": 0.25, "simlarge": 0.5, "native": 2.0}


def _scale(input_name: str) -> float:
    try:
        return PARSEC_INPUTS[input_name]
    except KeyError:
        raise WorkloadError(f"unknown PARSEC input {input_name!r}") from None


def make_blackscholes(input_name: str) -> Workload:
    """Blackscholes: option pricing; compute-bound over a shared buffer.

    The ``buffer`` of option records is master-allocated (node 0) but the
    kernel is arithmetic-dominated, so the few remote samples never imply
    contention — DR-BW still ranks ``buffer`` top by CF, and the paper
    confirms co-locating it buys <1% (Section VIII.G).
    """
    s = _scale(input_name)
    return Workload(
        name="Blackscholes",
        objects=(
            ObjectSpec(name="buffer", size_bytes=scale_bytes(16 * MB, s),
                       site="blackscholes.c:310", policy=FirstTouch(0)),
        ),
        phases=(
            PhaseSpec(
                name="price",
                accesses_per_thread=0.0,
                compute_cycles_per_access=6.0,
                streams=(
                    StreamSpec(object_name="buffer", pattern=PatternKind.SEQUENTIAL,
                               share=Share.CHUNK, passes=32.0),
                ),
            ),
        ),
    ).with_accesses("price", (scale_bytes(16 * MB, s) // 8) * 32.0, THREAD_CAP)


def make_swaptions(input_name: str) -> Workload:
    """Swaptions: Monte-Carlo pricing; tiny per-thread state, pure compute."""
    return compute_bound(
        "Swaptions", scale_bytes(4 * MB, _scale(input_name)), cpi=6.0,
        site="swaptions.cpp:140", passes=64.0,
    )


def make_bodytrack(input_name: str) -> Workload:
    """Bodytrack: particle-filter vision; cache-resident model state."""
    return compute_bound(
        "Bodytrack", scale_bytes(8 * MB, _scale(input_name)), cpi=2.5,
        site="bodytrack/TrackingModel.cpp:88",
    )


def make_ferret(input_name: str) -> Workload:
    """Ferret: similarity search pipeline; indexed lookups, compute-heavy."""
    return compute_bound(
        "Ferret", scale_bytes(8 * MB, _scale(input_name)), cpi=2.2,
        site="ferret/emd.c:57",
    )


def make_freqmine(input_name: str) -> Workload:
    """Freqmine: FP-growth mining; pointer-heavy but cache-friendly trees."""
    return compute_bound(
        "Freqmine", scale_bytes(8 * MB, _scale(input_name)), cpi=2.8,
        site="fp_tree.cpp:1071",
    )


def make_raytrace(input_name: str) -> Workload:
    """Raytrace: BVH traversal; high arithmetic intensity per node visit."""
    return compute_bound(
        "Raytrace", scale_bytes(10 * MB, _scale(input_name)), cpi=3.0,
        site="rtview.cpp:204",
    )


def make_x264(input_name: str) -> Workload:
    """x264: video encode; motion search over colocated frame slices."""
    return compute_bound(
        "X264", scale_bytes(10 * MB, _scale(input_name)), cpi=1.8,
        site="encoder/me.c:195",
    )


def make_fluidanimate(input_name: str) -> Workload:
    """Fluidanimate: SPH fluid; colocated cells with boundary exchange."""
    s = _scale(input_name)
    cells = scale_bytes(12 * MB, s)
    return Workload(
        name="Fluidanimate",
        objects=(
            ObjectSpec(name="cells", size_bytes=cells,
                       site="pthreads.cpp:480", colocate=True),
        ),
        phases=(
            PhaseSpec(
                name="compute_forces",
                accesses_per_thread=0.0,
                compute_cycles_per_access=1.6,
                streams=(
                    StreamSpec(object_name="cells", pattern=PatternKind.SEQUENTIAL,
                               share=Share.CHUNK, passes=40.0, write_fraction=0.3),
                ),
            ),
            PhaseSpec(
                name="exchange",
                accesses_per_thread=0.0,
                compute_cycles_per_access=7.0,
                streams=(
                    StreamSpec(object_name="cells", pattern=PatternKind.SEQUENTIAL,
                               share=Share.ALL, passes=1.0),
                ),
            ),
        ),
    ).with_accesses("compute_forces", (cells // 8) * 40.0, THREAD_CAP).with_accesses(
        "exchange", (cells // 8) * 1.5, THREAD_CAP
    )


def make_streamcluster(input_name: str) -> Workload:
    """Streamcluster: online clustering; random reads of master-allocated points."""
    s = _scale(input_name)
    block = scale_bytes(128 * MB, s)
    point_p = scale_bytes(32 * MB, s)
    centers = scale_bytes(4 * MB, s)
    total, w = balanced_accesses(
        [("block", block, 2.0), ("point_p", point_p, 2.0), ("centers", centers, 8.0)]
    )
    return Workload(
        name="Streamcluster",
        objects=(
            ObjectSpec(name="block", size_bytes=block,
                       site="streamcluster.cpp:1714", policy=FirstTouch(0)),
            ObjectSpec(name="point_p", size_bytes=point_p,
                       site="streamcluster.cpp:1739", policy=FirstTouch(0)),
            ObjectSpec(name="centers", size_bytes=centers,
                       site="streamcluster.cpp:1760", colocate=True),
        ),
        phases=(
            PhaseSpec(
                name="pgain",
                accesses_per_thread=0.0,
                compute_cycles_per_access=0.5,
                streams=(
                    StreamSpec(object_name="block", pattern=PatternKind.RANDOM,
                               share=Share.ALL, weight=w["block"], passes=2.0,
                               chains=8),
                    StreamSpec(object_name="point_p", pattern=PatternKind.RANDOM,
                               share=Share.ALL, weight=w["point_p"], passes=2.0,
                               chains=8),
                    StreamSpec(object_name="centers", pattern=PatternKind.SEQUENTIAL,
                               share=Share.CHUNK, weight=w["centers"], passes=8.0,
                               write_fraction=0.4),
                ),
            ),
        ),
    ).with_accesses("pgain", total, THREAD_CAP)


_PARSEC_BUILDERS = {
    "Blackscholes": make_blackscholes,
    "Swaptions": make_swaptions,
    "Bodytrack": make_bodytrack,
    "Ferret": make_ferret,
    "Freqmine": make_freqmine,
    "Raytrace": make_raytrace,
    "X264": make_x264,
    "Fluidanimate": make_fluidanimate,
    "Streamcluster": make_streamcluster,
}


def make_parsec(name: str, input_name: str) -> Workload:
    """Build one PARSEC analog by name and input."""
    try:
        return _PARSEC_BUILDERS[name](input_name)
    except KeyError:
        raise WorkloadError(f"unknown PARSEC benchmark {name!r}") from None
