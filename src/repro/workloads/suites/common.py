"""Shared helpers for benchmark analogs."""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.numasim.cachemodel import PatternKind
from repro.workloads.base import ObjectSpec, PhaseSpec, Share, StreamSpec, Workload

__all__ = [
    "MB",
    "scale_bytes",
    "compute_bound",
    "chunked_streaming",
]

MB = 1024 * 1024

#: Per-thread simulated-access ceiling for suite workloads (see
#: :mod:`repro.workloads.micro` for the rationale).
THREAD_CAP = 4_000_000.0


def balanced_accesses(
    parts: list[tuple[str, int, float]], element_bytes: int = 8
) -> tuple[float, dict[str, float]]:
    """Total accesses and per-stream weights from (name, bytes, passes).

    Every element of every array is touched ``passes`` times, so the
    phase's total access count and the stream weights follow from the
    sizes — keeping the simulated mix consistent with the declared reuse
    at any input scale.
    """
    if not parts:
        raise WorkloadError("need at least one stream part")
    counts = {name: (size // element_bytes) * passes for name, size, passes in parts}
    total = sum(counts.values())
    if total <= 0:
        raise WorkloadError("streams perform no accesses")
    weights = {name: c / total for name, c in counts.items()}
    # Absorb float drift into the largest weight so they sum to exactly 1.
    biggest = max(weights, key=weights.__getitem__)
    weights[biggest] += 1.0 - sum(weights.values())
    return total, weights


def scale_bytes(base_bytes: int, scale: float) -> int:
    """Scale a working-set size, staying page-positive."""
    out = int(base_bytes * scale)
    if out <= 0:
        raise WorkloadError(f"scaled size {out} from base {base_bytes} x {scale}")
    return out


def compute_bound(
    name: str,
    working_set_bytes: int,
    cpi: float,
    site: str,
    colocate: bool = True,
    passes: float = 16.0,
    element_bytes: int = 8,
) -> Workload:
    """A compute-bound kernel over thread-private chunks.

    The shape shared by EP, Swaptions, Blackscholes-like codes: each thread
    repeatedly walks its own (usually cache-resident) slice with plenty of
    arithmetic per element.  ``colocate`` models parallel initialization
    (OpenMP first-touch distributing pages), the common case for
    well-written NPB kernels.  The total access count follows from the
    element count and pass count, so the simulated mix stays consistent
    with the declared reuse at every input scale.
    """
    total_accesses = (working_set_bytes // element_bytes) * passes
    return Workload(
        name=name,
        objects=(
            ObjectSpec(
                name="data",
                size_bytes=working_set_bytes,
                site=site,
                colocate=colocate,
            ),
        ),
        phases=(
            PhaseSpec(
                name="compute",
                accesses_per_thread=0.0,
                compute_cycles_per_access=cpi,
                streams=(
                    StreamSpec(
                        object_name="data",
                        pattern=PatternKind.SEQUENTIAL,
                        share=Share.CHUNK,
                        passes=passes,
                    ),
                ),
            ),
        ),
    ).with_accesses("compute", total_accesses, THREAD_CAP)


def chunked_streaming(
    name: str,
    arrays: list[tuple[str, int, str]],
    cpi: float,
    colocate: bool = False,
    passes: float = 4.0,
    write_fraction: float = 0.2,
    element_bytes: int = 8,
) -> Workload:
    """Master-allocated arrays streamed chunk-wise by every thread.

    The IRSmk/NW shape: the master thread allocates and initializes
    (first-touch → node 0) and the parallel loops then stream chunks —
    the canonical NUMA pathology.  ``arrays`` is (name, bytes, site).
    """
    if not arrays:
        raise WorkloadError("need at least one array")
    total_accesses = sum(size // element_bytes for _, size, _ in arrays) * passes
    weight = 1.0 / len(arrays)
    weights = [weight] * len(arrays)
    # Make the weights sum to exactly 1 despite float division.
    weights[-1] = 1.0 - weight * (len(arrays) - 1)
    return Workload(
        name=name,
        objects=tuple(
            ObjectSpec(name=n, size_bytes=size, site=site, colocate=colocate)
            for n, size, site in arrays
        ),
        phases=(
            PhaseSpec(
                name="solve",
                accesses_per_thread=0.0,
                compute_cycles_per_access=cpi,
                streams=tuple(
                    StreamSpec(
                        object_name=n,
                        pattern=PatternKind.SEQUENTIAL,
                        share=Share.CHUNK,
                        weight=w,
                        passes=passes,
                        write_fraction=write_fraction,
                    )
                    for (n, _, _), w in zip(arrays, weights)
                ),
            ),
        ),
    ).with_accesses("solve", total_accesses, THREAD_CAP)
