"""NAS Parallel Benchmark analogs (BT, CG, DC, EP, FT, IS, LU, MG, UA, SP).

Classes A/B/C scale the working sets 0.25× / 1× / 4×.  Most NPB kernels
initialize their arrays inside OpenMP loops, so first-touch distributes
pages with the computation (modeled as ``colocate``) — which is why they
sit in the paper's ``good`` class.  The interesting deviations:

* **FT** — the 3-D FFT's transpose step reads every thread's panels
  (all-to-all).  In the densest configurations the burst saturates memory
  controllers and DR-BW flags it, but interleaving cannot rebalance an
  already-uniform exchange (and hurts the compute sweeps), so the oracle
  stays ``good`` (Table V: 2 detected vs 0 actual).
* **UA** — unstructured adaptive mesh: the master builds the mesh (pages
  on node 0) and refinement does short, latency-bound random probes of
  it.  The sparse-but-slow remote samples get several dense
  configurations detected while the burst is too brief for the
  end-to-end interleave gain to cross 10% (Table V: 9 vs 0).
* **SP** — scalar pentadiagonal solver over *statically allocated* global
  arrays (``is_heap=False``; DR-BW cannot attribute them, Section
  VIII.F).  Static data lands on node 0 and the streaming sweeps contend
  for class C everywhere and for class B outside the small node counts
  (Table V: 11 of 24 actual).
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.numasim.cachemodel import PatternKind
from repro.osl.pages import FirstTouch
from repro.workloads.base import ObjectSpec, PhaseSpec, Share, StreamSpec, Workload
from repro.workloads.suites.common import (
    MB,
    THREAD_CAP,
    balanced_accesses,
    compute_bound,
    scale_bytes,
)

__all__ = ["NPB_CLASSES", "make_npb"]

#: Input classes and their working-set scale factors.
NPB_CLASSES = {"A": 0.25, "B": 1.0, "C": 4.0}


def _scale(input_class: str) -> float:
    try:
        return NPB_CLASSES[input_class]
    except KeyError:
        raise WorkloadError(f"unknown NPB class {input_class!r}") from None


def make_bt(input_class: str) -> Workload:
    """BT: block-tridiagonal solver; parallel first touch, compute-heavy."""
    return compute_bound(
        "BT", scale_bytes(10 * MB, _scale(input_class)), cpi=2.0,
        site="bt.f:210", passes=24.0,
    )


def make_cg(input_class: str) -> Workload:
    """CG: conjugate gradient; partitioned sparse rows, compute-bound."""
    s = _scale(input_class)
    mat = scale_bytes(8 * MB, s)
    vec = scale_bytes(2 * MB, s)
    total, w = balanced_accesses([("rowptr_vals", mat, 8.0), ("x_vec", vec, 8.0)])
    return Workload(
        name="CG",
        objects=(
            ObjectSpec(name="rowptr_vals", size_bytes=mat, site="cg.f:441", colocate=True),
            ObjectSpec(name="x_vec", size_bytes=vec, site="cg.f:455", colocate=True),
        ),
        phases=(
            PhaseSpec(
                name="matvec",
                accesses_per_thread=0.0,
                compute_cycles_per_access=1.5,
                streams=(
                    StreamSpec(object_name="rowptr_vals", pattern=PatternKind.SEQUENTIAL,
                               share=Share.CHUNK, weight=w["rowptr_vals"], passes=8.0),
                    StreamSpec(object_name="x_vec", pattern=PatternKind.RANDOM,
                               share=Share.CHUNK, weight=w["x_vec"], passes=8.0),
                ),
            ),
        ),
    ).with_accesses("matvec", total, THREAD_CAP)


def make_dc(input_class: str) -> Workload:
    """DC: data cube; hash-heavy, high compute per access."""
    return compute_bound(
        "DC", scale_bytes(16 * MB, _scale(input_class)), cpi=3.0,
        site="dc.c:318", passes=8.0,
    )


def make_ep(input_class: str) -> Workload:
    """EP: embarrassingly parallel random-number kernel; tiny working set."""
    return compute_bound(
        "EP", scale_bytes(2 * MB, _scale(input_class)), cpi=5.0,
        site="ep.f:150", passes=64.0,
    )


def make_ft(input_class: str) -> Workload:
    """FT: 3-D FFT with an all-to-all transpose burst."""
    s = _scale(input_class)
    grid = scale_bytes(64 * MB, s)
    elems = grid // 8
    return Workload(
        name="FT",
        objects=(
            ObjectSpec(name="u_grid", size_bytes=grid, site="ft.f:606", colocate=True),
        ),
        phases=(
            PhaseSpec(
                name="fft_compute",
                accesses_per_thread=0.0,
                compute_cycles_per_access=10.0,
                streams=(
                    StreamSpec(object_name="u_grid", pattern=PatternKind.SEQUENTIAL,
                               share=Share.CHUNK, passes=24.0, write_fraction=0.3),
                ),
            ),
            PhaseSpec(
                name="transpose",
                accesses_per_thread=0.0,
                compute_cycles_per_access=8.5,
                streams=(
                    StreamSpec(object_name="u_grid", pattern=PatternKind.SEQUENTIAL,
                               share=Share.ALL, passes=1.0),
                ),
            ),
        ),
    ).with_accesses("fft_compute", elems * 24.0, THREAD_CAP).with_accesses(
        "transpose", elems * 1.0, THREAD_CAP
    )


def make_is(input_class: str) -> Workload:
    """IS: integer sort; streaming keys plus a small shared histogram."""
    s = _scale(input_class)
    keys = scale_bytes(8 * MB, s)
    buckets = scale_bytes(1 * MB, s)
    total, w = balanced_accesses([("keys", keys, 10.0), ("buckets", buckets, 10.0)])
    return Workload(
        name="IS",
        objects=(
            ObjectSpec(name="keys", size_bytes=keys, site="is.c:580", colocate=True),
            ObjectSpec(name="buckets", size_bytes=buckets, site="is.c:596", colocate=True),
        ),
        phases=(
            PhaseSpec(
                name="rank",
                accesses_per_thread=0.0,
                compute_cycles_per_access=0.8,
                streams=(
                    StreamSpec(object_name="keys", pattern=PatternKind.SEQUENTIAL,
                               share=Share.CHUNK, weight=w["keys"], passes=10.0),
                    StreamSpec(object_name="buckets", pattern=PatternKind.RANDOM,
                               share=Share.ALL, weight=w["buckets"], passes=10.0,
                               write_fraction=0.5),
                ),
            ),
        ),
    ).with_accesses("rank", total, THREAD_CAP)


def make_lu(input_class: str) -> Workload:
    """LU: SSOR solver; stencil sweeps over colocated panels."""
    return compute_bound(
        "LU", scale_bytes(10 * MB, _scale(input_class)), cpi=1.2,
        site="lu.f:330", passes=24.0,
    )


def make_mg(input_class: str) -> Workload:
    """MG: multigrid; colocated grids, bandwidth-frugal V-cycles."""
    return compute_bound(
        "MG", scale_bytes(10 * MB, _scale(input_class)), cpi=0.9,
        site="mg.f:520", passes=24.0,
    )


def make_ua(input_class: str) -> Workload:
    """UA: unstructured adaptive mesh; master-built mesh, random refinement.

    The ``adapt`` burst touches only ~1% of the mesh per step (boundary
    elements), so its wall-clock share is small even when its random
    remote probes crawl — the recipe for detected-but-not-actual cases.
    """
    s = _scale(input_class)
    mesh = scale_bytes(48 * MB, s)
    workspace = scale_bytes(8 * MB, s)
    return Workload(
        name="UA",
        objects=(
            # The mesh is built in parallel (pages follow the builders), but
            # adaptation sweeps the *whole* mesh from every thread.
            ObjectSpec(name="mesh", size_bytes=mesh, site="ua.f:900",
                       colocate=True),
            ObjectSpec(name="workspace", size_bytes=workspace, site="ua.f:930",
                       colocate=True),
        ),
        phases=(
            PhaseSpec(
                name="compute",
                accesses_per_thread=0.0,
                compute_cycles_per_access=9.0,
                streams=(
                    StreamSpec(object_name="workspace", pattern=PatternKind.SEQUENTIAL,
                               share=Share.CHUNK, passes=30.0),
                ),
            ),
            PhaseSpec(
                name="adapt",
                accesses_per_thread=0.0,
                compute_cycles_per_access=8.5,
                streams=(
                    StreamSpec(object_name="mesh", pattern=PatternKind.SEQUENTIAL,
                               share=Share.ALL, passes=1.0),
                ),
            ),
        ),
    ).with_accesses("compute", (workspace // 8) * 30.0, THREAD_CAP).with_accesses(
        "adapt", mesh // 8, THREAD_CAP
    )

def make_sp(input_class: str) -> Workload:
    """SP: scalar pentadiagonal solver over *static* global arrays."""
    s = _scale(input_class)
    u = scale_bytes(44 * MB, s)
    rhs = scale_bytes(28 * MB, s)
    total, w = balanced_accesses([("u_static", u, 48.0), ("rhs_static", rhs, 48.0)])
    return Workload(
        name="SP",
        objects=(
            ObjectSpec(name="u_static", size_bytes=u, site="sp.f:static",
                       policy=FirstTouch(0), is_heap=False),
            ObjectSpec(name="rhs_static", size_bytes=rhs, site="sp.f:static",
                       policy=FirstTouch(0), is_heap=False),
        ),
        phases=(
            PhaseSpec(
                name="sweep",
                accesses_per_thread=0.0,
                compute_cycles_per_access=0.6,
                streams=(
                    StreamSpec(object_name="u_static", pattern=PatternKind.SEQUENTIAL,
                               share=Share.CHUNK, weight=w["u_static"], passes=48.0,
                               write_fraction=0.3),
                    StreamSpec(object_name="rhs_static", pattern=PatternKind.SEQUENTIAL,
                               share=Share.CHUNK, weight=w["rhs_static"], passes=48.0,
                               write_fraction=0.3),
                ),
            ),
        ),
    ).with_accesses("sweep", total, THREAD_CAP)


_NPB_BUILDERS = {
    "BT": make_bt,
    "CG": make_cg,
    "DC": make_dc,
    "EP": make_ep,
    "FT": make_ft,
    "IS": make_is,
    "LU": make_lu,
    "MG": make_mg,
    "UA": make_ua,
    "SP": make_sp,
}


def make_npb(name: str, input_class: str) -> Workload:
    """Build one NPB analog by name and class."""
    try:
        return _NPB_BUILDERS[name](input_class)
    except KeyError:
        raise WorkloadError(f"unknown NPB benchmark {name!r}") from None
