"""Convenience runner: bind, compile, execute a workload in one call."""

from __future__ import annotations

from dataclasses import dataclass

from repro.numasim.engine import RunResult
from repro.numasim.machine import Machine
from repro.osl.threads import bind_threads_tt_nn
from repro.workloads.base import CompiledWorkload, Workload, compile_workload

__all__ = ["WorkloadRun", "run_workload"]


@dataclass
class WorkloadRun:
    """A finished run plus the compiled state behind it."""

    compiled: CompiledWorkload
    result: RunResult

    @property
    def total_cycles(self) -> float:
        return self.result.total_cycles


def run_workload(
    workload: Workload,
    machine: Machine,
    n_threads: int,
    n_nodes: int,
    extra_stall_cycles_per_access: float = 0.0,
    interval_listener=None,
    interval_max_cycles: float | None = None,
) -> WorkloadRun:
    """Run ``workload`` under the ``Tt-Nn`` binding on ``machine``.

    ``interval_listener`` / ``interval_max_cycles`` forward to the engine's
    streaming hook (see :meth:`repro.numasim.engine.ExecutionEngine.run`).
    """
    bindings = bind_threads_tt_nn(machine.topology, n_threads, n_nodes)
    compiled = compile_workload(workload, machine.topology, bindings)
    result = machine.run(
        compiled.programs,
        barriers=workload.barriers,
        extra_stall_cycles_per_access=extra_stall_cycles_per_access,
        interval_listener=interval_listener,
        interval_max_cycles=interval_max_cycles,
    )
    return WorkloadRun(compiled=compiled, result=result)
