"""Workload descriptions and compilation to engine programs.

A workload is a declarative description of a multithreaded program's memory
behaviour: named data objects (with allocation sites and NUMA policies) and
phases of stationary access streams.  Compilation binds it to a machine
topology and a ``Tt-Nn`` thread binding, allocates the objects through the
OS layer, and emits :class:`~repro.numasim.engine.ThreadProgram` IR.

* :mod:`repro.workloads.base` — the DSL and compiler;
* :mod:`repro.workloads.micro` — the paper's training mini-programs
  (sumv, dotv, countv);
* :mod:`repro.workloads.bandit` — the single-threaded bandwidth bandit;
* :mod:`repro.workloads.suites` — analogs of the 23 evaluation benchmarks.
"""

from repro.workloads.base import (
    ObjectSpec,
    StreamSpec,
    PhaseSpec,
    Workload,
    CompiledWorkload,
    compile_workload,
    Share,
)
from repro.workloads.runner import run_workload

__all__ = [
    "ObjectSpec",
    "StreamSpec",
    "PhaseSpec",
    "Workload",
    "CompiledWorkload",
    "compile_workload",
    "Share",
    "run_workload",
]
