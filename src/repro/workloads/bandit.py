"""The single-threaded bandwidth bandit (Section V.A.2).

The bandit issues memory accesses that always conflict in the caches so
every request reaches main memory.  The construction follows Eklov et
al.'s Bandwidth Bandit, as the paper does:

1. allocate *huge pages*, so the page-offset → cache-set mapping is
   deterministic (a 2 MiB page spans every set of the L3);
2. build pointer-chase chains whose elements all map to the **same cache
   set**, so each access conflict-misses;
3. place the huge pages on a *remote* node to exercise remote-memory
   bandwidth specifically;
4. tune the number of chains ("streams") per instance, and co-run several
   single-threaded instances, to dial in different bandwidth demands.

:func:`build_chase_addresses` constructs the actual address chain and is
validated against the exact set-associative cache simulator in the test
suite — the chain must produce a ~100% L1/L2/L3 miss rate.

Training note (Table II): all 48 bandit runs are labeled ``good``.  The
bandit produces *many remote-DRAM samples at normal latency* — teaching
the classifier that a high remote-access count alone does not imply
contention; latency elevation must accompany it.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.numasim.cachemodel import PatternKind
from repro.numasim.topology import CacheSpec
from repro.osl.pages import HUGE_PAGE_BYTES, BindToNode
from repro.workloads.base import ObjectSpec, PhaseSpec, Share, StreamSpec, Workload

__all__ = ["make_bandit", "build_chase_addresses"]


def build_chase_addresses(
    cache: CacheSpec,
    base: int,
    region_bytes: int,
    target_set: int = 0,
    seed: int = 0,
) -> np.ndarray:
    """Addresses (one per huge-page 'row') that all map to one cache set.

    With huge pages the low ``log2(page)`` address bits are untranslated,
    so choosing offsets congruent to ``target_set * line`` modulo
    ``n_sets * line`` pins every access to ``target_set``.  The returned
    order is a random permutation — the pointer-chase order — so hardware
    prefetchers cannot follow it.
    """
    if base % HUGE_PAGE_BYTES != 0:
        raise WorkloadError("bandit region must be huge-page aligned")
    if region_bytes < cache.n_sets * cache.line_bytes:
        raise WorkloadError("bandit region smaller than one cache way span")
    if not 0 <= target_set < cache.n_sets:
        raise WorkloadError(f"target set {target_set} out of range")
    span = cache.n_sets * cache.line_bytes  # bytes between same-set lines
    n = region_bytes // span
    addrs = base + np.arange(n, dtype=np.int64) * span + target_set * cache.line_bytes
    rng = np.random.default_rng(seed)
    return rng.permutation(addrs)


def make_bandit(
    n_instances: int = 1,
    streams_per_instance: int = 1,
    target_node: int = 1,
    region_bytes: int = 64 * 1024 * 1024,
    accesses_per_instance: float = 2_000_000.0,
) -> Workload:
    """Co-running bandit instances, each a single thread pointer-chasing
    conflict misses against ``target_node``'s memory.

    Each instance gets its own huge-page region bound to the target node;
    the threads run on node 0, so all traffic crosses the ``0 → target``
    channel.  ``streams_per_instance`` chains overlap their dependent
    misses (MLP = streams).
    """
    if n_instances < 1:
        raise WorkloadError("need at least one bandit instance")
    if streams_per_instance < 1:
        raise WorkloadError("need at least one stream per instance")
    if target_node == 0:
        raise WorkloadError("bandit targets a remote node; node 0 hosts the threads")
    # One contiguous huge-page region bound to the target node; instance i
    # (thread i) pointer-chases its own chunk, which is exactly the
    # behaviour of i independent instances with private regions.
    big = ObjectSpec(
        name="chase",
        size_bytes=region_bytes * n_instances,
        site="bandit.c:42",
        policy=BindToNode(target_node),
        huge_pages=True,
    )
    return Workload(
        name="bandit",
        objects=(big,),
        phases=(
            PhaseSpec(
                name="chase",
                accesses_per_thread=accesses_per_instance,
                compute_cycles_per_access=0.0,
                streams=(
                    StreamSpec(
                        object_name="chase",
                        pattern=PatternKind.POINTER_CHASE,
                        share=Share.CHUNK,
                        element_bytes=8,
                        chains=streams_per_instance,
                    ),
                ),
            ),
        ),
    )
