"""The workload DSL and its compiler.

A :class:`Workload` declares *what a program does to memory*: which data
objects it allocates (with sizes, allocation sites, and NUMA policies) and
which phases of stationary access streams its threads execute.  The
compiler (:func:`compile_workload`) binds the description to a concrete
machine and thread binding:

1. objects are allocated through the simulated heap allocator, which maps
   their pages under the declared NUMA policy and records the allocation
   table entry DR-BW will attribute samples against;
2. each thread's streams are resolved to address regions — its private
   chunk for OpenMP-style partitioned loops, or the whole object for shared
   access — and the page table converts each region into per-node traffic
   fractions;
3. the result is plain engine IR plus the OS-layer state needed later for
   sampling, attribution, and optimization.

The ``colocate`` flag on a stream-partitioned object asks the compiler to
place every page on the node of the thread whose chunk contains it — the
paper's *co-locate* optimization expressed at the allocation point.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import WorkloadError
from repro.numasim.cachemodel import PatternKind, StreamProfile
from repro.numasim.engine import EnginePhase, EngineStream, ThreadProgram
from repro.numasim.topology import NumaTopology
from repro.osl.alloc import DataObject, HeapAllocator
from repro.osl.libnuma import LibNuma
from repro.osl.pages import (
    ExplicitPlacement,
    FirstTouch,
    PagePlacementPolicy,
    PageTable,
    Replicated,
    VirtualAddressSpace,
)
from repro.osl.threads import ThreadBinding

__all__ = [
    "Share",
    "ObjectSpec",
    "StreamSpec",
    "PhaseSpec",
    "Workload",
    "CompiledWorkload",
    "compile_workload",
]


class Share(enum.Enum):
    """How threads divide an object."""

    #: OpenMP static-for: thread ``t`` of ``T`` touches its contiguous 1/T slice.
    CHUNK = "chunk"
    #: Every thread touches the whole object.
    ALL = "all"


@dataclass(frozen=True)
class ObjectSpec:
    """A named data object the workload allocates."""

    name: str
    size_bytes: int
    site: str
    policy: PagePlacementPolicy | None = None  # None -> FirstTouch(0)
    is_heap: bool = True
    huge_pages: bool = False
    #: Place each page on the node of the thread whose CHUNK contains it.
    colocate: bool = False

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise WorkloadError(f"object {self.name!r} has non-positive size")
        if self.colocate and self.policy is not None:
            raise WorkloadError(
                f"object {self.name!r}: colocate and an explicit policy conflict"
            )


@dataclass(frozen=True)
class StreamSpec:
    """One access stream within a phase."""

    object_name: str
    pattern: PatternKind
    share: Share = Share.CHUNK
    weight: float = 1.0
    element_bytes: int = 8
    stride_bytes: int | None = None
    passes: float = 1.0
    write_fraction: float = 0.0
    chains: int = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.weight <= 1.0:
            raise WorkloadError(f"stream weight must be in (0, 1]: {self.weight}")


@dataclass(frozen=True)
class PhaseSpec:
    """A stationary phase executed by every thread.

    When ``accesses_are_total`` is set, ``accesses_per_thread`` holds the
    phase's *total* access count and the compiler divides it evenly among
    threads — the natural way to express a parallel loop over a fixed-size
    vector, where more threads each do less work.
    """

    name: str
    accesses_per_thread: float
    compute_cycles_per_access: float
    streams: tuple[StreamSpec, ...]
    accesses_are_total: bool = False
    #: Optional per-thread ceiling: a thread simulates at most this many
    #: accesses of its share (a stationary sampling window over the phase).
    max_accesses_per_thread: float | None = None
    #: Serial phase: only the master thread (thread 0) executes it; the
    #: others wait at the phase barrier (e.g. AMG2006's initialization).
    single_thread: bool = False

    def __post_init__(self) -> None:
        if self.accesses_per_thread < 0:
            raise WorkloadError(f"phase {self.name!r}: negative access count")
        if self.accesses_per_thread > 0:
            total = sum(s.weight for s in self.streams)
            if abs(total - 1.0) > 1e-6:
                raise WorkloadError(
                    f"phase {self.name!r}: stream weights sum to {total}"
                )

    def thread_accesses(self, n_threads: int, thread_id: int = 0) -> float:
        """Accesses thread ``thread_id`` of ``n_threads`` performs here."""
        if self.single_thread:
            per_thread = self.accesses_per_thread if thread_id == 0 else 0.0
        elif self.accesses_are_total:
            per_thread = self.accesses_per_thread / n_threads
        else:
            per_thread = self.accesses_per_thread
        if self.max_accesses_per_thread is not None:
            per_thread = min(per_thread, self.max_accesses_per_thread)
        return per_thread


@dataclass(frozen=True)
class Workload:
    """A complete program description."""

    name: str
    objects: tuple[ObjectSpec, ...]
    phases: tuple[PhaseSpec, ...]
    barriers: bool = True

    def __post_init__(self) -> None:
        names = [o.name for o in self.objects]
        if len(set(names)) != len(names):
            raise WorkloadError(f"workload {self.name!r}: duplicate object names")
        known = set(names)
        for phase in self.phases:
            for stream in phase.streams:
                if stream.object_name not in known:
                    raise WorkloadError(
                        f"workload {self.name!r}: phase {phase.name!r} references "
                        f"unknown object {stream.object_name!r}"
                    )

    def object_spec(self, name: str) -> ObjectSpec:
        """Look up an object by name."""
        for o in self.objects:
            if o.name == name:
                return o
        raise WorkloadError(f"no object {name!r} in workload {self.name!r}")

    def with_policies(self, policies: dict[str, PagePlacementPolicy]) -> "Workload":
        """A copy with some objects' NUMA policies replaced (optimizer hook)."""
        unknown = set(policies) - {o.name for o in self.objects}
        if unknown:
            raise WorkloadError(f"unknown objects in policy map: {sorted(unknown)}")
        new_objects = tuple(
            replace(o, policy=policies[o.name], colocate=False)
            if o.name in policies
            else o
            for o in self.objects
        )
        return replace(self, objects=new_objects)

    def with_accesses(
        self,
        phase_name: str,
        total_accesses: float,
        max_accesses_per_thread: float | None = None,
    ) -> "Workload":
        """A copy with one phase's total access budget (and per-thread cap) set."""
        found = False
        new_phases = []
        for p in self.phases:
            if p.name == phase_name:
                found = True
                new_phases.append(
                    replace(
                        p,
                        accesses_per_thread=total_accesses,
                        accesses_are_total=True,
                        max_accesses_per_thread=max_accesses_per_thread,
                    )
                )
            else:
                new_phases.append(p)
        if not found:
            raise WorkloadError(f"no phase {phase_name!r} in workload {self.name!r}")
        return replace(self, phases=tuple(new_phases))

    def with_colocation(self, names: set[str]) -> "Workload":
        """A copy with the named objects flagged for chunk co-location."""
        unknown = names - {o.name for o in self.objects}
        if unknown:
            raise WorkloadError(f"unknown objects for colocation: {sorted(unknown)}")
        new_objects = tuple(
            replace(o, colocate=True, policy=None) if o.name in names else o
            for o in self.objects
        )
        return replace(self, objects=new_objects)


@dataclass
class CompiledWorkload:
    """Engine IR plus the OS-layer state behind it."""

    workload: Workload
    programs: list[ThreadProgram]
    bindings: list[ThreadBinding]
    page_table: PageTable
    allocator: HeapAllocator
    libnuma: LibNuma
    objects: dict[str, DataObject] = field(default_factory=dict)

    @property
    def n_threads(self) -> int:
        return len(self.programs)


def _chunk_bounds(size_bytes: int, tid: int, n_threads: int, element_bytes: int) -> tuple[int, int]:
    """Byte range [start, end) of thread ``tid``'s contiguous chunk.

    Chunks are element-aligned, like an OpenMP static schedule over the
    element index space.
    """
    n_elems = size_bytes // element_bytes
    if n_elems < n_threads:
        raise WorkloadError(
            f"object of {n_elems} elements cannot be chunked over {n_threads} threads"
        )
    lo = (tid * n_elems) // n_threads
    hi = ((tid + 1) * n_elems) // n_threads
    return lo * element_bytes, hi * element_bytes


def _colocation_placement(
    spec: ObjectSpec,
    bindings: list[ThreadBinding],
    page_bytes: int,
    element_bytes: int,
) -> ExplicitPlacement:
    """Per-page nodes placing each chunk on its owning thread's node."""
    n_threads = len(bindings)
    n_pages = -(-spec.size_bytes // page_bytes)
    nodes = np.zeros(n_pages, dtype=np.int64)
    for b in bindings:
        lo, hi = _chunk_bounds(spec.size_bytes, b.thread_id, n_threads, element_bytes)
        first = lo // page_bytes
        last = (hi - 1) // page_bytes if hi > lo else first
        nodes[first : last + 1] = b.node
    return ExplicitPlacement(tuple(int(n) for n in nodes))


def compile_workload(
    workload: Workload,
    topology: NumaTopology,
    bindings: list[ThreadBinding],
) -> CompiledWorkload:
    """Allocate the workload's objects and emit engine thread programs."""
    if not bindings:
        raise WorkloadError("need at least one thread binding")

    page_table = PageTable(n_nodes=topology.n_sockets)
    allocator = HeapAllocator(page_table, VirtualAddressSpace())
    numa = LibNuma(page_table=page_table, allocator=allocator)

    # Element size used for chunk alignment of colocated objects: take the
    # smallest element size any stream uses on that object (conservative).
    elem_for_object: dict[str, int] = {}
    for phase in workload.phases:
        for s in phase.streams:
            cur = elem_for_object.get(s.object_name, 64)
            elem_for_object[s.object_name] = min(cur, s.element_bytes)

    objects: dict[str, DataObject] = {}
    for spec in workload.objects:
        if spec.colocate:
            policy: PagePlacementPolicy = _colocation_placement(
                spec, bindings, page_table.page_bytes, elem_for_object.get(spec.name, 8)
            )
        else:
            policy = spec.policy if spec.policy is not None else FirstTouch(0)
        objects[spec.name] = allocator.malloc(
            spec.size_bytes,
            site=spec.site,
            name=spec.name,
            policy=policy,
            huge_pages=spec.huge_pages,
            is_heap=spec.is_heap,
        )

    n_threads = len(bindings)
    programs: list[ThreadProgram] = []
    for b in sorted(bindings, key=lambda x: x.thread_id):
        phases: list[EnginePhase] = []
        for phase in workload.phases:
            streams: list[EngineStream] = []
            for s in phase.streams:
                obj = objects[s.object_name]
                if s.share is Share.CHUNK and not phase.single_thread:
                    lo, hi = _chunk_bounds(
                        obj.size_bytes, b.thread_id, n_threads, s.element_bytes
                    )
                    region_base, region_bytes = obj.base + lo, hi - lo
                else:
                    # Shared access — or a serial phase, where the master
                    # touches the whole object (e.g. initialization).
                    region_base, region_bytes = obj.base, obj.size_bytes
                if region_bytes <= 0:
                    raise WorkloadError(
                        f"thread {b.thread_id} got an empty chunk of {s.object_name!r}"
                    )
                node_fractions = page_table.node_fractions(
                    region_base, region_bytes, accessor_node=b.node
                )
                profile = StreamProfile(
                    kind=s.pattern,
                    working_set_bytes=region_bytes,
                    element_bytes=s.element_bytes,
                    stride_bytes=s.stride_bytes,
                    passes=s.passes,
                    write_fraction=s.write_fraction,
                    chains=s.chains,
                )
                streams.append(
                    EngineStream(
                        object_id=obj.object_id,
                        region_base=region_base,
                        region_bytes=region_bytes,
                        profile=profile,
                        weight=s.weight,
                        node_fractions=node_fractions,
                        shared=s.share is Share.ALL,
                    )
                )
            phases.append(
                EnginePhase(
                    name=phase.name,
                    n_accesses=phase.thread_accesses(n_threads, b.thread_id),
                    compute_cycles_per_access=phase.compute_cycles_per_access,
                    streams=tuple(streams),
                )
            )
        programs.append(ThreadProgram(thread_id=b.thread_id, cpu=b.cpu, phases=tuple(phases)))

    return CompiledWorkload(
        workload=workload,
        programs=programs,
        bindings=list(bindings),
        page_table=page_table,
        allocator=allocator,
        libnuma=numa,
        objects=objects,
    )
