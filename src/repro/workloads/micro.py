"""The paper's multithreaded training mini-programs (Section V.A.1).

Three OpenMP-style vector kernels, each thread working on its own
contiguous share of the data:

* ``sumv``   — vector summation (one read stream);
* ``dotv``   — dot product (two read streams);
* ``countv`` — count occurrences of a value (one read stream, more compute
  per element).

All three allocate their vectors the way naive OpenMP code does: the
master thread initializes them, so first-touch puts every page on node 0.
Small vectors stay cache-resident ("good"); large vectors streamed by
threads on several sockets pile remote traffic onto node 0's channels
("rmc").  The ``colocate``/``policy`` knobs below let the training-set
builder also produce large-but-friendly runs.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.numasim.cachemodel import PatternKind
from repro.osl.pages import PagePlacementPolicy
from repro.workloads.base import ObjectSpec, PhaseSpec, Share, StreamSpec, Workload

__all__ = ["make_sumv", "make_dotv", "make_countv", "MICRO_BUILDERS"]

#: Traversals of the vector per run — enough work for stable sampling.
_DEFAULT_PASSES = 8.0

#: Per-thread ceiling on simulated accesses.  The engine is
#: piecewise-stationary, so a windowed access budget observes the same
#: steady-state mix as the full traversal; a *per-thread* cap preserves the
#: real scale relationship between runs — a 32-thread contended run emits
#: ~32x the samples of a single-threaded bandit of equal duration, exactly
#: as per-thread PEBS sampling does.
_DEFAULT_THREAD_CAP = 4_000_000.0


def _vector_objects(
    names: list[str],
    size_bytes: int,
    site_prefix: str,
    policy: PagePlacementPolicy | None,
    colocate: bool,
) -> tuple[ObjectSpec, ...]:
    if size_bytes <= 0:
        raise WorkloadError("vector size must be positive")
    return tuple(
        ObjectSpec(
            name=n,
            size_bytes=size_bytes,
            site=f"{site_prefix}:{10 + i}",
            policy=policy,
            colocate=colocate,
        )
        for i, n in enumerate(names)
    )


def make_sumv(
    vector_bytes: int,
    policy: PagePlacementPolicy | None = None,
    colocate: bool = False,
    passes: float = _DEFAULT_PASSES,
    thread_cap: float | None = _DEFAULT_THREAD_CAP,
) -> Workload:
    """``sumv``: each thread sums its own share of one vector."""
    n_elems_per_pass = vector_bytes // 8
    return Workload(
        name="sumv",
        objects=_vector_objects(["v"], vector_bytes, "sumv.c", policy, colocate),
        phases=(
            PhaseSpec(
                name="sum",
                accesses_per_thread=0.0,  # filled by scale below
                compute_cycles_per_access=0.5,
                streams=(
                    StreamSpec(
                        object_name="v",
                        pattern=PatternKind.SEQUENTIAL,
                        share=Share.CHUNK,
                        passes=passes,
                    ),
                ),
            ),
        ),
    ).with_accesses("sum", n_elems_per_pass * passes, thread_cap)


def make_dotv(
    vector_bytes: int,
    policy: PagePlacementPolicy | None = None,
    colocate: bool = False,
    passes: float = _DEFAULT_PASSES,
    thread_cap: float | None = _DEFAULT_THREAD_CAP,
) -> Workload:
    """``dotv``: each thread dots its shares of two vectors."""
    n_elems_per_pass = 2 * (vector_bytes // 8)
    return Workload(
        name="dotv",
        objects=_vector_objects(["a", "b"], vector_bytes, "dotv.c", policy, colocate),
        phases=(
            PhaseSpec(
                name="dot",
                accesses_per_thread=0.0,
                compute_cycles_per_access=0.6,
                streams=(
                    StreamSpec(
                        object_name="a",
                        pattern=PatternKind.SEQUENTIAL,
                        share=Share.CHUNK,
                        weight=0.5,
                        passes=passes,
                    ),
                    StreamSpec(
                        object_name="b",
                        pattern=PatternKind.SEQUENTIAL,
                        share=Share.CHUNK,
                        weight=0.5,
                        passes=passes,
                    ),
                ),
            ),
        ),
    ).with_accesses("dot", n_elems_per_pass * passes, thread_cap)


def make_countv(
    vector_bytes: int,
    policy: PagePlacementPolicy | None = None,
    colocate: bool = False,
    passes: float = _DEFAULT_PASSES,
    thread_cap: float | None = _DEFAULT_THREAD_CAP,
) -> Workload:
    """``countv``: each thread counts matches in its share (more compute)."""
    n_elems_per_pass = vector_bytes // 8
    return Workload(
        name="countv",
        objects=_vector_objects(["v"], vector_bytes, "countv.c", policy, colocate),
        phases=(
            PhaseSpec(
                name="count",
                accesses_per_thread=0.0,
                compute_cycles_per_access=1.2,
                streams=(
                    StreamSpec(
                        object_name="v",
                        pattern=PatternKind.SEQUENTIAL,
                        share=Share.CHUNK,
                        passes=passes,
                    ),
                ),
            ),
        ),
    ).with_accesses("count", n_elems_per_pass * passes, thread_cap)


#: name -> builder, used by the training-set collector.
MICRO_BUILDERS = {
    "sumv": make_sumv,
    "dotv": make_dotv,
    "countv": make_countv,
}
