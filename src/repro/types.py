"""Common value types shared across the DR-BW reproduction.

These are deliberately tiny, immutable, and dependency-free so that every
subsystem (machine simulator, OS layer, PMU, classifier) can exchange them
without import cycles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "MemLevel",
    "Mode",
    "Channel",
    "CACHE_LINE_BYTES",
    "DRAM_LEVELS",
]

#: Cache line size used throughout the simulated machine, in bytes.
CACHE_LINE_BYTES = 64


class MemLevel(enum.IntEnum):
    """Memory-hierarchy level a sampled access was satisfied from.

    Mirrors the data-source encoding reported by PEBS-style address
    sampling: core caches, the line fill buffer (an in-flight miss that a
    second access hits), and local/remote DRAM.
    """

    L1 = 1
    L2 = 2
    L3 = 3
    LFB = 4
    LOCAL_DRAM = 5
    REMOTE_DRAM = 6

    @property
    def is_dram(self) -> bool:
        """True when the access was served by a memory controller."""
        return self in DRAM_LEVELS


#: Levels that hit main memory (and therefore consume DRAM bandwidth).
DRAM_LEVELS = frozenset({MemLevel.LOCAL_DRAM, MemLevel.REMOTE_DRAM})


class Mode(enum.Enum):
    """Ground-truth / predicted label for one run or one channel.

    The paper defines exactly two classes: ``good`` (no remote-memory
    bandwidth contention) and ``rmc`` (remote-memory contention).
    """

    GOOD = "good"
    RMC = "rmc"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, slots=True, order=True)
class Channel:
    """A directed inter-node link ``src -> dst``.

    DR-BW diagnoses contention *per channel*: a sample between nodes 0 and 1
    is only evidence about the 0→1 link, never about 0→2.  Local accesses
    (``src == dst``) are represented with the same type for uniform
    bookkeeping but are never classified as remote channels.
    """

    src: int
    dst: int

    def __post_init__(self) -> None:
        if self.src < 0 or self.dst < 0:
            raise ValueError(f"channel endpoints must be >= 0: {self}")

    @property
    def is_remote(self) -> bool:
        """True for a genuine inter-socket link."""
        return self.src != self.dst

    def reversed(self) -> "Channel":
        """The opposing-direction link (bandwidth may differ per direction)."""
        return Channel(self.dst, self.src)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.src}->{self.dst}"
