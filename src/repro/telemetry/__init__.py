"""Zero-dependency observability for the DR-BW pipeline.

Three instruments, one session object:

* :class:`~repro.telemetry.spans.Tracer` — nested span tracing with
  wall/CPU time per pipeline stage (engine run, sample collection,
  attribution, resampling, feature extraction, classification,
  diagnosis);
* :class:`~repro.telemetry.metrics.MetricsRegistry` — counters, gauges,
  and fixed-bucket histograms (samples per memory level, per-channel
  remote latency, drop reasons, classifier leaf margins);
* :mod:`~repro.telemetry.timeline` — NUMAscope-style per-channel
  bandwidth/utilization timelines captured from the engine's interval
  solver.

Library code is instrumented *unconditionally* against the module-level
active session (:func:`get_telemetry`), which defaults to a disabled
singleton whose every operation is a no-op.  Enabling telemetry is the
caller's move::

    from repro import telemetry

    with telemetry.session() as tel:
        profile = profiler.profile(workload, 32, 4)
    tel.tracer.records        # stage spans
    tel.metrics.to_dict()     # pipeline metrics
    tel.timelines             # per-channel utilization series

Artifact export/load lives in :mod:`repro.telemetry.artifact`; the text
dashboard over an exported artifact in
:mod:`repro.telemetry.dashboard`.  The whole subsystem is stdlib + numpy
only, and its self-overhead is asserted (<3% on the Table VII benchmark)
by ``benchmarks/bench_table7_overhead.py``.
"""

from __future__ import annotations

import contextlib
import contextvars

from repro.telemetry.metrics import (
    LATENCY_BUCKETS,
    MARGIN_BUCKETS,
    MetricsRegistry,
    NULL_METRICS,
)
from repro.telemetry.spans import NULL_SPAN, SpanRecord, Tracer
from repro.telemetry.timeline import (
    ResourceTimeline,
    capture_run_timelines,
    dump_timelines,
    load_timelines,
)

__all__ = [
    "Telemetry",
    "get_telemetry",
    "session",
    "Tracer",
    "SpanRecord",
    "MetricsRegistry",
    "ResourceTimeline",
    "capture_run_timelines",
    "dump_timelines",
    "load_timelines",
    "LATENCY_BUCKETS",
    "MARGIN_BUCKETS",
]


class Telemetry:
    """One observability session: tracer + metrics + captured timelines."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.tracer = Tracer(enabled=enabled)
        self.metrics = MetricsRegistry() if enabled else NULL_METRICS
        self.timelines: list[ResourceTimeline] = []

    def span(self, name: str, **attrs: object):
        """Shorthand for ``self.tracer.span(...)``."""
        return self.tracer.span(name, **attrs)


#: Disabled singleton the instrumentation sees when no session is active.
_DISABLED = Telemetry(enabled=False)

#: The active session is a context variable, not a module global: the
#: profiling service runs jobs on concurrent worker threads, each under
#: its own session, and a ``ContextVar`` keeps those activations from
#: clobbering one another (each thread starts from a fresh context).
_active: contextvars.ContextVar[Telemetry] = contextvars.ContextVar(
    "drbw_telemetry", default=_DISABLED
)


def get_telemetry() -> Telemetry:
    """The active session in this context, or the shared disabled one."""
    return _active.get()


@contextlib.contextmanager
def session(tel: Telemetry | None = None):
    """Activate a telemetry session for the duration of the block.

    Sessions do not nest: entering a new session while one is active
    simply shadows it for the block.  Activation is per execution
    context (thread / task), so concurrent service workers each see only
    their own session.
    """
    tel = tel if tel is not None else Telemetry(enabled=True)
    token = _active.set(tel)
    try:
        yield tel
    finally:
        _active.reset(token)
