"""Zero-dependency observability for the DR-BW pipeline.

Three instruments, one session object:

* :class:`~repro.telemetry.spans.Tracer` — nested span tracing with
  wall/CPU time per pipeline stage (engine run, sample collection,
  attribution, resampling, feature extraction, classification,
  diagnosis);
* :class:`~repro.telemetry.metrics.MetricsRegistry` — counters, gauges,
  and fixed-bucket histograms (samples per memory level, per-channel
  remote latency, drop reasons, classifier leaf margins);
* :mod:`~repro.telemetry.timeline` — NUMAscope-style per-channel
  bandwidth/utilization timelines captured from the engine's interval
  solver.

Library code is instrumented *unconditionally* against the module-level
active session (:func:`get_telemetry`), which defaults to a disabled
singleton whose every operation is a no-op.  Enabling telemetry is the
caller's move::

    from repro import telemetry

    with telemetry.session() as tel:
        profile = profiler.profile(workload, 32, 4)
    tel.tracer.records        # stage spans
    tel.metrics.to_dict()     # pipeline metrics
    tel.timelines             # per-channel utilization series

Artifact export/load lives in :mod:`repro.telemetry.artifact`; the text
dashboard over an exported artifact in
:mod:`repro.telemetry.dashboard`.  The whole subsystem is stdlib + numpy
only, and its self-overhead is asserted (<3% on the Table VII benchmark)
by ``benchmarks/bench_table7_overhead.py``.
"""

from __future__ import annotations

import contextlib

from repro.telemetry.metrics import (
    LATENCY_BUCKETS,
    MARGIN_BUCKETS,
    MetricsRegistry,
    NULL_METRICS,
)
from repro.telemetry.spans import NULL_SPAN, SpanRecord, Tracer
from repro.telemetry.timeline import (
    ResourceTimeline,
    capture_run_timelines,
    dump_timelines,
    load_timelines,
)

__all__ = [
    "Telemetry",
    "get_telemetry",
    "session",
    "Tracer",
    "SpanRecord",
    "MetricsRegistry",
    "ResourceTimeline",
    "capture_run_timelines",
    "dump_timelines",
    "load_timelines",
    "LATENCY_BUCKETS",
    "MARGIN_BUCKETS",
]


class Telemetry:
    """One observability session: tracer + metrics + captured timelines."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.tracer = Tracer(enabled=enabled)
        self.metrics = MetricsRegistry() if enabled else NULL_METRICS
        self.timelines: list[ResourceTimeline] = []

    def span(self, name: str, **attrs: object):
        """Shorthand for ``self.tracer.span(...)``."""
        return self.tracer.span(name, **attrs)


#: Disabled singleton the instrumentation sees when no session is active.
_DISABLED = Telemetry(enabled=False)
_active: Telemetry = _DISABLED


def get_telemetry() -> Telemetry:
    """The active session, or the shared disabled one."""
    return _active


@contextlib.contextmanager
def session(tel: Telemetry | None = None):
    """Activate a telemetry session for the duration of the block.

    Sessions do not nest: entering a new session while one is active
    simply shadows it for the block (the pipeline is single-threaded, so
    the last activation wins is the only sane rule).
    """
    global _active
    tel = tel if tel is not None else Telemetry(enabled=True)
    prev = _active
    _active = tel
    try:
        yield tel
    finally:
        _active = prev
