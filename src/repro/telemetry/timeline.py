"""NUMAscope-style per-resource timelines.

NUMAscope's core move is to record per-interconnect hardware counters as
*time series*, so a saturated link is visible as a plateau rather than a
single averaged number.  The execution engine already keeps exact
interval-by-interval utilization histories on every directed interconnect
channel and every memory controller; this module snapshots those
histories into :class:`ResourceTimeline` objects — rebinned to a bounded
point count so artifacts stay small on long runs — and round-trips them
through JSONL losslessly.

The module is import-light on purpose: it touches run results purely
through their public ``interconnect`` / ``memctrl`` / ``topology``
attributes, so :mod:`repro.numasim` can in turn import telemetry without
a cycle.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.numasim.engine import RunResult

__all__ = [
    "TimelinePoint",
    "ResourceTimeline",
    "capture_run_timelines",
    "dump_timelines",
    "load_timelines",
    "sparkline",
]

#: Default cap on points per resource after rebinning.
MAX_TIMELINE_POINTS = 256

_SPARK_BLOCKS = " ▁▂▃▄▅▆▇█"


@dataclass(frozen=True)
class TimelinePoint:
    """One interval of one bandwidth resource."""

    start_cycle: float
    duration_cycles: float
    bytes_moved: float
    utilization: float

    @property
    def end_cycle(self) -> float:
        return self.start_cycle + self.duration_cycles


@dataclass(frozen=True)
class ResourceTimeline:
    """The utilization history of one link or memory controller.

    ``kind`` is ``"link"`` (directed interconnect channel, ``name`` like
    ``"0->1"``) or ``"memctrl"`` (per-node controller, ``name`` like
    ``"node0"``).  ``capacity`` is bytes/cycle.
    """

    kind: str
    name: str
    capacity: float
    points: tuple[TimelinePoint, ...]

    @property
    def total_bytes(self) -> float:
        return sum(p.bytes_moved for p in self.points)

    @property
    def mean_utilization(self) -> float:
        total = sum(p.duration_cycles for p in self.points)
        if total == 0:
            return 0.0
        return sum(p.utilization * p.duration_cycles for p in self.points) / total

    @property
    def peak_utilization(self) -> float:
        return max((p.utilization for p in self.points), default=0.0)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "capacity": self.capacity,
            "points": [
                [p.start_cycle, p.duration_cycles, p.bytes_moved, p.utilization]
                for p in self.points
            ],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ResourceTimeline":
        return cls(
            kind=str(d["kind"]),
            name=str(d["name"]),
            capacity=float(d["capacity"]),
            points=tuple(
                TimelinePoint(
                    start_cycle=p[0],
                    duration_cycles=p[1],
                    bytes_moved=p[2],
                    utilization=p[3],
                )
                for p in d["points"]
            ),
        )


def _rebin(records: list, max_points: int) -> tuple[TimelinePoint, ...]:
    """Merge consecutive utilization records down to ``max_points``.

    Merging preserves total bytes and busy time exactly: the merged
    utilization is the duration-weighted mean of the members.
    """
    if len(records) <= max_points:
        return tuple(
            TimelinePoint(
                start_cycle=r.start_cycle,
                duration_cycles=r.duration_cycles,
                bytes_moved=r.bytes_moved,
                utilization=r.utilization,
            )
            for r in records
        )
    out: list[TimelinePoint] = []
    n = len(records)
    for i in range(max_points):
        lo = i * n // max_points
        hi = (i + 1) * n // max_points
        group = records[lo:hi]
        duration = sum(r.duration_cycles for r in group)
        busy = sum(r.utilization * r.duration_cycles for r in group)
        out.append(
            TimelinePoint(
                start_cycle=group[0].start_cycle,
                duration_cycles=duration,
                bytes_moved=sum(r.bytes_moved for r in group),
                utilization=busy / duration if duration > 0 else 0.0,
            )
        )
    return tuple(out)


def capture_run_timelines(
    result: "RunResult", max_points: int = MAX_TIMELINE_POINTS
) -> list[ResourceTimeline]:
    """Snapshot every channel's and controller's utilization history."""
    timelines: list[ResourceTimeline] = []
    fabric = result.interconnect
    for ch in fabric.channels:
        timelines.append(
            ResourceTimeline(
                kind="link",
                name=str(ch),
                capacity=fabric.capacity_of(ch),
                points=_rebin(fabric.history(ch), max_points),
            )
        )
    memctrl = result.memctrl
    for node in range(result.topology.n_sockets):
        timelines.append(
            ResourceTimeline(
                kind="memctrl",
                name=f"node{node}",
                capacity=float(memctrl.capacity),
                points=_rebin(memctrl.history(node), max_points),
            )
        )
    return timelines


def dump_timelines(timelines: Iterable[ResourceTimeline], path: str) -> None:
    """Write one JSON object per resource, one per line."""
    with open(path, "w") as fh:
        for tl in timelines:
            fh.write(json.dumps(tl.to_dict()) + "\n")


def load_timelines(path: str) -> list[ResourceTimeline]:
    """Inverse of :func:`dump_timelines` (bit-exact floats)."""
    out: list[ResourceTimeline] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(ResourceTimeline.from_dict(json.loads(line)))
    return out


def sparkline(timeline: ResourceTimeline, width: int = 48) -> str:
    """Render utilization over time as a fixed-width unicode strip.

    Each output column covers an equal slice of the run's cycle span and
    shows the duration-weighted mean utilization of the points falling in
    it (0 → space, saturated → full block).
    """
    pts = timeline.points
    if not pts:
        return " " * width
    t0 = pts[0].start_cycle
    t1 = max(p.end_cycle for p in pts)
    span = t1 - t0
    if span <= 0:
        level = min(len(_SPARK_BLOCKS) - 1, int(pts[-1].utilization * 8))
        return _SPARK_BLOCKS[level] * width

    busy = [0.0] * width
    time_in = [0.0] * width
    for p in pts:
        # Distribute the point over the columns it overlaps.
        lo = (p.start_cycle - t0) / span * width
        hi = (p.end_cycle - t0) / span * width
        col = int(lo)
        while col < hi and col < width:
            overlap = min(hi, col + 1) - max(lo, col)
            dt = overlap / width * span if span else 0.0
            busy[col] += p.utilization * dt
            time_in[col] += dt
            col += 1
    chars = []
    for b, t in zip(busy, time_in):
        u = b / t if t > 0 else 0.0
        chars.append(_SPARK_BLOCKS[min(len(_SPARK_BLOCKS) - 1, int(u * 8 + 0.5))])
    return "".join(chars)
