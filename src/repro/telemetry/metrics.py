"""Pipeline metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is a flat namespace of named instruments.
Names are dotted paths with the variable part last
(``profiler.quarantined.unmapped_address``, ``timeline.link.0->1``) so
the dashboard can group them by prefix.  Histograms use *fixed* bucket
boundaries declared at creation: recording is a ``searchsorted`` (scalar
or vectorized), never an allocation, and two runs with the same
boundaries are directly comparable bucket-by-bucket.

A :class:`NullMetrics` stands in when telemetry is disabled — every
lookup returns a shared no-op instrument, so instrumented code never
branches on enablement for one-line counter bumps.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MARGIN_BUCKETS",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
]

#: Default buckets (cycles) for access-latency histograms — the Table I
#: thresholds plus headroom for queueing-inflated tails.
LATENCY_BUCKETS: tuple[float, ...] = (50, 100, 200, 500, 1000, 2000, 5000)

#: Buckets for distributions over [0, 1] (leaf margins, confidences).
MARGIN_BUCKETS: tuple[float, ...] = (0.1, 0.25, 0.5, 0.75, 0.9)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError(f"counters only go up, got {n}")
        self.value += n

    def to_dict(self) -> float:
        return self.value


class Gauge:
    """Last-written value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = float(v)

    def to_dict(self) -> float:
        return self.value


class Histogram:
    """Fixed-boundary histogram with count/sum/min/max summary stats.

    ``boundaries`` are upper bucket edges; an implicit +inf bucket catches
    the overflow, so ``counts`` has ``len(boundaries) + 1`` entries.
    """

    __slots__ = ("boundaries", "counts", "count", "sum", "min", "max")

    def __init__(self, boundaries: tuple[float, ...]) -> None:
        if not boundaries or any(
            b >= c for b, c in zip(boundaries, boundaries[1:])
        ):
            raise ValueError(f"boundaries must be strictly increasing: {boundaries}")
        self.boundaries = tuple(float(b) for b in boundaries)
        self.counts = [0] * (len(boundaries) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, v: float) -> None:
        v = float(v)
        i = int(np.searchsorted(self.boundaries, v, side="left"))
        self.counts[i] += 1
        self.count += 1
        self.sum += v
        self.min = min(self.min, v)
        self.max = max(self.max, v)

    def observe_many(self, values: np.ndarray) -> None:
        """Vectorized recording of a whole sample batch."""
        v = np.asarray(values, dtype=np.float64)
        if v.size == 0:
            return
        idx = np.searchsorted(self.boundaries, v, side="left")
        binned = np.bincount(idx, minlength=len(self.counts))
        for i, c in enumerate(binned):
            self.counts[i] += int(c)
        self.count += int(v.size)
        self.sum += float(v.sum())
        self.min = min(self.min, float(v.min()))
        self.max = max(self.max, float(v.max()))

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "boundaries": list(self.boundaries),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class MetricsRegistry:
    """Named instruments, created on first touch."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge()
        return g

    def histogram(
        self, name: str, boundaries: tuple[float, ...] = LATENCY_BUCKETS
    ) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(boundaries)
        return h

    def to_dict(self) -> dict:
        """JSON-ready snapshot, sorted for deterministic export."""
        return {
            "counters": {k: self.counters[k].to_dict() for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k].to_dict() for k in sorted(self.gauges)},
            "histograms": {
                k: self.histograms[k].to_dict() for k in sorted(self.histograms)
            },
        }


class _NullInstrument:
    """Accepts every instrument method and does nothing."""

    __slots__ = ()

    def inc(self, n: float = 1.0) -> None:
        pass

    def set(self, v: float) -> None:
        pass

    def observe(self, v: float) -> None:
        pass

    def observe_many(self, values: object) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """Registry stand-in for disabled telemetry: all lookups no-op."""

    __slots__ = ()

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, boundaries: tuple[float, ...] = LATENCY_BUCKETS):
        return _NULL_INSTRUMENT

    def to_dict(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NULL_METRICS = NullMetrics()
