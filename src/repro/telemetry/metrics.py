"""Pipeline metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is a flat namespace of named instruments.
Names are dotted paths with the variable part last
(``profiler.quarantined.unmapped_address``, ``timeline.link.0->1``) so
the dashboard can group them by prefix.  Histograms use *fixed* bucket
boundaries declared at creation: recording is a ``searchsorted`` (scalar
or vectorized), never an allocation, and two runs with the same
boundaries are directly comparable bucket-by-bucket.

A :class:`NullMetrics` stands in when telemetry is disabled — every
lookup returns a shared no-op instrument, so instrumented code never
branches on enablement for one-line counter bumps.
"""

from __future__ import annotations

import math
import threading

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MARGIN_BUCKETS",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "quantile_from_counts",
]

#: Default buckets (cycles) for access-latency histograms — the Table I
#: thresholds plus headroom for queueing-inflated tails.
LATENCY_BUCKETS: tuple[float, ...] = (50, 100, 200, 500, 1000, 2000, 5000)

#: Buckets for distributions over [0, 1] (leaf margins, confidences).
MARGIN_BUCKETS: tuple[float, ...] = (0.1, 0.25, 0.5, 0.75, 0.9)


def quantile_from_counts(
    boundaries: tuple[float, ...] | list[float],
    counts: list[int],
    q: float,
    *,
    minimum: float | None = None,
    maximum: float | None = None,
) -> float:
    """Interpolated quantile from fixed-boundary bucket counts.

    Works on exported histogram data (``Histogram.to_dict()``) as well as
    live instruments.  The estimate is linearly interpolated inside the
    bucket where the cumulative count first reaches ``q * total``, which
    bounds its error by that bucket's width: bucket semantics are
    Prometheus-style inclusive upper edges (a value equal to a boundary
    counts toward that boundary's ``le`` bucket), so the exact order
    statistic of rank ``ceil(q * total)`` lives in the same bucket the
    interpolation runs over.

    The first bucket's lower edge is ``minimum`` when known (else 0,
    clamped to the first boundary); the overflow bucket's upper edge is
    ``maximum`` when known (else the last finite boundary).  Returns NaN
    for an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    total = sum(counts)
    if total == 0:
        return math.nan
    boundaries = tuple(float(b) for b in boundaries)
    lo_first = min(boundaries[0], 0.0 if minimum is None else float(minimum))
    hi_last = boundaries[-1] if maximum is None else max(float(maximum), boundaries[-1])
    target = q * total
    cum = 0
    for i, c in enumerate(counts):
        if c == 0:
            continue
        if cum + c >= target:
            lo = lo_first if i == 0 else boundaries[i - 1]
            hi = hi_last if i == len(boundaries) else boundaries[i]
            value = lo + (hi - lo) * (target - cum) / c
            break
        cum += c
    else:  # pragma: no cover - unreachable when total > 0
        value = hi_last
    if minimum is not None:
        value = max(value, float(minimum))
    if maximum is not None:
        value = min(value, float(maximum))
    return value


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError(f"counters only go up, got {n}")
        self.value += n

    def to_dict(self) -> float:
        return self.value


class Gauge:
    """Last-written value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = float(v)

    def to_dict(self) -> float:
        return self.value


class Histogram:
    """Fixed-boundary histogram with count/sum/min/max summary stats.

    ``boundaries`` are upper bucket edges; an implicit +inf bucket catches
    the overflow, so ``counts`` has ``len(boundaries) + 1`` entries.
    """

    __slots__ = ("boundaries", "counts", "count", "sum", "min", "max")

    def __init__(self, boundaries: tuple[float, ...]) -> None:
        if not boundaries or any(
            b >= c for b, c in zip(boundaries, boundaries[1:])
        ):
            raise ValueError(f"boundaries must be strictly increasing: {boundaries}")
        self.boundaries = tuple(float(b) for b in boundaries)
        self.counts = [0] * (len(boundaries) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, v: float) -> None:
        v = float(v)
        i = int(np.searchsorted(self.boundaries, v, side="left"))
        self.counts[i] += 1
        self.count += 1
        self.sum += v
        self.min = min(self.min, v)
        self.max = max(self.max, v)

    def observe_many(self, values: np.ndarray) -> None:
        """Vectorized recording of a whole sample batch."""
        v = np.asarray(values, dtype=np.float64)
        if v.size == 0:
            return
        idx = np.searchsorted(self.boundaries, v, side="left")
        binned = np.bincount(idx, minlength=len(self.counts))
        for i, c in enumerate(binned):
            self.counts[i] += int(c)
        self.count += int(v.size)
        self.sum += float(v.sum())
        self.min = min(self.min, float(v.min()))
        self.max = max(self.max, float(v.max()))

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Interpolated quantile estimate; see :func:`quantile_from_counts`.

        Clamped to the observed ``[min, max]``, so the error against the
        exact order statistic is bounded by the width of the bucket the
        exact value falls in.
        """
        return quantile_from_counts(
            self.boundaries,
            self.counts,
            q,
            minimum=self.min if self.count else None,
            maximum=self.max if self.count else None,
        )

    def bucket_width(self, v: float) -> float:
        """Width of the bucket ``v`` falls in (overflow uses observed max)."""
        i = int(np.searchsorted(self.boundaries, float(v), side="left"))
        lo = (
            min(self.boundaries[0], self.min if self.count else 0.0)
            if i == 0
            else self.boundaries[i - 1]
        )
        hi = (
            max(self.max, self.boundaries[-1])
            if i == len(self.boundaries)
            else self.boundaries[i]
        )
        return hi - lo

    def snapshot(self) -> "Histogram":
        """Consistent point-in-time copy safe to render while writers run.

        ``count`` is re-derived from the copied bucket counts so the
        cumulative ``_bucket`` lines and ``_count`` always agree inside
        one snapshot even if an ``observe`` raced the copy.
        """
        snap = Histogram.__new__(Histogram)
        snap.boundaries = self.boundaries
        snap.counts = list(self.counts)
        snap.count = sum(snap.counts)
        snap.sum = self.sum
        snap.min = self.min
        snap.max = self.max
        return snap

    def to_dict(self) -> dict:
        return {
            "boundaries": list(self.boundaries),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class MetricsRegistry:
    """Named instruments, created on first touch.

    Instrument *creation* is serialized under a lock so a concurrent
    scraper can take a :meth:`snapshot` without racing the dicts growing
    (lookups of existing instruments stay lock-free on the hot path).
    """

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            with self._lock:
                c = self.counters.get(name)
                if c is None:
                    c = self.counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            with self._lock:
                g = self.gauges.get(name)
                if g is None:
                    g = self.gauges[name] = Gauge()
        return g

    def histogram(
        self, name: str, boundaries: tuple[float, ...] = LATENCY_BUCKETS
    ) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            with self._lock:
                h = self.histograms.get(name)
                if h is None:
                    h = self.histograms[name] = Histogram(boundaries)
        return h

    def snapshot(self) -> "MetricsRegistry":
        """Point-in-time copy safe to iterate while workers keep writing.

        Every insertion into the instrument dicts happens under the same
        lock, so iterating the copies can never hit a
        ``dictionary changed size during iteration`` mid-scrape, and each
        histogram copy is internally consistent (buckets sum to count).
        """
        snap = MetricsRegistry()
        with self._lock:
            for name, c in self.counters.items():
                sc = Counter()
                sc.value = c.value
                snap.counters[name] = sc
            for name, g in self.gauges.items():
                sg = Gauge()
                sg.value = g.value
                snap.gauges[name] = sg
            for name, h in self.histograms.items():
                snap.histograms[name] = h.snapshot()
        return snap

    def to_dict(self) -> dict:
        """JSON-ready snapshot, sorted for deterministic export."""
        return {
            "counters": {k: self.counters[k].to_dict() for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k].to_dict() for k in sorted(self.gauges)},
            "histograms": {
                k: self.histograms[k].to_dict() for k in sorted(self.histograms)
            },
        }


class _NullInstrument:
    """Accepts every instrument method and does nothing."""

    __slots__ = ()

    def inc(self, n: float = 1.0) -> None:
        pass

    def set(self, v: float) -> None:
        pass

    def observe(self, v: float) -> None:
        pass

    def observe_many(self, values: object) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """Registry stand-in for disabled telemetry: all lookups no-op."""

    __slots__ = ()

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, boundaries: tuple[float, ...] = LATENCY_BUCKETS):
        return _NULL_INSTRUMENT

    def snapshot(self) -> "NullMetrics":
        return self

    def to_dict(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NULL_METRICS = NullMetrics()
