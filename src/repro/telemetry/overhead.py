"""Self-measurement: what does telemetry itself cost?

Examem's discipline: an observability layer must measure *its own*
overhead with the same rigor it measures the system, or its numbers
can't be trusted.  :func:`measure_self_overhead` times an arbitrary
workload function with telemetry inactive and active, interleaved and
min-of-N so OS noise doesn't masquerade as instrumentation cost, and
returns the added wall-time fraction.  The Table VII benchmark harness
asserts the result stays under :data:`OVERHEAD_BUDGET`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.telemetry import Telemetry, session

__all__ = ["OVERHEAD_BUDGET", "SelfOverheadResult", "measure_self_overhead"]

#: Maximum tolerated telemetry-on slowdown (fraction of wall time).
OVERHEAD_BUDGET = 0.03


@dataclass(frozen=True)
class SelfOverheadResult:
    """Min-of-N wall times with telemetry off and on."""

    off_seconds: float
    on_seconds: float
    repetitions: int

    @property
    def added_fraction(self) -> float:
        """Relative wall-time cost of enabling telemetry (can be < 0 in noise)."""
        return self.on_seconds / self.off_seconds - 1.0

    @property
    def within_budget(self) -> bool:
        return self.added_fraction < OVERHEAD_BUDGET


def measure_self_overhead(
    workload: Callable[[], object], repetitions: int = 3
) -> SelfOverheadResult:
    """Time ``workload()`` with telemetry off and on, interleaved.

    Each repetition runs one off-pass then one on-pass (fresh
    :class:`Telemetry` session, discarded afterwards); the reported times
    are the minima, the standard defense against one-sided scheduler
    noise in A/B timing.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    best_off = float("inf")
    best_on = float("inf")
    for _ in range(repetitions):
        t0 = time.perf_counter()
        workload()
        best_off = min(best_off, time.perf_counter() - t0)

        with session(Telemetry(enabled=True)):
            t0 = time.perf_counter()
            workload()
            best_on = min(best_on, time.perf_counter() - t0)
    return SelfOverheadResult(
        off_seconds=best_off, on_seconds=best_on, repetitions=repetitions
    )
