"""Span-based tracing for the sampling → diagnosis pipeline.

A :class:`Tracer` records nested, named spans — one per pipeline stage —
with wall-clock and CPU time plus arbitrary key/value attributes.  The
design goals, in order:

* **Near-zero cost when off.**  A disabled tracer's :meth:`Tracer.span`
  returns a shared no-op context manager and allocates nothing, so
  instrumentation can stay permanently in library code (the Examem
  requirement: instrumentation you cannot afford to leave on is
  instrumentation nobody trusts).
* **Nesting without plumbing.**  The tracer keeps an explicit stack of
  open spans; ``with tracer.span("profiler.profile"): ...`` inside an
  enclosing span records the parent id automatically.  The pipeline is
  single-threaded, so no thread-local machinery is needed (and none is
  provided — see ``docs/observability.md``).
* **Loss-free export.**  Finished spans serialize to plain dicts whose
  floats survive JSON round-trips exactly (Python's ``json`` emits
  shortest-round-trip reprs), and to Chrome-trace JSON loadable in
  ``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["SpanRecord", "Tracer", "NULL_SPAN"]


class _NullSpan:
    """Shared do-nothing span for disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: object) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


@dataclass(frozen=True)
class SpanRecord:
    """One finished span.

    Times are relative to the tracer's epoch (its construction instant):
    ``start_s``/``wall_s`` from ``time.perf_counter``, ``cpu_s`` from
    ``time.process_time``.  ``parent_id`` is -1 for root spans.
    """

    span_id: int
    parent_id: int
    name: str
    start_s: float
    wall_s: float
    cpu_s: float
    attrs: dict[str, object] = field(default_factory=dict)

    @property
    def end_s(self) -> float:
        return self.start_s + self.wall_s

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SpanRecord":
        return cls(
            span_id=int(d["span_id"]),
            parent_id=int(d["parent_id"]),
            name=str(d["name"]),
            start_s=float(d["start_s"]),
            wall_s=float(d["wall_s"]),
            cpu_s=float(d["cpu_s"]),
            attrs=dict(d.get("attrs", {})),
        )


class _OpenSpan:
    """Context manager for one live span; appends a record on exit."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span_id", "_parent_id",
                 "_t0", "_cpu0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, object]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def set(self, **attrs: object) -> "_OpenSpan":
        """Attach attributes discovered mid-span (e.g. result sizes)."""
        self._attrs.update(attrs)
        return self

    def __enter__(self) -> "_OpenSpan":
        tr = self._tracer
        self._span_id = tr._next_id
        tr._next_id += 1
        self._parent_id = tr._stack[-1] if tr._stack else -1
        tr._stack.append(self._span_id)
        self._t0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        wall = time.perf_counter() - self._t0
        cpu = time.process_time() - self._cpu0
        tr = self._tracer
        tr._stack.pop()
        if exc_type is not None:
            self._attrs["error"] = getattr(exc_type, "__name__", str(exc_type))
        tr.records.append(
            SpanRecord(
                span_id=self._span_id,
                parent_id=self._parent_id,
                name=self._name,
                start_s=self._t0 - tr._epoch,
                wall_s=wall,
                cpu_s=cpu,
                attrs=self._attrs,
            )
        )
        return False


class Tracer:
    """Collects nested :class:`SpanRecord` objects for one pipeline run."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.records: list[SpanRecord] = []
        self._stack: list[int] = []
        self._next_id = 0
        self._epoch = time.perf_counter()

    def span(self, name: str, **attrs: object):
        """Open a span; use as ``with tracer.span("stage", key=val):``."""
        if not self.enabled:
            return NULL_SPAN
        return _OpenSpan(self, name, attrs)

    def to_dicts(self) -> list[dict]:
        """Finished spans as JSON-ready dicts, in completion order."""
        return [r.to_dict() for r in self.records]

    def merge_records(self, span_dicts: list[dict], shard: str | None = None) -> int:
        """Adopt spans exported by another tracer (a pool worker's).

        Span ids are offset past this tracer's id space so merged and
        local spans never collide; relative parent links are preserved and
        worker roots stay roots (``parent_id`` -1).  Each adopted span is
        tagged with the originating ``shard`` so the dashboard can group
        per-worker work.  Times stay relative to the *worker's* epoch —
        cross-process clocks are not reconciled, and per-span wall/CPU
        durations (the quantities the reports aggregate) are unaffected.
        Returns the number of spans adopted.
        """
        if not span_dicts:
            return 0
        offset = self._next_id
        top = offset
        for d in span_dicts:
            rec = SpanRecord.from_dict(d)
            attrs = dict(rec.attrs)
            if shard is not None:
                attrs["shard"] = shard
            new_id = rec.span_id + offset
            top = max(top, new_id + 1)
            self.records.append(
                SpanRecord(
                    span_id=new_id,
                    parent_id=rec.parent_id + offset if rec.parent_id >= 0 else -1,
                    name=rec.name,
                    start_s=rec.start_s,
                    wall_s=rec.wall_s,
                    cpu_s=rec.cpu_s,
                    attrs=attrs,
                )
            )
        self._next_id = top
        return len(span_dicts)

    def to_chrome_trace(self) -> list[dict]:
        """Chrome-trace/Perfetto "complete" (``ph: "X"``) events.

        Timestamps and durations are microseconds since the tracer epoch;
        the whole pipeline runs in one process on one logical thread, so
        ``pid``/``tid`` are constant.
        """
        return chrome_trace_events(self.to_dicts())


def chrome_trace_events(spans: list[dict]) -> list[dict]:
    """Convert exported span dicts to Chrome-trace JSON events."""
    events = []
    for s in spans:
        args = {k: v for k, v in s.get("attrs", {}).items()}
        args["cpu_ms"] = s["cpu_s"] * 1e3
        events.append(
            {
                "name": s["name"],
                "ph": "X",
                "ts": s["start_s"] * 1e6,
                "dur": s["wall_s"] * 1e6,
                "pid": 1,
                "tid": 1,
                "args": args,
            }
        )
    events.sort(key=lambda e: e["ts"])
    return events
