"""Run-artifact export and load.

One telemetry session exports to one directory::

    out/
      meta.json       reproducibility metadata (seed, fault plan, topology
                      hash, package version, command)
      spans.jsonl     one finished span per line
      trace.json      the same spans as Chrome-trace JSON (chrome://tracing
                      or https://ui.perfetto.dev)
      metrics.json    counters / gauges / histograms snapshot
      timeline.jsonl  one per-resource utilization timeline per line
      results.json    pipeline results (channel verdicts, case verdict,
                      degradation counters, diagnosis ranking)

Everything a ``repro report`` dashboard shows comes from these files
alone, so a run is explainable — and reproducible, via ``meta.json`` —
long after the process that produced it is gone.  Loading validates
presence and shape and raises :class:`repro.errors.TelemetryError` with
the offending path, never a bare ``KeyError``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import TelemetryError
from repro.telemetry import Telemetry
from repro.telemetry.spans import chrome_trace_events
from repro.telemetry.timeline import (
    ResourceTimeline,
    dump_timelines,
    load_timelines,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.numasim.topology import NumaTopology

__all__ = [
    "ARTIFACT_VERSION",
    "RunArtifact",
    "collect_metadata",
    "topology_hash",
    "export_artifact",
    "load_artifact",
    "validate_chrome_trace",
]

logger = logging.getLogger(__name__)

ARTIFACT_VERSION = 1

_META = "meta.json"
_SPANS = "spans.jsonl"
_TRACE = "trace.json"
_METRICS = "metrics.json"
_TIMELINE = "timeline.jsonl"
_RESULTS = "results.json"


def topology_hash(topology: "NumaTopology") -> str:
    """Stable short hash over every topology parameter.

    Two artifacts with equal hashes were measured on identical simulated
    machines — the first thing to check before comparing their numbers.
    """
    payload = json.dumps(dataclasses.asdict(topology), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def collect_metadata(
    command: str,
    seed: int | None,
    topology: "NumaTopology",
    faults: object | None = None,
    **extra: object,
) -> dict:
    """The reproducibility block every artifact carries.

    ``faults`` is a :class:`repro.faults.FaultPlan` or ``None``; its full
    field set (rates, seed, truncation range, counter width) is embedded
    so the run can be replayed from the artifact alone.
    """
    import repro

    fault_spec: dict | None = None
    if faults is not None:
        fault_spec = {
            "describe": faults.describe(),
            "fields": {
                k: list(v) if isinstance(v, tuple) else v
                for k, v in dataclasses.asdict(faults).items()
            },
        }
    meta = {
        "artifact_version": ARTIFACT_VERSION,
        "package_version": repro.__version__,
        "command": command,
        "seed": seed,
        "topology_hash": topology_hash(topology),
        "topology": dataclasses.asdict(topology),
        "fault_plan": fault_spec,
    }
    meta.update(extra)
    return meta


@dataclass
class RunArtifact:
    """An exported run, loaded back into memory."""

    meta: dict
    spans: list[dict]
    metrics: dict
    timelines: list[ResourceTimeline]
    results: dict = field(default_factory=dict)


def export_artifact(
    out_dir: str,
    tel: Telemetry,
    meta: dict,
    results: dict | None = None,
) -> str:
    """Write one session's telemetry to ``out_dir``; returns the path."""
    os.makedirs(out_dir, exist_ok=True)
    spans = tel.tracer.to_dicts()
    with open(os.path.join(out_dir, _META), "w") as fh:
        json.dump(meta, fh, indent=2, sort_keys=True)
    with open(os.path.join(out_dir, _SPANS), "w") as fh:
        for s in spans:
            fh.write(json.dumps(s) + "\n")
    with open(os.path.join(out_dir, _TRACE), "w") as fh:
        json.dump(chrome_trace_events(spans), fh)
    with open(os.path.join(out_dir, _METRICS), "w") as fh:
        json.dump(tel.metrics.to_dict(), fh, indent=2, sort_keys=True)
    dump_timelines(tel.timelines, os.path.join(out_dir, _TIMELINE))
    with open(os.path.join(out_dir, _RESULTS), "w") as fh:
        json.dump(results or {}, fh, indent=2, sort_keys=True)
    logger.info("telemetry artifact written to %s (%d spans, %d timelines)",
                out_dir, len(spans), len(tel.timelines))
    return out_dir


def _read_json(path: str) -> object:
    try:
        with open(path) as fh:
            return json.load(fh)
    except FileNotFoundError:
        raise TelemetryError(f"telemetry artifact is missing {path}") from None
    except json.JSONDecodeError as exc:
        raise TelemetryError(f"telemetry file {path} is not valid JSON: {exc}") from None


def load_artifact(path: str) -> RunArtifact:
    """Load an exported artifact directory back into a :class:`RunArtifact`."""
    if not os.path.isdir(path):
        raise TelemetryError(f"no telemetry artifact directory at {path!r}")
    meta = _read_json(os.path.join(path, _META))
    if not isinstance(meta, dict) or "artifact_version" not in meta:
        raise TelemetryError(f"{path}/{_META} lacks an artifact_version")
    if meta["artifact_version"] > ARTIFACT_VERSION:
        raise TelemetryError(
            f"artifact version {meta['artifact_version']} is newer than "
            f"this reader (supports <= {ARTIFACT_VERSION})"
        )
    spans: list[dict] = []
    spans_path = os.path.join(path, _SPANS)
    try:
        with open(spans_path) as fh:
            for i, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    span = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise TelemetryError(
                        f"{spans_path}:{i} is not valid JSON: {exc}"
                    ) from None
                if not isinstance(span, dict) or "name" not in span:
                    raise TelemetryError(f"{spans_path}:{i} is not a span object")
                spans.append(span)
    except FileNotFoundError:
        raise TelemetryError(f"telemetry artifact is missing {spans_path}") from None
    metrics = _read_json(os.path.join(path, _METRICS))
    if not isinstance(metrics, dict):
        raise TelemetryError(f"{path}/{_METRICS} must hold an object")
    timeline_path = os.path.join(path, _TIMELINE)
    try:
        timelines = load_timelines(timeline_path)
    except FileNotFoundError:
        raise TelemetryError(f"telemetry artifact is missing {timeline_path}") from None
    except (KeyError, TypeError, IndexError, json.JSONDecodeError) as exc:
        raise TelemetryError(f"{timeline_path} is malformed: {exc!r}") from None
    results = _read_json(os.path.join(path, _RESULTS))
    if not isinstance(results, dict):
        raise TelemetryError(f"{path}/{_RESULTS} must hold an object")
    return RunArtifact(
        meta=meta, spans=spans, metrics=metrics,
        timelines=timelines, results=results,
    )


def validate_chrome_trace(events: object) -> list[dict]:
    """Check the Perfetto-loadable shape: a list of complete events.

    Every event must carry ``name``/``ph``/``ts``/``dur``/``pid``/``tid``
    with numeric times.  Returns the events on success.
    """
    if not isinstance(events, list):
        raise TelemetryError("chrome trace must be a JSON array of events")
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            raise TelemetryError(f"trace event {i} is not an object")
        for key in ("name", "ph", "ts", "dur", "pid", "tid"):
            if key not in e:
                raise TelemetryError(f"trace event {i} is missing {key!r}")
        if e["ph"] != "X":
            raise TelemetryError(f"trace event {i} has phase {e['ph']!r}, expected 'X'")
        for key in ("ts", "dur"):
            if not isinstance(e[key], (int, float)):
                raise TelemetryError(f"trace event {i}: {key} must be numeric")
    return events
