"""Text dashboard over an exported telemetry artifact.

``repro report <dir>`` renders the artifact the way NUMAscope's TUI
renders live counters: stage timings as an indented span tree,
per-channel utilization timelines as unicode strips, then the pipeline's
own health — metrics, channel verdicts with confidence, degradation
counters, and the top contended objects.  The rendering is a pure
function of the loaded artifact, so export → load → render is a
round-trip invariant the tests pin down.
"""

from __future__ import annotations

from repro.telemetry.artifact import RunArtifact
from repro.telemetry.timeline import ResourceTimeline, sparkline

__all__ = ["render_dashboard", "render_stage_table"]

_RULE = "─" * 72

#: Span-tree children shown per parent before folding the rest into one
#: summary row (training.collect has ~960 descendants; show the shape,
#: not the haystack).
MAX_CHILDREN_SHOWN = 12


def _fmt_seconds(s: float) -> str:
    if s >= 1.0:
        return f"{s:8.3f}s "
    return f"{s * 1e3:8.2f}ms"


def _render_header(meta: dict) -> list[str]:
    lines = ["DR-BW run report", _RULE]
    fault = meta.get("fault_plan")
    rows = [
        ("command", meta.get("command", "?")),
        ("benchmark", meta.get("benchmark")),
        ("input", meta.get("input")),
        ("config", meta.get("config")),
        ("seed", meta.get("seed")),
        ("fault plan", fault["describe"] if fault else "none"),
        ("topology", meta.get("topology_hash", "?")),
        ("package", meta.get("package_version", "?")),
    ]
    for key, value in rows:
        if value is not None:
            lines.append(f"  {key:<12} {value}")
    return lines


def _render_spans(spans: list[dict]) -> list[str]:
    lines = ["", "stage timings", _RULE]
    if not spans:
        lines.append("  (no spans recorded)")
        return lines
    by_parent: dict[int, list[dict]] = {}
    for s in spans:
        by_parent.setdefault(s.get("parent_id", -1), []).append(s)
    for children in by_parent.values():
        children.sort(key=lambda s: s.get("start_s", 0.0))
    total_wall = sum(s["wall_s"] for s in by_parent.get(-1, [])) or 1.0

    def walk(parent: int, depth: int) -> None:
        children = by_parent.get(parent, [])
        for s in children[:MAX_CHILDREN_SHOWN]:
            pct = s["wall_s"] / total_wall * 100.0
            attrs = s.get("attrs", {})
            attr_txt = (
                "  " + " ".join(f"{k}={attrs[k]}" for k in sorted(attrs))
                if attrs
                else ""
            )
            name = "  " * depth + s["name"]
            lines.append(
                f"  {name:<38}{_fmt_seconds(s['wall_s'])}"
                f"  cpu {_fmt_seconds(s['cpu_s'])}  {pct:5.1f}%{attr_txt}"
            )
            walk(s["span_id"], depth + 1)
        hidden = children[MAX_CHILDREN_SHOWN:]
        if hidden:
            wall = sum(s["wall_s"] for s in hidden)
            pct = wall / total_wall * 100.0
            name = "  " * depth + f"... +{len(hidden)} more"
            lines.append(
                f"  {name:<38}{_fmt_seconds(wall)}"
                f"  {'':<14}  {pct:5.1f}%"
            )

    walk(-1, 0)
    return lines


def _render_timelines(timelines: list[ResourceTimeline]) -> list[str]:
    lines = ["", "channel timelines (utilization over run)", _RULE]
    if not timelines:
        lines.append("  (no timelines captured)")
        return lines
    links = [t for t in timelines if t.kind == "link"]
    ctrls = [t for t in timelines if t.kind == "memctrl"]
    for group, title in ((links, "interconnect links"), (ctrls, "memory controllers")):
        if not group:
            continue
        lines.append(f"  {title}:")
        for tl in group:
            lines.append(
                f"    {tl.name:>7} |{sparkline(tl)}| "
                f"mean {tl.mean_utilization:5.1%}  peak {tl.peak_utilization:5.1%}"
                f"  {tl.total_bytes / 1e6:10.1f} MB"
            )
    return lines


def _render_metrics(metrics: dict) -> list[str]:
    lines = ["", "pipeline metrics", _RULE]
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    histograms = metrics.get("histograms", {})
    if not (counters or gauges or histograms):
        lines.append("  (no metrics recorded)")
        return lines
    for name in sorted(counters):
        lines.append(f"  {name:<44}{counters[name]:>14,.0f}")
    for name in sorted(gauges):
        lines.append(f"  {name:<44}{gauges[name]:>14.4g}")
    for name in sorted(histograms):
        h = histograms[name]
        count = h.get("count", 0)
        mean = h["sum"] / count if count else 0.0
        hmax = f"{h['max']:,.1f}" if h["max"] is not None else "-"
        lines.append(
            f"  {name:<44}{count:>10,} obs  mean {mean:,.1f}  max {hmax}"
        )
        edges = ["<=" + f"{b:g}" for b in h["boundaries"]] + ["+inf"]
        peak = max(h["counts"]) or 1
        bars = "".join(
            " ▁▂▃▄▅▆▇█"[min(8, int(c / peak * 8 + 0.5))] for c in h["counts"]
        )
        lines.append(f"    [{bars}]  buckets: {', '.join(edges)}")
    return lines


def _render_results(results: dict) -> list[str]:
    lines: list[str] = []
    verdicts = results.get("channel_verdicts")
    if verdicts is not None:
        lines += ["", "channel verdicts", _RULE]
        if not verdicts:
            lines.append("  (no remote traffic observed)")
        for v in verdicts:
            conf = (
                "insufficient data"
                if v.get("insufficient_data")
                else f"conf {v['confidence']:.2f}"
            )
            lines.append(
                f"  {v['channel']:>7}  {v['label']:<18} {conf}"
                f"  ({v['n_remote_samples']} remote samples)"
            )
        if "case_verdict" in results:
            lines.append(f"  case verdict: {results['case_verdict']}")
    degradation = results.get("degradation")
    if degradation is not None:
        lines += ["", "degradation counters", _RULE]
        lines.append(
            f"  observed {degradation['observed']:,}   kept {degradation['kept']:,}"
            f"   quarantined {sum(degradation['quarantined'].values()):,}"
            f" ({degradation['drop_fraction']:.1%})"
        )
        for reason in sorted(degradation["quarantined"]):
            lines.append(f"    - {reason:<20} {degradation['quarantined'][reason]:,}")
        injected = {k: v for k, v in degradation.get("injected", {}).items() if v}
        if injected:
            lines.append(
                "  injected: "
                + ", ".join(f"{k}={v}" for k, v in sorted(injected.items()))
            )
        if degradation.get("resample_attempts"):
            chans = ", ".join(degradation.get("resampled_channels", [])) or "-"
            lines.append(
                f"  resample attempts: {degradation['resample_attempts']}"
                f" (channels: {chans})"
            )
    diagnosis = results.get("diagnosis")
    if diagnosis:
        lines += ["", "top contended objects (contribution fraction)", _RULE]
        lines.append(
            "  contended channels: "
            + ", ".join(diagnosis.get("contended_channels", []))
        )
        for rank, c in enumerate(diagnosis.get("top", []), start=1):
            lines.append(
                f"  {rank:>3}. {c['cf']:>6.1%}  {c['n_samples']:>8,}  "
                f"{c['name']} ({c['site']})"
            )
        cov = diagnosis.get("attribution_coverage")
        if cov is not None:
            lines.append(f"  attribution coverage: {cov:.1%}")
    return lines


def render_stage_table(spans: list[dict]) -> str:
    """Per-stage aggregate over an artifact's spans (``report --stages``).

    One row per span *name*: how many times the stage ran, its total
    wall and CPU time, wall share of the run, and CPU efficiency
    (cpu/wall — above 1.0 means the stage ran parallel work).  Shares
    are against the sum of root-span wall time; nested stages overlap
    their parents, so the column does not sum to 100%.
    """
    if not spans:
        return "stage breakdown\n" + _RULE + "\n  (no spans recorded)"
    agg: dict[str, dict] = {}
    for s in spans:
        row = agg.setdefault(
            s["name"], {"count": 0, "wall_s": 0.0, "cpu_s": 0.0}
        )
        row["count"] += 1
        row["wall_s"] += s.get("wall_s", 0.0)
        row["cpu_s"] += s.get("cpu_s", 0.0)
    total_wall = sum(
        s.get("wall_s", 0.0) for s in spans if s.get("parent_id", -1) == -1
    ) or 1.0
    lines = [
        "stage breakdown",
        _RULE,
        f"  {'stage':<38}{'count':>7}{'wall':>11}{'cpu':>11}"
        f"{'wall%':>8}{'cpu/wall':>10}",
    ]
    for name in sorted(agg, key=lambda n: agg[n]["wall_s"], reverse=True):
        row = agg[name]
        ratio = row["cpu_s"] / row["wall_s"] if row["wall_s"] > 0 else 0.0
        lines.append(
            f"  {name:<38}{row['count']:>7,}"
            f"{_fmt_seconds(row['wall_s']):>11}{_fmt_seconds(row['cpu_s']):>11}"
            f"{row['wall_s'] / total_wall * 100.0:>7.1f}%{ratio:>10.2f}"
        )
    return "\n".join(lines)


def render_dashboard(artifact: RunArtifact) -> str:
    """The full text dashboard for one exported run."""
    lines = _render_header(artifact.meta)
    lines += _render_spans(artifact.spans)
    lines += _render_timelines(artifact.timelines)
    lines += _render_metrics(artifact.metrics)
    lines += _render_results(artifact.results)
    return "\n".join(lines)
