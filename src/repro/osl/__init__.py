"""Operating-system layer: virtual memory, NUMA page placement, heap
allocation interception, and thread binding.

This package substitutes for the Linux kernel facilities DR-BW relies on:

* first-touch / bind / interleave page placement (``numactl`` semantics),
* huge pages with a deterministic page-offset → cache-set mapping (needed
  by the bandit micro-benchmark),
* ``malloc``-family interception that records the allocation site and the
  allocated address range (DR-BW's data-object attribution table),
* thread-to-core binding in the paper's ``Tt-Nn`` scheme.
"""

from repro.osl.pages import (
    PagePlacementPolicy,
    FirstTouch,
    BindToNode,
    Interleave,
    Replicated,
    PageTable,
    VirtualAddressSpace,
)
from repro.osl.alloc import DataObject, HeapAllocator
from repro.osl.threads import ThreadBinding, bind_threads_tt_nn

__all__ = [
    "PagePlacementPolicy",
    "FirstTouch",
    "BindToNode",
    "Interleave",
    "Replicated",
    "PageTable",
    "VirtualAddressSpace",
    "DataObject",
    "HeapAllocator",
    "ThreadBinding",
    "bind_threads_tt_nn",
]
