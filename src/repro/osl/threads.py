"""Thread-to-core binding in the paper's ``Tt-Nn`` scheme.

Section VII: *"We use Tt-Nn to represent a specific configuration with
total t threads and n nodes used.  The total t threads are evenly
distributed among the n nodes.  Threads are also bound to the cores, e.g.
for T16-N4, threads 0-3 are bound to node 0, threads 4-7 are in node 1,
..."* — contiguous blocks of ``t/n`` threads per node, each thread pinned
to its own logical CPU, spilling onto SMT siblings once the node's physical
cores are exhausted (T64-N4 uses both hyperthreads of every core).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BindingError
from repro.numasim.topology import NumaTopology

__all__ = ["ThreadBinding", "bind_threads_tt_nn"]


@dataclass(frozen=True, slots=True)
class ThreadBinding:
    """One software thread pinned to one logical CPU."""

    thread_id: int
    cpu: int
    node: int


def bind_threads_tt_nn(
    topology: NumaTopology,
    n_threads: int,
    n_nodes: int,
) -> list[ThreadBinding]:
    """Produce the paper's ``Tt-Nn`` binding.

    Raises :class:`BindingError` when ``t`` is not divisible by ``n``, when
    ``n`` exceeds the socket count, or when a node would need more threads
    than it has logical CPUs.
    """
    if n_threads < 1:
        raise BindingError(f"need at least one thread, got {n_threads}")
    if not 1 <= n_nodes <= topology.n_sockets:
        raise BindingError(
            f"n_nodes={n_nodes} out of range [1, {topology.n_sockets}]"
        )
    if n_threads % n_nodes != 0:
        raise BindingError(
            f"T{n_threads}-N{n_nodes}: threads must divide evenly among nodes"
        )
    per_node = n_threads // n_nodes
    cpus_per_node = topology.cores_per_socket * topology.smt
    if per_node > cpus_per_node:
        raise BindingError(
            f"T{n_threads}-N{n_nodes}: {per_node} threads per node exceeds "
            f"{cpus_per_node} logical CPUs"
        )
    bindings: list[ThreadBinding] = []
    for node in range(n_nodes):
        node_cpus = topology.cpus_of_node(node)  # physical cores first, SMT after
        for i in range(per_node):
            tid = node * per_node + i
            bindings.append(ThreadBinding(thread_id=tid, cpu=node_cpus[i], node=node))
    return bindings
