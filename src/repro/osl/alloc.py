"""Heap allocation interception — DR-BW's data-object attribution table.

DR-BW's profiler intercepts the ``malloc`` family and, for each allocation
point, records the instruction pointer and the allocated memory range
(paper, Section IV.C).  Samples are later attributed to data objects by
range lookup on the sampled address.  This module reproduces that table:

* :class:`HeapAllocator` plays glibc + the interposition library: it
  reserves virtual ranges, maps their pages under a NUMA policy, and logs
  every allocation with its *site* (a ``file:line``-style string standing
  in for the instruction pointer);
* :meth:`HeapAllocator.object_of_address` is the sample-time range lookup.

Static and stack data are deliberately *not* tracked — the paper's tool has
the same limitation (see the SP and LULESH case studies), and we reproduce
it so those experiments behave identically.  Workloads can still declare
static objects; they simply carry ``is_heap=False`` and the profiler skips
them during attribution.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.errors import AllocationError, InvalidAddressError
from repro.osl.pages import (
    PAGE_BYTES,
    HUGE_PAGE_BYTES,
    FirstTouch,
    PagePlacementPolicy,
    PageTable,
    VirtualAddressSpace,
)

__all__ = ["DataObject", "HeapAllocator"]


@dataclass(frozen=True)
class DataObject:
    """One allocation table entry: an object and where it came from."""

    object_id: int
    name: str
    site: str
    base: int
    size_bytes: int
    policy: PagePlacementPolicy
    is_heap: bool = True
    huge_pages: bool = False

    @property
    def end(self) -> int:
        """One past the last byte of the object."""
        return self.base + self.size_bytes

    def contains(self, addr: int) -> bool:
        """True when ``addr`` falls inside this object."""
        return self.base <= addr < self.end


@dataclass
class _Table:
    """Sorted allocation-range index for O(log n) address lookup."""

    bases: list[int] = field(default_factory=list)
    objects: list[DataObject] = field(default_factory=list)

    def insert(self, obj: DataObject) -> None:
        idx = bisect.bisect_left(self.bases, obj.base)
        self.bases.insert(idx, obj.base)
        self.objects.insert(idx, obj)

    def remove(self, obj: DataObject) -> None:
        idx = bisect.bisect_left(self.bases, obj.base)
        if idx == len(self.bases) or self.objects[idx].object_id != obj.object_id:
            raise InvalidAddressError(f"object {obj.object_id} not in table")
        del self.bases[idx], self.objects[idx]

    def lookup(self, addr: int) -> DataObject | None:
        idx = bisect.bisect_right(self.bases, addr) - 1
        if idx < 0:
            return None
        obj = self.objects[idx]
        return obj if obj.contains(addr) else None


class HeapAllocator:
    """malloc/calloc/realloc interposition with NUMA-aware page placement."""

    def __init__(self, page_table: PageTable, address_space: VirtualAddressSpace | None = None) -> None:
        self.page_table = page_table
        self.space = address_space or VirtualAddressSpace()
        self._table = _Table()
        self._live: dict[int, DataObject] = {}
        self._next_id = 0
        #: Total number of interception events (used by the overhead model).
        self.intercept_count = 0

    # -- malloc family -----------------------------------------------------------

    def malloc(
        self,
        size_bytes: int,
        site: str,
        name: str | None = None,
        policy: PagePlacementPolicy | None = None,
        huge_pages: bool = False,
        is_heap: bool = True,
    ) -> DataObject:
        """Allocate ``size_bytes`` and record the allocation-table entry.

        ``site`` stands in for the allocation instruction pointer.  The NUMA
        ``policy`` defaults to first-touch by the master thread on node 0 —
        the Linux default that produces the paper's pathologies.
        """
        if size_bytes <= 0:
            raise AllocationError(f"malloc of {size_bytes} bytes")
        policy = policy if policy is not None else FirstTouch(0)
        align = HUGE_PAGE_BYTES if huge_pages else PAGE_BYTES
        base = self.space.reserve(size_bytes, align=align)
        self.page_table.map_range(base, size_bytes, policy)
        obj = DataObject(
            object_id=self._next_id,
            name=name or f"obj_{self._next_id}",
            site=site,
            base=base,
            size_bytes=size_bytes,
            policy=policy,
            is_heap=is_heap,
            huge_pages=huge_pages,
        )
        self._next_id += 1
        self._table.insert(obj)
        self._live[obj.object_id] = obj
        self.intercept_count += 1
        return obj

    def calloc(self, n_members: int, member_bytes: int, site: str, **kwargs) -> DataObject:
        """``calloc`` — same table entry, size = n*m."""
        if n_members <= 0 or member_bytes <= 0:
            raise AllocationError("calloc with non-positive dimensions")
        return self.malloc(n_members * member_bytes, site, **kwargs)

    def realloc(self, obj: DataObject, new_size_bytes: int, site: str) -> DataObject:
        """``realloc`` — frees the old range, allocates a fresh one."""
        if obj.object_id not in self._live:
            raise InvalidAddressError(f"realloc of dead object {obj.object_id}")
        self.free(obj)
        return self.malloc(
            new_size_bytes,
            site,
            name=obj.name,
            policy=obj.policy,
            huge_pages=obj.huge_pages,
            is_heap=obj.is_heap,
        )

    def free(self, obj: DataObject) -> None:
        """Release an object; its range leaves the live set but stays
        resolvable only through historical lookups (it is unmapped)."""
        if obj.object_id not in self._live:
            raise InvalidAddressError(f"double free of object {obj.object_id}")
        del self._live[obj.object_id]
        self._table.remove(obj)
        self.page_table.unmap_range(obj.base)
        self.intercept_count += 1

    # -- attribution --------------------------------------------------------------

    def object_of_address(self, addr: int) -> DataObject | None:
        """The live data object containing ``addr`` (None when unattributed)."""
        return self._table.lookup(addr)

    def object_ids_of_addresses(self, addrs) -> "np.ndarray":
        """Vectorized heap attribution: object id per address, -1 when the
        address is outside every live *heap* object (static/stack data)."""
        import numpy as np

        addrs = np.asarray(addrs, dtype=np.int64)
        bases = np.asarray(self._table.bases, dtype=np.int64)
        out = np.full(addrs.shape[0], -1, dtype=np.int64)
        if bases.size == 0:
            return out
        ends = np.array([o.end for o in self._table.objects], dtype=np.int64)
        ids = np.array(
            [o.object_id if o.is_heap else -1 for o in self._table.objects],
            dtype=np.int64,
        )
        idx = np.searchsorted(bases, addrs, side="right") - 1
        ok = (idx >= 0) & (addrs < ends[np.maximum(idx, 0)])
        out[ok] = ids[idx[ok]]
        return out

    def live_objects(self) -> list[DataObject]:
        """All currently live objects, in allocation order."""
        return sorted(self._live.values(), key=lambda o: o.object_id)

    def get(self, object_id: int) -> DataObject:
        """Live object by id."""
        try:
            return self._live[object_id]
        except KeyError:
            raise InvalidAddressError(f"no live object {object_id}") from None

    def apply_policy(self, obj: DataObject, policy: PagePlacementPolicy) -> DataObject:
        """Re-place an object's pages (the optimizer's page-migration hook)."""
        if obj.object_id not in self._live:
            raise InvalidAddressError(f"cannot re-place dead object {obj.object_id}")
        self.page_table.remap_range(obj.base, policy)
        new_obj = DataObject(
            object_id=obj.object_id,
            name=obj.name,
            site=obj.site,
            base=obj.base,
            size_bytes=obj.size_bytes,
            policy=policy,
            is_heap=obj.is_heap,
            huge_pages=obj.huge_pages,
        )
        self._live[obj.object_id] = new_obj
        self._table.remove(obj)
        self._table.insert(new_obj)
        return new_obj
