"""A libnuma-flavoured facade.

DR-BW uses the libnuma library [14] for two things: resolving the locating
node of a sampled address (profiler, Section IV.B) and controlling memory
allocation during optimization (case studies, Section VIII).  This module
exposes the corresponding entry points with their familiar names, bound to
one :class:`~repro.osl.pages.PageTable` + :class:`~repro.osl.alloc.HeapAllocator`
pair, so workload and optimizer code reads like the C it stands in for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidAddressError
from repro.osl.alloc import DataObject, HeapAllocator
from repro.osl.pages import BindToNode, Interleave, PageTable, Replicated

__all__ = ["LibNuma"]


@dataclass(frozen=True)
class LibNuma:
    """libnuma-style API over the simulated OS state."""

    page_table: PageTable
    allocator: HeapAllocator

    # -- queries ------------------------------------------------------------

    def numa_num_configured_nodes(self) -> int:
        """Number of NUMA nodes in the system."""
        return self.page_table.n_nodes

    def numa_node_of_address(self, addr: int, accessor_node: int | None = None) -> int:
        """Locating node of ``addr`` — the profiler's per-sample lookup."""
        return self.page_table.node_of_address(addr, accessor_node=accessor_node)

    def numa_node_distribution(self, obj: DataObject) -> np.ndarray:
        """Fraction of ``obj``'s pages on each node."""
        return self.page_table.node_fractions(obj.base, obj.size_bytes)

    # -- allocation ----------------------------------------------------------

    def numa_alloc_onnode(self, size_bytes: int, node: int, site: str, **kwargs) -> DataObject:
        """Allocate with every page bound to ``node``."""
        return self.allocator.malloc(size_bytes, site, policy=BindToNode(node), **kwargs)

    def numa_alloc_interleaved(self, size_bytes: int, site: str, nodes: tuple[int, ...] = (), **kwargs) -> DataObject:
        """Allocate with pages interleaved over ``nodes`` (all when empty)."""
        return self.allocator.malloc(size_bytes, site, policy=Interleave(nodes), **kwargs)

    def numa_free(self, obj: DataObject) -> None:
        """Release an allocation."""
        self.allocator.free(obj)

    # -- migration -----------------------------------------------------------

    def numa_move_pages_interleaved(self, obj: DataObject, nodes: tuple[int, ...] = ()) -> DataObject:
        """Migrate an object's pages to an interleaved layout."""
        return self.allocator.apply_policy(obj, Interleave(nodes))

    def numa_move_pages_onnode(self, obj: DataObject, node: int) -> DataObject:
        """Migrate an object's pages onto one node."""
        return self.allocator.apply_policy(obj, BindToNode(node))

    def numa_replicate(self, obj: DataObject) -> DataObject:
        """Give every node its own read-only replica of ``obj``.

        Only meaningful for data that is never written after initialization
        (the caller asserts this, as in the Streamcluster case study).
        """
        if not obj.is_heap:
            raise InvalidAddressError("cannot replicate untracked static data")
        return self.allocator.apply_policy(obj, Replicated())
