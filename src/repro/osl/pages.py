"""Virtual memory pages and NUMA placement policies.

The placement of physical pages across NUMA nodes is the mechanism behind
every effect DR-BW studies: a page on node ``n`` turns accesses from other
nodes into remote traffic over the ``src → n`` channel.  This module
implements the Linux policies the paper manipulates:

* **first-touch** (the default): a page lands on the node of the thread
  that first touches it — which is why master-thread initialization puts
  whole arrays on node 0 and creates contention;
* **bind**: all pages on one chosen node (``numa_alloc_onnode``);
* **interleave**: pages round-robin across a node set
  (``numa_alloc_interleaved``) — the paper's coarse-grained remedy and its
  ground-truth oracle;
* **replicated**: a per-node read-only copy (the Streamcluster remedy);
  every access is served locally.

Pages are 4 KiB by default; *huge pages* (2 MiB) give the deterministic
page-offset → cache-set mapping the bandit micro-benchmark exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AllocationError, InvalidAddressError, TopologyError

__all__ = [
    "PAGE_BYTES",
    "HUGE_PAGE_BYTES",
    "PagePlacementPolicy",
    "FirstTouch",
    "BindToNode",
    "Interleave",
    "ExplicitPlacement",
    "Replicated",
    "PageTable",
    "VirtualAddressSpace",
]

PAGE_BYTES = 4 * 1024
HUGE_PAGE_BYTES = 2 * 1024 * 1024


class PagePlacementPolicy:
    """Base class for page placement policies."""

    def place(self, n_pages: int, n_nodes: int) -> np.ndarray:
        """Return the node of each of ``n_pages`` pages."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class FirstTouch(PagePlacementPolicy):
    """All pages land on the node of the (single) first-touching thread.

    Real first-touch is per page; in the workloads we model, one thread
    (usually the master, node 0) initializes the whole object, so the
    object-granular approximation is exact for the paper's scenarios.
    Parallel first-touch initialization is expressed by giving each
    thread's chunk its own ``FirstTouch(node)`` — see the co-locate
    optimization.
    """

    toucher_node: int = 0

    def place(self, n_pages: int, n_nodes: int) -> np.ndarray:
        if not 0 <= self.toucher_node < n_nodes:
            raise TopologyError(f"first-touch node {self.toucher_node} out of range")
        return np.full(n_pages, self.toucher_node, dtype=np.int64)


@dataclass(frozen=True, slots=True)
class BindToNode(PagePlacementPolicy):
    """Every page bound to one explicit node."""

    node: int

    def place(self, n_pages: int, n_nodes: int) -> np.ndarray:
        if not 0 <= self.node < n_nodes:
            raise TopologyError(f"bind node {self.node} out of range")
        return np.full(n_pages, self.node, dtype=np.int64)


@dataclass(frozen=True)
class Interleave(PagePlacementPolicy):
    """Pages round-robin over ``nodes`` (all nodes when empty)."""

    nodes: tuple[int, ...] = ()

    def place(self, n_pages: int, n_nodes: int) -> np.ndarray:
        nodes = self.nodes or tuple(range(n_nodes))
        for n in nodes:
            if not 0 <= n < n_nodes:
                raise TopologyError(f"interleave node {n} out of range")
        order = np.array(nodes, dtype=np.int64)
        return order[np.arange(n_pages) % len(order)]


@dataclass(frozen=True)
class ExplicitPlacement(PagePlacementPolicy):
    """An explicit per-page node assignment.

    This is how the co-locate optimization is expressed: the compiler
    computes, for every page of an object, the node of the thread whose
    chunk contains it, and places the page there.
    """

    nodes: tuple[int, ...]

    def place(self, n_pages: int, n_nodes: int) -> np.ndarray:
        if len(self.nodes) != n_pages:
            raise AllocationError(
                f"explicit placement covers {len(self.nodes)} pages, need {n_pages}"
            )
        arr = np.asarray(self.nodes, dtype=np.int64)
        if arr.size and (arr.min() < 0 or arr.max() >= n_nodes):
            raise TopologyError("explicit placement references a missing node")
        return arr.copy()


@dataclass(frozen=True, slots=True)
class Replicated(PagePlacementPolicy):
    """One read-only replica per node; accesses are always node-local.

    The page table stores the 'home' copy on node 0; consumers must check
    :meth:`PageTable.is_replicated` before using per-page nodes.
    """

    def place(self, n_pages: int, n_nodes: int) -> np.ndarray:
        return np.zeros(n_pages, dtype=np.int64)


class VirtualAddressSpace:
    """Bump allocator for virtual address ranges.

    Returns page-aligned (or huge-page-aligned) base addresses; never
    reuses a range, which keeps sample attribution unambiguous even after
    frees — matching how DR-BW's allocation table behaves in practice for
    long-lived arrays.
    """

    def __init__(self, base: int = 0x1000_0000) -> None:
        if base <= 0:
            raise AllocationError("address-space base must be positive")
        self._next = base

    def reserve(self, size_bytes: int, align: int = PAGE_BYTES) -> int:
        """Reserve ``size_bytes`` and return the aligned base address."""
        if size_bytes <= 0:
            raise AllocationError(f"cannot reserve {size_bytes} bytes")
        if align <= 0 or (align & (align - 1)) != 0:
            raise AllocationError(f"alignment must be a power of two: {align}")
        base = (self._next + align - 1) & ~(align - 1)
        self._next = base + size_bytes
        return base


class PageTable:
    """Maps virtual page ranges to NUMA nodes.

    Ranges never overlap; lookups are binary searches over sorted range
    bases, so ``node_of_address`` is O(log ranges) — the same cost profile
    as libnuma's ``move_pages``-based lookup that DR-BW calls per sample.
    """

    def __init__(self, n_nodes: int, page_bytes: int = PAGE_BYTES) -> None:
        if n_nodes < 1:
            raise TopologyError("need at least one node")
        if page_bytes <= 0 or (page_bytes & (page_bytes - 1)) != 0:
            raise AllocationError(f"page size must be a power of two: {page_bytes}")
        self.n_nodes = n_nodes
        self.page_bytes = page_bytes
        self._bases: list[int] = []       # sorted range base addresses
        self._sizes: list[int] = []
        self._nodes: list[np.ndarray] = []  # per-range page->node arrays
        self._replicated: list[bool] = []

    # -- mapping ------------------------------------------------------------

    def n_pages(self, size_bytes: int) -> int:
        """Pages needed to back ``size_bytes``."""
        return -(-size_bytes // self.page_bytes)

    def map_range(
        self,
        base: int,
        size_bytes: int,
        policy: PagePlacementPolicy,
    ) -> np.ndarray:
        """Back ``[base, base+size)`` with pages placed by ``policy``."""
        if base < 0 or size_bytes <= 0:
            raise AllocationError(f"bad range base={base} size={size_bytes}")
        if base % self.page_bytes != 0:
            raise AllocationError(f"base {base:#x} not page-aligned")
        idx = self._find_slot(base, size_bytes)
        nodes = policy.place(self.n_pages(size_bytes), self.n_nodes)
        self._bases.insert(idx, base)
        self._sizes.insert(idx, size_bytes)
        self._nodes.insert(idx, nodes)
        self._replicated.insert(idx, isinstance(policy, Replicated))
        return nodes

    def unmap_range(self, base: int) -> None:
        """Remove the range starting exactly at ``base``."""
        i = self._range_index_of_base(base)
        del self._bases[i], self._sizes[i], self._nodes[i], self._replicated[i]

    def remap_range(self, base: int, policy: PagePlacementPolicy) -> np.ndarray:
        """Re-place an existing range under a new policy (page migration)."""
        i = self._range_index_of_base(base)
        nodes = policy.place(self.n_pages(self._sizes[i]), self.n_nodes)
        self._nodes[i] = nodes
        self._replicated[i] = isinstance(policy, Replicated)
        return nodes

    def _find_slot(self, base: int, size_bytes: int) -> int:
        import bisect

        idx = bisect.bisect_left(self._bases, base)
        if idx > 0 and self._bases[idx - 1] + self._sizes[idx - 1] > base:
            raise AllocationError(f"range at {base:#x} overlaps an existing mapping")
        if idx < len(self._bases) and base + size_bytes > self._bases[idx]:
            raise AllocationError(f"range at {base:#x} overlaps an existing mapping")
        return idx

    def _range_index_of_base(self, base: int) -> int:
        import bisect

        idx = bisect.bisect_left(self._bases, base)
        if idx == len(self._bases) or self._bases[idx] != base:
            raise InvalidAddressError(f"no mapped range starts at {base:#x}")
        return idx

    def _range_index_of_addr(self, addr: int) -> int:
        import bisect

        idx = bisect.bisect_right(self._bases, addr) - 1
        if idx < 0 or addr >= self._bases[idx] + self._sizes[idx]:
            raise InvalidAddressError(f"address {addr:#x} is not mapped")
        return idx

    # -- queries ------------------------------------------------------------

    def node_of_address(self, addr: int, accessor_node: int | None = None) -> int:
        """Node whose DRAM holds ``addr`` (libnuma ``numa_node_of_address``).

        For replicated ranges the nearest replica is the accessor's own node
        when given, else the home copy.
        """
        i = self._range_index_of_addr(addr)
        if self._replicated[i] and accessor_node is not None:
            if not 0 <= accessor_node < self.n_nodes:
                raise TopologyError(f"accessor node {accessor_node} out of range")
            return accessor_node
        page = (addr - self._bases[i]) // self.page_bytes
        return int(self._nodes[i][page])

    def is_mapped(self, addr: int) -> bool:
        """True when ``addr`` falls in a mapped range."""
        try:
            self._range_index_of_addr(addr)
            return True
        except InvalidAddressError:
            return False

    def is_replicated(self, addr: int) -> bool:
        """True when ``addr`` lies in a replicated range."""
        return self._replicated[self._range_index_of_addr(addr)]

    def node_fractions(self, base: int, size_bytes: int, accessor_node: int | None = None) -> np.ndarray:
        """Distribution over nodes of the pages backing ``[base, base+size)``.

        This is what turns page placement into the engine's per-stream
        ``node_fractions``.  For replicated ranges with a known accessor the
        mass is entirely on the accessor's node.
        """
        if size_bytes <= 0:
            raise AllocationError("size must be positive")
        i = self._range_index_of_addr(base)
        end = base + size_bytes - 1
        if end >= self._bases[i] + self._sizes[i]:
            raise InvalidAddressError(
                f"range [{base:#x}, {end:#x}] spills out of its mapping"
            )
        if self._replicated[i] and accessor_node is not None:
            out = np.zeros(self.n_nodes)
            out[accessor_node] = 1.0
            return out
        first = (base - self._bases[i]) // self.page_bytes
        last = (end - self._bases[i]) // self.page_bytes
        counts = np.bincount(self._nodes[i][first : last + 1], minlength=self.n_nodes)
        return counts / counts.sum()

    def nodes_of_addresses(
        self,
        addrs: np.ndarray,
        accessor_nodes: np.ndarray | None = None,
        on_unmapped: str = "raise",
    ) -> np.ndarray:
        """Vectorized :meth:`node_of_address` over an address array.

        ``accessor_nodes`` (same shape) resolves replicated ranges to the
        accessor's local replica, as in the scalar lookup.

        ``on_unmapped`` selects the failure behavior: ``"raise"`` (the
        default) raises :class:`InvalidAddressError` on the first unmapped
        address, while ``"ignore"`` reports ``-1`` for unmapped entries —
        the mode the fault-tolerant profiler uses to quarantine corrupted
        samples instead of aborting the whole attribution pass.
        """
        if on_unmapped not in ("raise", "ignore"):
            raise ValueError(f"on_unmapped must be 'raise' or 'ignore', got {on_unmapped!r}")
        addrs = np.asarray(addrs, dtype=np.int64)
        out = np.empty(addrs.shape[0], dtype=np.int64)
        bases = np.asarray(self._bases, dtype=np.int64)
        sizes = np.asarray(self._sizes, dtype=np.int64)
        if bases.size == 0:
            if addrs.size and on_unmapped == "raise":
                raise InvalidAddressError("no ranges mapped")
            out.fill(-1)
            return out
        idx = np.searchsorted(bases, addrs, side="right") - 1
        bad = (idx < 0) | (addrs >= bases[np.maximum(idx, 0)] + sizes[np.maximum(idx, 0)])
        if np.any(bad):
            if on_unmapped == "raise":
                raise InvalidAddressError(
                    f"{int(bad.sum())} addresses are not mapped (first: "
                    f"{int(addrs[bad][0]):#x})"
                )
            out[bad] = -1
            work_idx = np.where(bad, -1, idx)
        else:
            work_idx = idx
        # Group addresses by owning range with one stable sort instead of a
        # full-array mask per range: O(n log n) regardless of range count.
        if work_idx.size == 0:
            return out
        order = np.argsort(work_idx, kind="stable")
        sidx = work_idx[order]
        starts = np.flatnonzero(np.r_[True, sidx[1:] != sidx[:-1]])
        ends = np.r_[starts[1:], sidx.size]
        for s, e in zip(starts.tolist(), ends.tolist()):
            r = int(sidx[s])
            if r < 0:  # unmapped (already -1)
                continue
            sel = order[s:e]
            if self._replicated[r] and accessor_nodes is not None:
                out[sel] = accessor_nodes[sel]
                continue
            pages = (addrs[sel] - bases[r]) // self.page_bytes
            out[sel] = self._nodes[r][pages]
        return out

    def pages_on_node(self, base: int, size_bytes: int, node: int) -> np.ndarray:
        """Page indices (relative to ``base``) that live on ``node``."""
        i = self._range_index_of_addr(base)
        first = (base - self._bases[i]) // self.page_bytes
        last = (base + size_bytes - 1 - self._bases[i]) // self.page_bytes
        window = self._nodes[i][first : last + 1]
        return np.nonzero(window == node)[0]

    @property
    def n_ranges(self) -> int:
        """Number of currently mapped ranges."""
        return len(self._bases)
