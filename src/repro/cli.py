"""Command-line interface: ``python -m repro.cli <command>``.

The workflow a release user runs without writing Python:

* ``train``    — collect the Table II training set, fit, cross-validate,
  and save the model to JSON;
* ``detect``   — profile one benchmark analog under a ``Tt-Nn``
  configuration and print the per-channel verdicts;
* ``diagnose`` — detect, then print the Contribution-Fraction ranking and
  suggested remedies;
* ``list``     — the available benchmarks and their inputs.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.classifier import DrBwClassifier, classify_case
from repro.core.diagnoser import Diagnoser
from repro.core.profiler import DrBwProfiler
from repro.core.report import format_channel_labels, format_diagnosis, suggest_remedy
from repro.core.training import train_default_classifier, training_matrix
from repro.core.validation import cross_validate
from repro.eval.configs import config_by_name
from repro.numasim.machine import Machine
from repro.types import Mode
from repro.workloads.suites.registry import BENCHMARKS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="drbw",
        description="DR-BW: identify NUMA bandwidth contention (reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_train = sub.add_parser("train", help="train and save the classifier")
    p_train.add_argument("--model", default="drbw_model.json",
                         help="output JSON path (default: drbw_model.json)")
    p_train.add_argument("--seed", type=int, default=0)

    for name, hlp in (("detect", "classify a benchmark run"),
                      ("diagnose", "detect + rank the contended data objects")):
        p = sub.add_parser(name, help=hlp)
        p.add_argument("benchmark", help="benchmark name (see `list`)")
        p.add_argument("--input", default=None,
                       help="input name (default: the benchmark's largest)")
        p.add_argument("--config", default="T32-N4",
                       help="Tt-Nn configuration (default: T32-N4)")
        p.add_argument("--model", default=None,
                       help="trained model JSON (default: train in-process)")
        p.add_argument("--seed", type=int, default=0)

    sub.add_parser("list", help="list benchmarks and inputs")
    return parser


def _load_or_train(model_path: str | None, seed: int, machine: Machine) -> DrBwClassifier:
    if model_path:
        with open(model_path) as fh:
            return DrBwClassifier.from_dict(json.load(fh))
    print("no --model given; training on the mini-programs ...", file=sys.stderr)
    clf, _ = train_default_classifier(machine, seed=seed)
    return clf


def _resolve_benchmark(args) -> tuple:
    try:
        spec = BENCHMARKS[args.benchmark]
    except KeyError:
        sys.exit(f"unknown benchmark {args.benchmark!r}; try `list`")
    inp = args.input or spec.inputs[-1]
    if inp not in spec.inputs:
        sys.exit(f"{spec.name} has inputs {spec.inputs}, not {inp!r}")
    return spec, inp


def cmd_train(args) -> int:
    machine = Machine()
    clf, instances = train_default_classifier(machine, seed=args.seed)
    X, y = training_matrix(list(instances))
    cv = cross_validate(clf, X, y, k=10, seed=args.seed)
    print(f"trained on {len(instances)} runs; 10-fold CV accuracy {cv.accuracy:.1%}")
    print(clf.render_tree())
    with open(args.model, "w") as fh:
        json.dump(clf.to_dict(), fh, indent=2)
    print(f"model saved to {args.model}")
    return 0


def cmd_detect(args, want_diagnosis: bool = False) -> int:
    machine = Machine()
    clf = _load_or_train(args.model, args.seed, machine)
    spec, inp = _resolve_benchmark(args)
    cfg = config_by_name(args.config)

    workload = spec.build(inp)
    profile = DrBwProfiler(machine).profile(
        workload, cfg.n_threads, cfg.n_nodes, seed=args.seed
    )
    labels = clf.classify_profile(profile)
    print(f"{spec.name} ({inp}) under {cfg.name}:")
    print(format_channel_labels(labels))
    verdict = classify_case(labels)
    print(f"case verdict: {verdict}")

    if want_diagnosis:
        if verdict is not Mode.RMC:
            print("nothing to diagnose: no contended channel")
        else:
            report = Diagnoser().diagnose(profile, labels)
            print()
            print(format_diagnosis(report))
            top = report.top(1)[0]
            print(f"\nsuggested remedy for {top.name!r}: {suggest_remedy(top)}")
    return 0 if verdict is Mode.GOOD else 2


def cmd_list(_args) -> int:
    print(f"{'benchmark':<15}{'suite':<10}{'class':<6} inputs")
    for name, spec in sorted(BENCHMARKS.items()):
        print(f"{name:<15}{spec.suite:<10}{spec.paper_class:<6} "
              f"{', '.join(spec.inputs)}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "train":
        return cmd_train(args)
    if args.command == "detect":
        return cmd_detect(args, want_diagnosis=False)
    if args.command == "diagnose":
        return cmd_detect(args, want_diagnosis=True)
    if args.command == "list":
        return cmd_list(args)
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
