"""Command-line interface: ``python -m repro.cli <command>``.

The workflow a release user runs without writing Python:

* ``train``    — collect the Table II training set, fit, cross-validate,
  and save the model to JSON;
* ``detect``   — profile one benchmark analog under a ``Tt-Nn``
  configuration and print the per-channel verdicts;
* ``diagnose`` — detect, then print the Contribution-Fraction ranking and
  suggested remedies;
* ``monitor``  — profile a benchmark (or the built-in ``demo`` workload)
  with *live* monitoring: sliding-window verdicts per channel, an alert
  engine, an optional JSONL event stream (``--events``) and an optional
  Prometheus ``/metrics`` endpoint (``--serve``); exits 2 when any
  channel was held in ``rmc`` at any point;
* ``fleet``    — simulate N machines concurrently, each live-monitored,
  streaming per-window wire records into one fleet aggregator:
  per-epoch rollups, top-K contended channels, fleet-scoped alerts, a
  cross-machine Perfetto timeline (``--timeline``), a replayable wire
  recording (``--events``/``--replay``), and fleet-labelled Prometheus
  metrics + push ingest over HTTP (``--serve``); exits 2 when a
  fleet-level rmc alert fired (see ``docs/observability.md``);
* ``campaign`` — regenerate a paper table (II, V, or VII) as a sharded
  campaign: ``--jobs N`` fans the workload × configuration grid over a
  worker pool, results are bit-identical for any N, and the on-disk
  shard cache (``--cache-dir``/``--no-cache``) makes unchanged re-runs
  near-instant (see ``docs/parallelism.md``);
* ``serve``    — run the profiling service daemon: profile/detect/
  diagnose jobs over HTTP with request coalescing, a bounded queue
  (429 + ``Retry-After`` under saturation), per-client rate limits,
  ``/healthz``/``/readyz``/``/metrics`` endpoints, a graceful
  SIGTERM drain, and optional trace-carrying JSONL access/span logs
  (``--access-log``/``--spans``, see ``docs/service.md``);
* ``loadgen``  — drive a live service with open-loop (fixed arrival
  rate), closed-loop (fixed concurrency), or sweep (saturation-knee)
  load, then check the measured availability / latency quantiles /
  throughput against a declarative SLO spec: exits 1 on breach and
  writes the ``drbw-slo-report`` artifact (``--report``);
* ``report``   — render the text dashboard for a telemetry artifact
  exported by a previous run (``--stages`` for the per-stage wall/CPU
  aggregate only);
* ``list``     — the available benchmarks and their inputs.

``detect`` and ``diagnose`` also take ``--json``: print the machine-
readable result as one canonical-JSON line instead of the human text —
byte-identical to what the service returns for the same job spec.

``detect`` and ``diagnose`` accept ``--faults`` (a preset name such as
``standard``, or ``drop=0.1,corrupt=0.01``-style pairs) to run the
pipeline under injected collection faults; the output then includes a
degradation summary and per-channel confidence.  ``train``/``detect``/
``diagnose`` accept ``--telemetry[=DIR]`` to record stage spans, pipeline
metrics, and per-channel timelines, exported as a run artifact that
``report`` (or Perfetto, via ``trace.json``) can inspect later.  ``-v``
/``-q`` raise/lower library log verbosity.  Any :class:`ReproError` —
unknown benchmark, bad configuration, malformed model file, invalid
fault spec, broken artifact — prints one line to stderr and exits with
status 2.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys

from repro import telemetry
from repro.core.classifier import DrBwClassifier, classify_case
from repro.core.diagnoser import Diagnoser
from repro.core.profiler import DrBwProfiler, ProfilerConfig
from repro.core.report import (
    format_channel_labels,
    format_channel_verdicts,
    format_degradation,
    format_diagnosis,
    suggest_remedy,
)
from repro.core.training import train_default_classifier, training_matrix
from repro.core.validation import cross_validate
from repro.errors import ConfigError, ReproError
from repro.eval.configs import config_by_name
from repro.faults import FAULT_PRESETS, INFRA_PRESETS, parse_fault_plan
from repro.numasim.machine import Machine

# The telemetry-payload JSON fragments are shared with the service's job
# executor so the CLI and service outputs can never drift.
from repro.service.jobspec import (
    degradation_payload as _degradation_payload,
    diagnosis_payload as _diagnosis_payload,
    verdicts_payload as _verdicts_payload,
)
from repro.telemetry.artifact import (
    collect_metadata,
    export_artifact,
    load_artifact,
)
from repro.telemetry.dashboard import render_dashboard, render_stage_table
from repro.types import Mode
from repro.workloads.suites.registry import BENCHMARKS

__all__ = ["main", "build_parser"]

#: Default artifact directory for a bare ``--telemetry``.
DEFAULT_TELEMETRY_DIR = "drbw-telemetry"


def _add_common(p: argparse.ArgumentParser, with_telemetry: bool = True) -> None:
    p.add_argument("-v", "--verbose", action="count", default=0,
                   help="more library logging (-v info, -vv debug)")
    p.add_argument("-q", "--quiet", action="count", default=0,
                   help="less library logging (errors only)")
    if with_telemetry:
        p.add_argument("--telemetry", nargs="?", const=DEFAULT_TELEMETRY_DIR,
                       default=None, metavar="DIR",
                       help="record spans/metrics/timelines and export a run "
                            f"artifact to DIR (default: {DEFAULT_TELEMETRY_DIR}/)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="drbw",
        description="DR-BW: identify NUMA bandwidth contention (reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_train = sub.add_parser("train", help="train and save the classifier")
    p_train.add_argument("--model", default="drbw_model.json",
                         help="output JSON path (default: drbw_model.json)")
    p_train.add_argument("--seed", type=int, default=0)
    p_train.add_argument("--jobs", type=int, default=None, metavar="N",
                         help="worker processes for training collection "
                              "(default: $DRBW_JOBS, else serial)")
    _add_common(p_train)

    p_camp = sub.add_parser(
        "campaign",
        help="run a sharded experiment campaign (Tables II/V/VII)",
    )
    p_camp.add_argument("experiment", choices=("table2", "table5", "table7"),
                        help="which campaign to run: table2 (training set + "
                             "CV), table5 (detection sweep), table7 "
                             "(profiling overhead)")
    p_camp.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes (default: $DRBW_JOBS, else 1; "
                             "results are identical for any N)")
    p_camp.add_argument("--seed", type=int, default=0)
    p_camp.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="shard result cache (default: $DRBW_CACHE_DIR, "
                             "else ~/.cache/drbw)")
    p_camp.add_argument("--no-cache", action="store_true",
                        help="recompute every shard, read/write no cache")
    p_camp.add_argument("--benchmarks", default=None, metavar="A,B,...",
                        help="comma-separated benchmark subset (table5 only)")
    p_camp.add_argument("--journal", default=None, metavar="FILE",
                        help="checkpoint completed shards to this JSONL "
                             "write-ahead journal as they finish")
    p_camp.add_argument("--resume", default=None, metavar="FILE",
                        help="resume from an interrupted campaign's journal "
                             "(implies --journal FILE; completed shards are "
                             "replayed, not re-executed)")
    p_camp.add_argument("--out", default=None, metavar="FILE",
                        help="write merged shard payloads (canonical JSON, "
                             "one line per shard in spec order) — requires "
                             "--journal or --resume")
    p_camp.add_argument("--retries", type=int, default=None, metavar="N",
                        help="max attempts per shard after worker crashes or "
                             "deadline expiry (default: 3)")
    p_camp.add_argument("--task-timeout", type=float, default=None, metavar="S",
                        help="per-shard deadline in seconds (default: none)")
    p_camp.add_argument("--infra-faults", default=None, metavar="PLAN",
                        help="inject infrastructure faults: a preset "
                             f"({', '.join(INFRA_PRESETS)}) or key=value "
                             "pairs, e.g. kill=0.3,enospc=0.2,seed=7 "
                             "(chaos testing; results stay byte-identical)")
    p_camp.add_argument("--quarantine", action="store_true",
                        help="quarantine shards that exhaust their retries "
                             "instead of failing the campaign")
    _add_common(p_camp)

    for name, hlp in (("detect", "classify a benchmark run"),
                      ("diagnose", "detect + rank the contended data objects")):
        p = sub.add_parser(name, help=hlp)
        p.add_argument("benchmark", help="benchmark name (see `list`)")
        p.add_argument("--input", default=None,
                       help="input name (default: the benchmark's largest)")
        p.add_argument("--config", default="T32-N4",
                       help="Tt-Nn configuration (default: T32-N4)")
        p.add_argument("--model", default=None,
                       help="trained model JSON (default: train in-process)")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--faults", default=None, metavar="PLAN",
                       help="inject collection faults: a preset "
                            f"({', '.join(FAULT_PRESETS)}) or key=value pairs, "
                            "e.g. drop=0.1,corrupt=0.01,seed=7")
        p.add_argument("--json", action="store_true",
                       help="print the result as one canonical-JSON line "
                            "(byte-identical to the service's job result)")
        _add_common(p)

    p_mon = sub.add_parser(
        "monitor", help="profile with live contention monitoring"
    )
    p_mon.add_argument("benchmark",
                       help="benchmark name (see `list`), or `demo` for the "
                            "built-in contend-then-recover workload")
    p_mon.add_argument("--input", default=None,
                       help="input name (default: the benchmark's largest)")
    p_mon.add_argument("--config", default="T16-N2",
                       help="Tt-Nn configuration (default: T16-N2)")
    p_mon.add_argument("--model", default=None,
                       help="trained model JSON (default: train in-process)")
    p_mon.add_argument("--seed", type=int, default=0)
    p_mon.add_argument("--faults", default=None, metavar="PLAN",
                       help="inject collection faults: a preset "
                            f"({', '.join(FAULT_PRESETS)}) or key=value pairs")
    p_mon.add_argument("--window", type=int, default=8, metavar="W",
                       help="sliding window width in intervals (default: 8)")
    p_mon.add_argument("--interval", type=float, default=None, metavar="CYCLES",
                       help="monitoring interval length in cycles "
                            "(default: 8e6)")
    p_mon.add_argument("--hysteresis", default=None, metavar="N/M",
                       help="require N agreeing verdicts of the last M to "
                            "flip a channel status (default: 2/3)")
    p_mon.add_argument("--rules", default=None, metavar="FILE",
                       help="JSON file with alert rules (default: built-ins)")
    p_mon.add_argument("--events", default=None, metavar="FILE",
                       help="write the JSONL event stream here")
    p_mon.add_argument("--serve", nargs="?", const=0, default=None, type=int,
                       metavar="PORT",
                       help="serve Prometheus text at /metrics during the run "
                            "(PORT 0 or omitted: OS-assigned)")
    p_mon.add_argument("--plain", action="store_true",
                       help="one line per window instead of the live "
                            "dashboard (useful for CI logs and pipes)")
    _add_common(p_mon)

    p_fleet = sub.add_parser(
        "fleet",
        help="simulate a fleet of machines into one aggregator",
    )
    p_fleet.add_argument("--machines", type=int, default=12, metavar="N",
                         help="simulated machines in the fleet (default: 12)")
    p_fleet.add_argument("--seed", type=int, default=0,
                         help="fleet seed; per-machine seeds, workloads, and "
                              "fault plans derive from it (default: 0)")
    p_fleet.add_argument("--config", default="T16-N2",
                         help="per-machine Tt-Nn configuration "
                              "(default: T16-N2)")
    p_fleet.add_argument("--model", default=None,
                         help="trained model JSON (default: train in-process)")
    p_fleet.add_argument("--jobs", type=int, default=None, metavar="N",
                         help="concurrent machine simulations (default: "
                              "min(8, machines); results identical for any N)")
    p_fleet.add_argument("--contend-fraction", type=float, default=0.5,
                         metavar="F",
                         help="fraction of machines assigned the contended "
                              "workload (default: 0.5)")
    p_fleet.add_argument("--faults", default=None, metavar="PLAN",
                         help="collection fault plan for the faulted subset: "
                              f"a preset ({', '.join(FAULT_PRESETS)}) or "
                              "key=value pairs")
    p_fleet.add_argument("--faulted-fraction", type=float, default=0.25,
                         metavar="F",
                         help="fraction of machines running under --faults "
                              "(default: 0.25)")
    p_fleet.add_argument("--window", type=int, default=4, metavar="W",
                         help="per-machine sliding window width (default: 4)")
    p_fleet.add_argument("--interval", type=float, default=None,
                         metavar="CYCLES",
                         help="per-machine monitoring interval (default: 4e6)")
    p_fleet.add_argument("--accesses", type=float, default=1_500_000.0,
                         metavar="N",
                         help="contended-phase accesses per thread per "
                              "machine (default: 1500000; the default mix "
                              "fires and resolves the fleet rmc alert)")
    p_fleet.add_argument("--rules", default=None, metavar="FILE",
                         help="JSON file with fleet alert rules "
                              "(default: built-ins)")
    p_fleet.add_argument("--topk", type=int, default=5, metavar="K",
                         help="top contended channels to track (default: 5)")
    p_fleet.add_argument("--fleet-tag", default="fleet0", metavar="TAG",
                         help="fleet label on metrics and the rollup "
                              "(default: fleet0)")
    p_fleet.add_argument("--events", default=None, metavar="FILE",
                         help="write the JSONL wire stream here (replayable "
                              "with --replay)")
    p_fleet.add_argument("--events-max-kb", type=int, default=None,
                         metavar="KB",
                         help="rotate the wire file past this size, keeping "
                              "the last 3 segments (default: unbounded)")
    p_fleet.add_argument("--replay", default=None, metavar="FILE",
                         help="skip simulation: re-aggregate a recorded wire "
                              "stream (byte-identical derived state)")
    p_fleet.add_argument("--timeline", default=None, metavar="FILE",
                         help="export the cross-machine Chrome-trace timeline "
                              "JSON here (loadable in Perfetto)")
    p_fleet.add_argument("--rollup", default=None, metavar="FILE",
                         help="write the fleet rollup as canonical JSON here")
    p_fleet.add_argument("--serve", nargs="?", const=0, default=None, type=int,
                         metavar="PORT",
                         help="serve fleet /metrics, /v1/fleet/rollup and "
                              "push ingest during the run (PORT 0 or "
                              "omitted: OS-assigned)")
    p_fleet.add_argument("--serve-hold", action="store_true",
                         help="with --serve: keep the endpoints up after the "
                              "run until interrupted (scrapers never race "
                              "the run's end)")
    p_fleet.add_argument("--plain", action="store_true",
                         help="one line per fleet epoch instead of the live "
                              "dashboard (useful for CI logs and pipes)")
    _add_common(p_fleet, with_telemetry=False)

    p_serve = sub.add_parser(
        "serve", help="run the profiling service daemon"
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8787,
                         help="listen port, 0 for OS-assigned (default: 8787)")
    p_serve.add_argument("--workers", type=int, default=1, metavar="N",
                         help="server worker processes (default: 1); N > 1 "
                              "pre-forks N full service processes behind one "
                              "shared listener with cross-process "
                              "single-flight (see docs/service.md)")
    p_serve.add_argument("--threads", type=int, default=2, metavar="M",
                         help="job worker threads per process (default: 2)")
    p_serve.add_argument("--listener", choices=("auto", "reuseport", "inherit"),
                         default="auto",
                         help="multi-process listener strategy: SO_REUSEPORT "
                              "per-worker sockets, or one pre-fork inherited "
                              "socket (default: auto — reuseport where the "
                              "platform has it)")
    p_serve.add_argument("--batch-fraction", type=float, default=0.5,
                         metavar="F",
                         help="admit X-Drbw-Priority: batch jobs only while "
                              "queue depth < F * queue size (default: 0.5)")
    p_serve.add_argument("--queue-size", type=int, default=16, metavar="N",
                         help="bounded job queue depth; full queue answers "
                              "429 with Retry-After (default: 16)")
    p_serve.add_argument("--rate", type=float, default=None, metavar="R",
                         help="per-client submissions/second token-bucket "
                              "rate (default: unlimited)")
    p_serve.add_argument("--burst", type=float, default=10.0, metavar="B",
                         help="per-client token-bucket burst (default: 10)")
    p_serve.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="warm-result cache (default: $DRBW_CACHE_DIR, "
                              "else ~/.cache/drbw)")
    p_serve.add_argument("--no-cache", action="store_true",
                         help="execute every job, read/write no cache")
    p_serve.add_argument("--no-telemetry", action="store_true",
                         help="skip per-job pipeline telemetry aggregation")
    p_serve.add_argument("--job-timeout", type=float, default=None, metavar="S",
                         help="per-job deadline; the watchdog fails or "
                              "requeues jobs that exceed it (default: none)")
    p_serve.add_argument("--job-attempts", type=int, default=1, metavar="N",
                         help="attempts per job before a deadline expiry is "
                              "terminal (default: 1)")
    p_serve.add_argument("--degraded-window", type=float, default=30.0,
                         metavar="S",
                         help="how long a watchdog incident keeps /readyz "
                              "reporting degraded (default: 30)")
    p_serve.add_argument("--infra-faults", default=None, metavar="PLAN",
                         help="inject infrastructure faults into the service "
                              "(chaos testing): same spec language as "
                              "`campaign --infra-faults`, e.g. "
                              "svc-hang=1.0,svc-hang-s=60,seed=1")
    p_serve.add_argument("--access-log", default=None, metavar="FILE",
                         help="append one JSONL record per HTTP request and "
                              "per terminal job, each carrying its trace_id "
                              "(see docs/service.md)")
    p_serve.add_argument("--spans", default=None, metavar="FILE",
                         help="append every executed job's telemetry spans "
                              "as JSONL, tagged with trace_id and job_id "
                              "(joinable against --access-log)")
    _add_common(p_serve, with_telemetry=False)

    p_loadgen = sub.add_parser(
        "loadgen", help="drive a live service and check it against an SLO"
    )
    p_loadgen.add_argument("--url", required=True,
                           help="base URL of a running `drbw serve`")
    p_loadgen.add_argument("--mode", choices=("closed", "open", "sweep"),
                           default="closed",
                           help="closed: fixed concurrency; open: fixed "
                                "arrival rate (--rps); sweep: one closed run "
                                "per --concurrency level with knee detection "
                                "(default: closed)")
    p_loadgen.add_argument("--concurrency", default="4", metavar="N[,N...]",
                           help="worker count (closed), or comma-separated "
                                "sweep levels (default: 4)")
    p_loadgen.add_argument("--rps", type=float, default=10.0, metavar="R",
                           help="open-loop target arrivals/second "
                                "(default: 10)")
    p_loadgen.add_argument("--duration", type=float, default=10.0, metavar="S",
                           help="seconds per run (default: 10)")
    p_loadgen.add_argument("--timeout", type=float, default=30.0, metavar="S",
                           help="per-request round-trip deadline (default: 30)")
    p_loadgen.add_argument("--benchmark", default="NW",
                           help="benchmark for the probe job spec "
                                "(default: NW)")
    p_loadgen.add_argument("--input", default=None,
                           help="benchmark input (default: largest)")
    p_loadgen.add_argument("--config", default="T4-N2", metavar="Tt-Nn",
                           help="probe job configuration (default: T4-N2)")
    p_loadgen.add_argument("--kind", choices=("profile", "detect", "diagnose"),
                           default="profile",
                           help="probe job kind (default: profile; detect/"
                                "diagnose need --model readable by the "
                                "server)")
    p_loadgen.add_argument("--model", default=None, metavar="FILE",
                           help="server-side model path for detect/diagnose "
                                "probe jobs")
    p_loadgen.add_argument("--seed", type=int, default=0,
                           help="base probe job seed (default: 0)")
    p_loadgen.add_argument("--same-job", action="store_true",
                           help="submit the identical spec every time "
                                "(exercises the coalescer and warm cache); "
                                "default varies the seed per request so "
                                "every request is real work")
    p_loadgen.add_argument("--slo", default=None, metavar="SPEC.json",
                           help="SLO spec file; the run exits 1 when any "
                                "target is breached")
    p_loadgen.add_argument("--report", default=None, metavar="OUT.json",
                           help="write the drbw-slo-report artifact here")
    _add_common(p_loadgen, with_telemetry=False)

    p_report = sub.add_parser(
        "report", help="render the dashboard for a telemetry artifact"
    )
    p_report.add_argument("artifact", help="artifact directory from --telemetry")
    p_report.add_argument("--stages", action="store_true",
                          help="print only the per-stage wall/CPU share "
                               "table aggregated from the artifact's spans")
    _add_common(p_report, with_telemetry=False)

    sub.add_parser("list", help="list benchmarks and inputs")
    return parser


def _setup_logging(args) -> None:
    verbosity = getattr(args, "verbose", 0) - getattr(args, "quiet", 0)
    if verbosity >= 2:
        level = logging.DEBUG
    elif verbosity == 1:
        level = logging.INFO
    elif verbosity < 0:
        level = logging.ERROR
    else:
        level = logging.WARNING
    logging.basicConfig(
        level=level, stream=sys.stderr,
        format="%(levelname)s %(name)s: %(message)s",
    )


def _load_or_train(model_path: str | None, seed: int, machine: Machine) -> DrBwClassifier:
    if model_path:
        return DrBwClassifier.load(model_path)
    print("no --model given; training on the mini-programs ...", file=sys.stderr)
    clf, _ = train_default_classifier(machine, seed=seed)
    return clf


def _resolve_benchmark(args) -> tuple:
    try:
        spec = BENCHMARKS[args.benchmark]
    except KeyError:
        raise ConfigError(
            f"unknown benchmark {args.benchmark!r}; try `list`"
        ) from None
    inp = args.input or spec.inputs[-1]
    if inp not in spec.inputs:
        raise ConfigError(f"{spec.name} has inputs {spec.inputs}, not {inp!r}")
    return spec, inp


def _profiler_config(args) -> ProfilerConfig:
    if not getattr(args, "faults", None):
        return ProfilerConfig()
    plan = parse_fault_plan(args.faults)
    # Under lossy collection, retry channels that came back below the
    # classifier's support floor (see docs/robustness.md).
    from repro.core.classifier import MIN_CHANNEL_SUPPORT

    return ProfilerConfig(
        faults=plan,
        resample_floor=MIN_CHANNEL_SUPPORT,
        resample_attempts=3,
    )


# -- commands ---------------------------------------------------------------------


def cmd_train(args) -> int:
    machine = Machine()
    tel = telemetry.Telemetry(enabled=args.telemetry is not None)
    with telemetry.session(tel):
        clf, instances = train_default_classifier(
            machine, seed=args.seed, jobs=getattr(args, "jobs", None)
        )
        X, y = training_matrix(list(instances))
        cv = cross_validate(clf, X, y, k=10, seed=args.seed)
    print(f"trained on {len(instances)} runs; 10-fold CV accuracy {cv.accuracy:.1%}")
    print(clf.render_tree())
    with open(args.model, "w") as fh:
        json.dump(clf.to_dict(), fh, indent=2)
    print(f"model saved to {args.model}")
    if args.telemetry:
        meta = collect_metadata("train", args.seed, machine.topology,
                                model=args.model)
        results = {
            "cv_accuracy": cv.accuracy,
            "n_instances": len(instances),
        }
        export_artifact(args.telemetry, tel, meta, results)
        print(f"telemetry artifact written to {args.telemetry}", file=sys.stderr)
    return 0


def cmd_detect(args, want_diagnosis: bool = False) -> int:
    if getattr(args, "json", False):
        return _cmd_detect_json(args, want_diagnosis)
    # Validate everything cheap (benchmark, config, fault plan) before the
    # expensive model load/train.
    spec, inp = _resolve_benchmark(args)
    cfg = config_by_name(args.config)
    profiler_cfg = _profiler_config(args)
    machine = Machine()
    tel = telemetry.Telemetry(enabled=args.telemetry is not None)
    diagnosis = None
    with telemetry.session(tel):
        clf = _load_or_train(args.model, args.seed, machine)

        workload = spec.build(inp)
        profile = DrBwProfiler(machine, profiler_cfg).profile(
            workload, cfg.n_threads, cfg.n_nodes, seed=args.seed
        )
        verdicts = clf.classify_profile_detailed(profile)
        labels = {ch: v.mode for ch, v in verdicts.items()}
        print(f"{spec.name} ({inp}) under {cfg.name}:")
        if profiler_cfg.faults is not None:
            print(format_channel_verdicts(verdicts))
            print(format_degradation(profile.dropped))
        else:
            print(format_channel_labels(labels))
        verdict = classify_case(labels)
        print(f"case verdict: {verdict}")

        if want_diagnosis:
            if verdict is not Mode.RMC:
                print("nothing to diagnose: no contended channel")
            else:
                diagnosis = Diagnoser().diagnose(profile, labels)
                print()
                print(format_diagnosis(diagnosis))
                top = diagnosis.top(1)[0]
                print(f"\nsuggested remedy for {top.name!r}: {suggest_remedy(top)}")

    if args.telemetry:
        meta = collect_metadata(
            "diagnose" if want_diagnosis else "detect",
            args.seed,
            machine.topology,
            faults=profiler_cfg.faults,
            benchmark=spec.name,
            input=inp,
            config=cfg.name,
        )
        results = {
            "channel_verdicts": _verdicts_payload(verdicts),
            "case_verdict": verdict.value,
            "degradation": _degradation_payload(profile.dropped),
            "diagnosis": _diagnosis_payload(diagnosis) if diagnosis else None,
        }
        export_artifact(args.telemetry, tel, meta, results)
        print(f"telemetry artifact written to {args.telemetry}", file=sys.stderr)
    return 0 if verdict is Mode.GOOD else 2


def _cmd_detect_json(args, want_diagnosis: bool) -> int:
    """``--json``: run the job exactly as the service would and print its
    canonical bytes.  One executor, two transports — that is the whole
    byte-identity guarantee."""
    from repro.parallel.seeding import canonical_json
    from repro.service.jobspec import execute_job

    result = execute_job({
        "kind": "diagnose" if want_diagnosis else "detect",
        "benchmark": args.benchmark,
        "input": args.input,
        "config": args.config,
        "seed": args.seed,
        "faults": args.faults,
        "model": args.model,
    })
    print(canonical_json(result))
    return 0 if result["case_verdict"] == Mode.GOOD.value else 2


def cmd_serve(args) -> int:
    import signal

    from repro.service.mpserve import (
        ServiceSupervisor,
        WorkerConfig,
        build_worker_server,
    )

    cfg = WorkerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        threads=args.threads,
        capacity=args.queue_size,
        rate=args.rate,
        burst=args.burst,
        cache_dir=args.cache_dir,
        no_cache=args.no_cache,
        telemetry_enabled=not args.no_telemetry,
        job_timeout_s=args.job_timeout,
        job_max_attempts=args.job_attempts,
        degraded_window_s=args.degraded_window,
        infra_faults=args.infra_faults,
        access_log=args.access_log,
        span_log=args.spans,
        listener=args.listener,
        batch_depth_fraction=args.batch_fraction,
    )
    if args.infra_faults:
        from repro.faults import parse_infra_plan

        plan = parse_infra_plan(args.infra_faults)
        print(f"infra faults: {plan.describe()}", file=sys.stderr)

    if args.workers > 1:
        # Multi-process mode: the supervisor pre-forks args.workers full
        # service processes sharing one listener, one cache directory,
        # and the single-flight claim protocol.
        supervisor = ServiceSupervisor(cfg)
        code = supervisor.serve_forever()
        print("drbw serve: drained, exiting", file=sys.stderr)
        return code

    server, closers = build_worker_server(cfg)

    def _graceful(signum, frame) -> None:
        print("drbw serve: signal received, draining ...", file=sys.stderr)
        server.request_shutdown()

    signal.signal(signal.SIGTERM, _graceful)
    signal.signal(signal.SIGINT, _graceful)
    print(f"drbw service listening on {server.url}", file=sys.stderr)
    server.serve_forever()
    for log in closers:
        log.close()
    print("drbw serve: drained, exiting", file=sys.stderr)
    return 0


def _parse_hysteresis(spec: str | None):
    from repro.monitor import HysteresisConfig

    if spec is None:
        return HysteresisConfig()
    try:
        n, m = spec.split("/")
        return HysteresisConfig(confirm=int(n), window=int(m))
    except ValueError as exc:
        raise ConfigError(
            f"cannot parse hysteresis {spec!r}; expected N/M, e.g. 2/3"
        ) from exc


def _load_rules(path: str | None):
    from repro.errors import MonitorError
    from repro.monitor import DEFAULT_ALERT_RULES, parse_alert_rules

    if path is None:
        return DEFAULT_ALERT_RULES
    try:
        with open(path) as fh:
            spec = json.load(fh)
    except OSError as exc:
        raise MonitorError(f"cannot read alert rules file {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise MonitorError(f"alert rules file {path} is not JSON: {exc}") from exc
    return parse_alert_rules(spec)


def cmd_monitor(args) -> int:
    import contextlib

    from repro.monitor import (
        EventLog,
        LiveMonitor,
        MetricsServer,
        MonitorConfig,
        make_monitor_demo_workload,
        render_monitor_frame,
        render_prometheus,
        render_window_line,
    )
    from repro.monitor.monitor import DEFAULT_INTERVAL_CYCLES

    # Validate everything cheap before the expensive model load/train.
    if args.benchmark == "demo":
        spec, inp, workload = None, "builtin", make_monitor_demo_workload()
    else:
        spec, inp = _resolve_benchmark(args)
        workload = None  # built after validation below
    cfg = config_by_name(args.config)
    profiler_cfg = _profiler_config(args)
    monitor_cfg = MonitorConfig(
        window_intervals=args.window,
        hysteresis=_parse_hysteresis(args.hysteresis),
        rules=_load_rules(args.rules),
        interval_cycles=args.interval or DEFAULT_INTERVAL_CYCLES,
    )
    if workload is None:
        workload = spec.build(inp)
    name = spec.name if spec else "demo"

    machine = Machine()
    tel = telemetry.Telemetry(enabled=args.telemetry is not None)
    live = sys.stdout.isatty() and not args.plain
    with telemetry.session(tel), contextlib.ExitStack() as stack:
        clf = _load_or_train(args.model, args.seed, machine)
        event_log = (
            stack.enter_context(EventLog(args.events)) if args.events else None
        )

        def on_window(snapshot) -> None:
            if live:
                # Home the cursor and clear below: a flicker-free redraw.
                sys.stdout.write("\x1b[H\x1b[J" + render_monitor_frame(monitor))
            else:
                sys.stdout.write(render_window_line(snapshot) + "\n")
            sys.stdout.flush()

        monitor = LiveMonitor(
            clf,
            machine.topology,
            config=monitor_cfg,
            event_log=event_log,
            on_window=on_window,
        )
        if args.serve is not None:
            server = stack.enter_context(
                MetricsServer(lambda: render_prometheus(monitor.metrics),
                              port=args.serve)
            )
            print(f"serving metrics at {server.url}", file=sys.stderr)
        if live:
            sys.stdout.write("\x1b[2J")  # start from a clean screen

        profile = DrBwProfiler(machine, profiler_cfg).profile_live(
            workload, cfg.n_threads, cfg.n_nodes, monitor=monitor, seed=args.seed
        )

    if live:
        print()  # leave the last frame on screen
    windows = monitor.window_index + 1
    rmc_windows = sorted({t.window_index for t in monitor.transitions
                          if t.status is Mode.RMC})
    print(f"{name} ({inp}) under {cfg.name}: {windows} windows, "
          f"{monitor.windows.n_samples} samples in the final window")
    if profiler_cfg.faults is not None:
        print(format_degradation(profile.dropped))
    if monitor.ever_rmc:
        chans = ", ".join(sorted({str(t.channel) for t in monitor.transitions
                                  if t.status is Mode.RMC}))
        print(f"contention detected on {chans} "
              f"(first rmc window: {rmc_windows[0]})")
    else:
        print("no contention detected")

    if args.telemetry:
        meta = collect_metadata(
            "monitor", args.seed, machine.topology,
            faults=profiler_cfg.faults, benchmark=name, input=inp,
            config=cfg.name,
        )
        results = {
            "windows": windows,
            "ever_rmc": monitor.ever_rmc,
            "statuses": {str(c): m.value for c, m in monitor.statuses.items()},
            "transitions": len(monitor.transitions),
            "alert_events": [
                {"rule": e.rule, "kind": e.kind, "severity": e.severity,
                 "channel": str(e.channel) if e.channel else None,
                 "window": e.window_index}
                for e in monitor.alert_events
            ],
        }
        export_artifact(args.telemetry, tel, meta, results)
        print(f"telemetry artifact written to {args.telemetry}", file=sys.stderr)
    return 2 if monitor.ever_rmc else 0


def _load_fleet_rules(path: str | None):
    from repro.errors import FleetError
    from repro.fleet import DEFAULT_FLEET_RULES, parse_fleet_rules

    if path is None:
        return DEFAULT_FLEET_RULES
    try:
        with open(path) as fh:
            spec = json.load(fh)
    except OSError as exc:
        raise FleetError(f"cannot read fleet rules file {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise FleetError(f"fleet rules file {path} is not JSON: {exc}") from exc
    return parse_fleet_rules(spec)


def cmd_fleet(args) -> int:
    import contextlib
    import threading
    import time

    from repro.errors import FleetError
    from repro.fleet import (
        FleetAggregator,
        FleetServer,
        FleetSpec,
        WireLog,
        read_wire,
        render_epoch_line,
        render_fleet_frame,
        run_fleet,
    )
    from repro.parallel.seeding import canonical_json

    # Validate everything cheap before the expensive model load/train.
    rules = _load_fleet_rules(args.rules)
    if args.replay is not None and args.events:
        raise FleetError("--events records a live run; drop it with --replay")
    if args.serve_hold and args.serve is None:
        raise FleetError("--serve-hold needs --serve")
    spec = None
    if args.replay is None:
        spec = FleetSpec(
            machines=args.machines,
            seed=args.seed,
            config=args.config,
            contend_fraction=args.contend_fraction,
            faults=args.faults,
            faulted_fraction=args.faulted_fraction,
            window_intervals=args.window,
            interval_cycles=args.interval or 4e6,
            accesses_per_thread=args.accesses,
            fleet=args.fleet_tag,
        )
    aggregator = FleetAggregator(
        rules=rules, top_k=args.topk, fleet=args.fleet_tag
    )
    live = sys.stdout.isatty() and not args.plain and args.replay is None

    summaries = None
    with contextlib.ExitStack() as stack:
        if args.serve is not None:
            server = stack.enter_context(FleetServer(aggregator, port=args.serve))
            print(f"serving fleet endpoints at {server.url}", file=sys.stderr)
        if args.replay is not None:
            # Fix the roster before ingesting: without it, epochs would
            # evaluate before late machines say hello and their buffered
            # windows for already-closed epochs would be dropped —
            # replay must derive exactly what the live run derived.
            records = list(read_wire(args.replay))
            roster = {
                r["machine_id"] for r in records if r["kind"] == "fleet_hello"
            }
            if not roster:
                raise FleetError(
                    f"replay {args.replay} has no fleet_hello records; "
                    "is it a wire recording?"
                )
            aggregator.expected_machines = len(roster)
            for snap in aggregator.ingest_many(records):
                if not live:
                    print(render_epoch_line(snap))
        else:
            clf = _load_or_train(args.model, args.seed, Machine())
            wire = (
                stack.enter_context(
                    WireLog(
                        args.events,
                        max_bytes=(
                            args.events_max_kb * 1024
                            if args.events_max_kb
                            else None
                        ),
                    )
                )
                if args.events
                else None
            )
            # Completed epochs surface from whichever worker ingested the
            # closing record, so rendering needs its own serialisation.
            paint = threading.Lock()

            def on_snapshot(snap) -> None:
                with paint:
                    if live:
                        sys.stdout.write(
                            "\x1b[H\x1b[J" + render_fleet_frame(aggregator)
                        )
                    else:
                        sys.stdout.write(render_epoch_line(snap) + "\n")
                    sys.stdout.flush()

            if live:
                sys.stdout.write("\x1b[2J")
            summaries = run_fleet(
                spec,
                clf,
                aggregator,
                wire_sink=wire.append if wire else None,
                jobs=args.jobs,
                on_snapshot=on_snapshot,
            )

        if live:
            print()  # leave the last frame on screen
        rollup = aggregator.rollup()
        counts = rollup["counts"]
        print(
            f"fleet {aggregator.fleet}: {counts['machines']} machines, "
            f"{aggregator.epochs} epochs, "
            f"{counts['machine_windows']} machine-windows"
        )
        if summaries is not None:
            contend = sum(1 for s in summaries if s.workload == "contend")
            print(
                f"workloads: {contend} contend, {len(summaries) - contend} "
                f"quiet; machine-local rmc on "
                f"{sum(1 for s in summaries if s.ever_rmc)}"
            )
        top = aggregator.top_channels()
        if top:
            print(
                "top contended channels: "
                + ", ".join(
                    f"{e['channel']} ({e['rmc_machine_windows']} "
                    "rmc machine-windows)"
                    for e in top
                )
            )
        fired = [e for e in aggregator.alert_events if e.kind == "firing"]
        resolved = [e for e in aggregator.alert_events if e.kind == "resolved"]
        print(
            f"fleet alerts: {len(fired)} fired, {len(resolved)} resolved, "
            f"{len(aggregator.firing())} still firing"
        )
        if aggregator.ever_fleet_rmc:
            print("fleet-level bandwidth contention detected")
        else:
            print("no fleet-level contention detected")

        if args.timeline:
            events = aggregator.timeline_events()
            with open(args.timeline, "w") as fh:
                fh.write(canonical_json({"traceEvents": events}) + "\n")
            print(
                f"timeline ({len(events)} events) written to {args.timeline}",
                file=sys.stderr,
            )
        if args.rollup:
            with open(args.rollup, "w") as fh:
                fh.write(canonical_json(rollup) + "\n")
            print(f"rollup written to {args.rollup}", file=sys.stderr)

        if args.serve is not None and args.serve_hold:
            print(
                "fleet endpoints held open; Ctrl-C to stop", file=sys.stderr
            )
            while True:  # KeyboardInterrupt lands in main() -> exit 130
                time.sleep(3600)
    return 2 if aggregator.ever_fleet_rmc else 0


def cmd_campaign(args) -> int:
    from repro.eval.experiments import (
        TrainingSummary,
        run_table5_detection,
        run_table7_overhead,
    )
    from repro.eval.tables import (
        format_table2,
        format_table5,
        format_table6,
        format_table7,
        k_fold_line,
    )
    from repro.parallel import CampaignJournal, ResultCache, resolve_jobs

    jobs = resolve_jobs(args.jobs)

    if args.journal and args.resume and args.journal != args.resume:
        raise ReproError("--journal and --resume point at different files")
    journal_path = args.resume or args.journal
    if args.out and journal_path is None:
        raise ReproError("--out requires --journal or --resume")

    runner_opts: dict = {}
    if journal_path is not None:
        runner_opts["journal_path"] = journal_path
        runner_opts["resume"] = bool(args.resume)
    if args.retries is not None:
        from repro.resilience import RetryPolicy

        runner_opts["retry"] = RetryPolicy(max_attempts=args.retries, seed=args.seed)
    if args.task_timeout is not None:
        runner_opts["task_timeout_s"] = args.task_timeout
    if args.quarantine:
        runner_opts["on_exhausted"] = "quarantine"
    if args.infra_faults:
        from repro.faults import FaultyResultCache, parse_infra_plan

        infra = parse_infra_plan(args.infra_faults)
        runner_opts["infra"] = infra
        cache = FaultyResultCache(
            args.cache_dir, enabled=not args.no_cache, infra_plan=infra
        )
        print(f"infra faults: {infra.describe()}", file=sys.stderr)
    else:
        cache = ResultCache(args.cache_dir, enabled=not args.no_cache)

    benchmarks = (
        [b.strip() for b in args.benchmarks.split(",") if b.strip()]
        if args.benchmarks
        else None
    )
    machine = Machine()
    tel = telemetry.Telemetry(enabled=args.telemetry is not None)
    results: dict = {"experiment": args.experiment, "jobs": jobs}
    with telemetry.session(tel):
        if args.experiment == "table2":
            clf, instances = train_default_classifier(
                machine, seed=args.seed, jobs=jobs, cache=cache,
                runner_opts=runner_opts or None,
            )
            X, y = training_matrix(list(instances))
            cv = cross_validate(clf, X, y, k=10, seed=args.seed)
            counts: dict[str, list[int]] = {}
            for inst in instances:
                slot = counts.setdefault(inst.config.program, [0, 0])
                slot[0 if inst.label is Mode.GOOD else 1] += 1
            summary = TrainingSummary(
                counts={k: (v[0], v[1]) for k, v in counts.items()}
            )
            print(format_table2(summary))
            print(k_fold_line(cv))
            results.update(cv_accuracy=cv.accuracy, n_instances=len(instances))
        elif args.experiment == "table5":
            detection = run_table5_detection(
                seed=args.seed, benchmarks=benchmarks, jobs=jobs, cache=cache,
                runner_opts=runner_opts or None,
            )
            print(format_table5(detection))
            print()
            print(format_table6(detection.accuracy_summary()))
            results.update(
                n_cases=len(detection.cases),
                accuracy=detection.accuracy_summary().accuracy,
                false_negative_rate=detection.false_negative_rate,
                false_positive_rate=detection.false_positive_rate,
            )
        else:
            rows = run_table7_overhead(
                seed=args.seed, jobs=jobs, cache=cache,
                runner_opts=runner_opts or None,
            )
            print(format_table7(rows))
            results.update(
                overheads={r.benchmark: r.overhead for r in rows},
            )
    results["cache"] = cache.stats
    print(
        f"campaign {args.experiment}: jobs={jobs}, "
        f"cache hits={cache.hits} misses={cache.misses}"
        + ("" if cache.enabled else " (cache disabled)"),
        file=sys.stderr,
    )
    if journal_path is not None:
        # Reopen read-only-ish (resume mode appends nothing) to report
        # checkpoint coverage and render the merged payload stream.
        with CampaignJournal(journal_path, args.seed, resume=True) as jrn:
            results["journal"] = {"path": str(journal_path), "shards": len(jrn)}
            print(
                f"journal {journal_path}: {len(jrn)} shard(s) checkpointed"
                + (" (resumed)" if args.resume else ""),
                file=sys.stderr,
            )
            if args.out:
                lines = jrn.merged_payload_lines()
                with open(args.out, "w") as fh:
                    fh.write("\n".join(lines) + ("\n" if lines else ""))
                print(
                    f"merged payloads written to {args.out} ({len(lines)} line(s))",
                    file=sys.stderr,
                )
    if args.telemetry:
        meta = collect_metadata(
            f"campaign:{args.experiment}", args.seed, machine.topology,
            jobs=jobs,
        )
        export_artifact(args.telemetry, tel, meta, results)
        print(f"telemetry artifact written to {args.telemetry}", file=sys.stderr)
    return 0


def _loadgen_job_factory(args):
    """The probe-job spec factory for ``drbw loadgen``.

    Returns ``f(k) -> spec`` for request index ``k``.  Unless
    ``--same-job`` is set, the seed varies per request so every request
    is a distinct job (distinct ``job_key``), defeating the coalescer
    and the warm cache — the load hits the real execution path.  The
    seed counter is shared across the whole invocation, not per run:
    sweep levels must not re-submit the previous level's specs, or a
    caching server would answer them warm and the sweep would measure
    the cache instead of execution.
    """
    import itertools

    spec_bench, inp = _resolve_benchmark(args)
    cfg = config_by_name(args.config)
    if args.kind == "profile":
        from repro.parallel.shards import benchmark_workload_spec, profile_shard

        shard = profile_shard(
            benchmark_workload_spec(spec_bench.name, inp),
            cfg.n_threads, cfg.n_nodes,
        )
        base = {"kind": "profile", "spec": shard}
    else:
        if not args.model:
            raise ConfigError(f"{args.kind} probe jobs need --model")
        base = {
            "kind": args.kind, "benchmark": spec_bench.name, "input": inp,
            "config": cfg.name, "model": args.model,
        }

    counter = itertools.count()  # invocation-global, CPython-atomic

    def spec_for(k: int) -> dict:
        if args.same_job:
            return dict(base, seed=args.seed)
        return dict(base, seed=args.seed + next(counter))

    return spec_for


def cmd_loadgen(args) -> int:
    from repro.slo import (
        build_report,
        concurrency_sweep,
        load_slo_spec,
        render_report,
        run_closed_loop,
        run_open_loop,
    )

    # Parse everything (including the SLO spec) before generating load.
    slo_spec = load_slo_spec(args.slo) if args.slo else None
    job_factory = _loadgen_job_factory(args)
    try:
        levels = [int(c) for c in args.concurrency.split(",") if c.strip()]
    except ValueError:
        raise ConfigError(
            f"cannot parse --concurrency {args.concurrency!r}; "
            "expected N or N,N,..."
        ) from None
    if not levels:
        raise ConfigError("--concurrency needs at least one level")

    if args.mode == "open":
        print(
            f"loadgen: open loop at {args.rps} rps for {args.duration}s "
            f"against {args.url}", file=sys.stderr,
        )
        results = [run_open_loop(
            args.url, job_factory,
            target_rps=args.rps, duration_s=args.duration,
            timeout=args.timeout,
        )]
    elif args.mode == "sweep":
        print(
            f"loadgen: closed-loop sweep over concurrency {levels} "
            f"({args.duration}s each) against {args.url}", file=sys.stderr,
        )
        results = concurrency_sweep(
            args.url, job_factory,
            concurrencies=levels, duration_s=args.duration,
            timeout=args.timeout,
        )
    else:
        print(
            f"loadgen: closed loop at concurrency {levels[0]} for "
            f"{args.duration}s against {args.url}", file=sys.stderr,
        )
        results = [run_closed_loop(
            args.url, job_factory,
            concurrency=levels[0], duration_s=args.duration,
            timeout=args.timeout,
        )]

    report = build_report(
        results, slo_spec, url=args.url,
        job={"kind": args.kind, "benchmark": args.benchmark,
             "config": args.config, "same_job": bool(args.same_job)},
    )
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"SLO report written to {args.report}", file=sys.stderr)
    print(render_report(report))
    slo = report.get("slo")
    return 1 if slo and slo["breached"] else 0


def cmd_report(args) -> int:
    artifact = load_artifact(args.artifact)
    if args.stages:
        print(render_stage_table(artifact.spans))
        return 0
    print(render_dashboard(artifact))
    return 0


def cmd_list(_args) -> int:
    print(f"{'benchmark':<15}{'suite':<10}{'class':<6} inputs")
    for name, spec in sorted(BENCHMARKS.items()):
        print(f"{name:<15}{spec.suite:<10}{spec.paper_class:<6} "
              f"{', '.join(spec.inputs)}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    _setup_logging(args)
    try:
        if args.command == "train":
            return cmd_train(args)
        if args.command == "detect":
            return cmd_detect(args, want_diagnosis=False)
        if args.command == "diagnose":
            return cmd_detect(args, want_diagnosis=True)
        if args.command == "campaign":
            return cmd_campaign(args)
        if args.command == "monitor":
            return cmd_monitor(args)
        if args.command == "fleet":
            return cmd_fleet(args)
        if args.command == "serve":
            return cmd_serve(args)
        if args.command == "loadgen":
            return cmd_loadgen(args)
        if args.command == "report":
            return cmd_report(args)
        if args.command == "list":
            return cmd_list(args)
    except ReproError as exc:
        print(f"drbw: error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # Campaign/monitor runs leave their journals and caches in a
        # resumable state on the way out; 130 = killed by SIGINT.
        print("drbw: interrupted", file=sys.stderr)
        return 130
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
