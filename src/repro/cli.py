"""Command-line interface: ``python -m repro.cli <command>``.

The workflow a release user runs without writing Python:

* ``train``    — collect the Table II training set, fit, cross-validate,
  and save the model to JSON;
* ``detect``   — profile one benchmark analog under a ``Tt-Nn``
  configuration and print the per-channel verdicts;
* ``diagnose`` — detect, then print the Contribution-Fraction ranking and
  suggested remedies;
* ``list``     — the available benchmarks and their inputs.

``detect`` and ``diagnose`` accept ``--faults`` (a preset name such as
``standard``, or ``drop=0.1,corrupt=0.01``-style pairs) to run the
pipeline under injected collection faults; the output then includes a
degradation summary and per-channel confidence.  Any :class:`ReproError`
— unknown benchmark, bad configuration, malformed model file, invalid
fault spec — prints one line to stderr and exits with status 2.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.classifier import DrBwClassifier, classify_case
from repro.core.diagnoser import Diagnoser
from repro.core.profiler import DrBwProfiler, ProfilerConfig
from repro.core.report import (
    format_channel_labels,
    format_channel_verdicts,
    format_degradation,
    format_diagnosis,
    suggest_remedy,
)
from repro.core.training import train_default_classifier, training_matrix
from repro.core.validation import cross_validate
from repro.errors import ConfigError, ReproError
from repro.eval.configs import config_by_name
from repro.faults import FAULT_PRESETS, parse_fault_plan
from repro.numasim.machine import Machine
from repro.types import Mode
from repro.workloads.suites.registry import BENCHMARKS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="drbw",
        description="DR-BW: identify NUMA bandwidth contention (reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_train = sub.add_parser("train", help="train and save the classifier")
    p_train.add_argument("--model", default="drbw_model.json",
                         help="output JSON path (default: drbw_model.json)")
    p_train.add_argument("--seed", type=int, default=0)

    for name, hlp in (("detect", "classify a benchmark run"),
                      ("diagnose", "detect + rank the contended data objects")):
        p = sub.add_parser(name, help=hlp)
        p.add_argument("benchmark", help="benchmark name (see `list`)")
        p.add_argument("--input", default=None,
                       help="input name (default: the benchmark's largest)")
        p.add_argument("--config", default="T32-N4",
                       help="Tt-Nn configuration (default: T32-N4)")
        p.add_argument("--model", default=None,
                       help="trained model JSON (default: train in-process)")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--faults", default=None, metavar="PLAN",
                       help="inject collection faults: a preset "
                            f"({', '.join(FAULT_PRESETS)}) or key=value pairs, "
                            "e.g. drop=0.1,corrupt=0.01,seed=7")

    sub.add_parser("list", help="list benchmarks and inputs")
    return parser


def _load_or_train(model_path: str | None, seed: int, machine: Machine) -> DrBwClassifier:
    if model_path:
        return DrBwClassifier.load(model_path)
    print("no --model given; training on the mini-programs ...", file=sys.stderr)
    clf, _ = train_default_classifier(machine, seed=seed)
    return clf


def _resolve_benchmark(args) -> tuple:
    try:
        spec = BENCHMARKS[args.benchmark]
    except KeyError:
        raise ConfigError(
            f"unknown benchmark {args.benchmark!r}; try `list`"
        ) from None
    inp = args.input or spec.inputs[-1]
    if inp not in spec.inputs:
        raise ConfigError(f"{spec.name} has inputs {spec.inputs}, not {inp!r}")
    return spec, inp


def _profiler_config(args) -> ProfilerConfig:
    if not getattr(args, "faults", None):
        return ProfilerConfig()
    plan = parse_fault_plan(args.faults)
    # Under lossy collection, retry channels that came back below the
    # classifier's support floor (see docs/robustness.md).
    from repro.core.classifier import MIN_CHANNEL_SUPPORT

    return ProfilerConfig(
        faults=plan,
        resample_floor=MIN_CHANNEL_SUPPORT,
        resample_attempts=3,
    )


def cmd_train(args) -> int:
    machine = Machine()
    clf, instances = train_default_classifier(machine, seed=args.seed)
    X, y = training_matrix(list(instances))
    cv = cross_validate(clf, X, y, k=10, seed=args.seed)
    print(f"trained on {len(instances)} runs; 10-fold CV accuracy {cv.accuracy:.1%}")
    print(clf.render_tree())
    with open(args.model, "w") as fh:
        json.dump(clf.to_dict(), fh, indent=2)
    print(f"model saved to {args.model}")
    return 0


def cmd_detect(args, want_diagnosis: bool = False) -> int:
    # Validate everything cheap (benchmark, config, fault plan) before the
    # expensive model load/train.
    spec, inp = _resolve_benchmark(args)
    cfg = config_by_name(args.config)
    profiler_cfg = _profiler_config(args)
    machine = Machine()
    clf = _load_or_train(args.model, args.seed, machine)

    workload = spec.build(inp)
    profile = DrBwProfiler(machine, profiler_cfg).profile(
        workload, cfg.n_threads, cfg.n_nodes, seed=args.seed
    )
    print(f"{spec.name} ({inp}) under {cfg.name}:")
    if profiler_cfg.faults is not None:
        verdicts = clf.classify_profile_detailed(profile)
        labels = {ch: v.mode for ch, v in verdicts.items()}
        print(format_channel_verdicts(verdicts))
        print(format_degradation(profile.dropped))
    else:
        labels = clf.classify_profile(profile)
        print(format_channel_labels(labels))
    verdict = classify_case(labels)
    print(f"case verdict: {verdict}")

    if want_diagnosis:
        if verdict is not Mode.RMC:
            print("nothing to diagnose: no contended channel")
        else:
            report = Diagnoser().diagnose(profile, labels)
            print()
            print(format_diagnosis(report))
            top = report.top(1)[0]
            print(f"\nsuggested remedy for {top.name!r}: {suggest_remedy(top)}")
    return 0 if verdict is Mode.GOOD else 2


def cmd_list(_args) -> int:
    print(f"{'benchmark':<15}{'suite':<10}{'class':<6} inputs")
    for name, spec in sorted(BENCHMARKS.items()):
        print(f"{name:<15}{spec.suite:<10}{spec.paper_class:<6} "
              f"{', '.join(spec.inputs)}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "train":
            return cmd_train(args)
        if args.command == "detect":
            return cmd_detect(args, want_diagnosis=False)
        if args.command == "diagnose":
            return cmd_detect(args, want_diagnosis=True)
        if args.command == "list":
            return cmd_list(args)
    except ReproError as exc:
        print(f"drbw: error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
