"""The *replicate* optimization.

Section VIII.C: Streamcluster's ``block`` array is *"randomly accessed by
all the threads and the data is never overwritten after the
initialization. Thus, we create shadow replications of block for the
threads in each NUMA node, so all the accesses to block can go to local
memory."*  Replication trades memory footprint for locality and is only
sound for read-only data — the transform refuses objects any stream
writes to.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.osl.pages import Replicated
from repro.workloads.base import Workload

__all__ = ["replicate_objects"]


def replicate_objects(workload: Workload, names: set[str]) -> Workload:
    """Give every node a read-only replica of the named objects."""
    for phase in workload.phases:
        for stream in phase.streams:
            if stream.object_name in names and stream.write_fraction > 0:
                raise WorkloadError(
                    f"object {stream.object_name!r} is written in phase "
                    f"{phase.name!r}; replication requires read-only data"
                )
    for n in names:
        if not workload.object_spec(n).is_heap:
            raise WorkloadError(f"cannot replicate static object {n!r}")
    return workload.with_policies({n: Replicated() for n in names})
