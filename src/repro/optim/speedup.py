"""End-to-end speedup measurement for optimization transforms."""

from __future__ import annotations

from dataclasses import dataclass

from repro.numasim.machine import Machine
from repro.workloads.base import Workload
from repro.workloads.runner import WorkloadRun, run_workload

__all__ = ["SpeedupResult", "measure_speedup"]


@dataclass(frozen=True)
class SpeedupResult:
    """Original vs optimized execution, whole-run and per-phase."""

    original: WorkloadRun
    optimized: WorkloadRun

    @property
    def speedup(self) -> float:
        """End-to-end speedup (>1 means the transform helped)."""
        return self.original.total_cycles / self.optimized.total_cycles

    def phase_speedup(self, phase_name: str) -> float:
        """Speedup of one named phase (Figure 5's per-phase bars)."""
        orig = self.original.result.phase_cycles(phase_name)
        opt = self.optimized.result.phase_cycles(phase_name)
        if orig <= 0 or opt <= 0:
            raise ValueError(f"phase {phase_name!r} missing from one of the runs")
        return orig / opt

    @property
    def remote_traffic_reduction(self) -> float:
        """Fractional drop in remote-channel bytes (paper reports 50-88%)."""
        before = sum(self.original.result.channel_bytes().values())
        after = sum(self.optimized.result.channel_bytes().values())
        if before <= 0:
            return 0.0
        return 1.0 - after / before


def measure_speedup(
    original: Workload,
    optimized: Workload,
    machine: Machine,
    n_threads: int,
    n_nodes: int,
) -> SpeedupResult:
    """Run both variants under the same configuration and compare."""
    return SpeedupResult(
        original=run_workload(original, machine, n_threads, n_nodes),
        optimized=run_workload(optimized, machine, n_threads, n_nodes),
    )
