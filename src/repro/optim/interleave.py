"""The *interleave* optimization (the paper's coarse-grained baseline).

Pages are distributed round-robin across NUMA nodes, balancing memory
requests at the cost of extra remote accesses — which is why it helps a
saturated solver phase yet hurts serial or well-placed phases (Figure 5).
"""

from __future__ import annotations

from repro.osl.pages import Interleave
from repro.workloads.base import Workload

__all__ = ["interleave_objects"]


def interleave_objects(
    workload: Workload,
    names: set[str] | None = None,
    nodes: tuple[int, ...] = (),
) -> Workload:
    """Interleave the named objects' pages (all objects when ``names`` is
    None — the whole-program ``numactl --interleave`` baseline)."""
    if names is None:
        names = {o.name for o in workload.objects}
    return workload.with_policies({n: Interleave(nodes) for n in names})
