"""The *co-locate* optimization.

Section VIII.A: *"we break the data into multiple segments and co-locate
each with its computation at the array allocation point"* — each thread's
chunk of the array is placed on that thread's NUMA node (via libnuma in
the real tool; via the compiler's chunk-aware placement here).
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.workloads.base import Workload

__all__ = ["colocate_objects"]


def colocate_objects(workload: Workload, names: set[str] | None = None) -> Workload:
    """Co-locate the named objects' chunks with their computing threads.

    ``names`` defaults to every *heap* object — static data cannot be
    re-placed at an allocation point (it has none), matching the tool's
    limitation in the SP and LULESH case studies.
    """
    if names is None:
        names = {o.name for o in workload.objects if o.is_heap}
    for n in names:
        if not workload.object_spec(n).is_heap:
            raise WorkloadError(f"cannot co-locate static object {n!r}")
    return workload.with_colocation(names)
