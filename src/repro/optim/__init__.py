"""Optimization transforms guided by DR-BW's diagnosis (Section VIII).

Three remedies the paper applies to blamed data objects:

* :mod:`repro.optim.colocate` — split a chunk-partitioned object and place
  each chunk on its computing thread's node (AMG2006, IRSmk, LULESH, NW);
* :mod:`repro.optim.interleave` — round-robin pages across nodes, either
  per object or whole-program (the coarse baseline, and the only option
  for untracked static data as in SP);
* :mod:`repro.optim.replicate` — one read-only copy per node for shared
  never-written data (Streamcluster's ``block``);
* :mod:`repro.optim.speedup` — measure a transform's end-to-end effect.
"""

from repro.optim.colocate import colocate_objects
from repro.optim.interleave import interleave_objects
from repro.optim.replicate import replicate_objects
from repro.optim.speedup import SpeedupResult, measure_speedup

__all__ = [
    "colocate_objects",
    "interleave_objects",
    "replicate_objects",
    "SpeedupResult",
    "measure_speedup",
]
