"""NUMA machine simulator substrate.

This package stands in for the paper's physical testbed (a 4-socket Intel
Xeon E5-4650).  It provides:

* :mod:`repro.numasim.topology` — sockets, cores, SMT, channel enumeration;
* :mod:`repro.numasim.cache` — exact set-associative LRU caches (used by the
  bandit micro-benchmark and by tests);
* :mod:`repro.numasim.cachemodel` — analytical hit-fraction model used by the
  fast epoch engine;
* :mod:`repro.numasim.latency` — base latencies plus queueing-delay inflation;
* :mod:`repro.numasim.fairness` — max-min fair bandwidth allocation;
* :mod:`repro.numasim.interconnect` / :mod:`repro.numasim.memctrl` —
  bandwidth-limited resources;
* :mod:`repro.numasim.engine` — piecewise-stationary execution engine;
* :mod:`repro.numasim.machine` — the :class:`~repro.numasim.machine.Machine`
  facade tying everything together.
"""

from repro.numasim.topology import CacheSpec, NumaTopology
from repro.numasim.latency import LatencyModel
from repro.numasim.machine import Machine

__all__ = ["CacheSpec", "NumaTopology", "LatencyModel", "Machine"]
