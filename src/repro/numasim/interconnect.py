"""Directed inter-socket interconnect fabric.

The paper stresses (Section III.a) that interconnect bandwidth differs per
channel *and per direction*, so every ordered socket pair gets its own
bandwidth resource.  The fabric mirrors
:class:`repro.numasim.memctrl.MemoryControllerSet` but is keyed by
:class:`repro.types.Channel`.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import SimulationError, TopologyError
from repro.numasim.memctrl import (
    DEFAULT_HISTORY_LIMIT,
    UtilizationRecord,
    make_history,
)
from repro.numasim.topology import NumaTopology
from repro.types import Channel

__all__ = ["InterconnectFabric"]


class InterconnectFabric:
    """Bandwidth accounting for every directed inter-socket channel.

    Like :class:`~repro.numasim.memctrl.MemoryControllerSet`, raw interval
    records live in a bounded ring buffer (``history_limit`` per channel)
    while mean/peak/total statistics are running aggregates over the whole
    run — long-lived runs stay flat in memory.
    """

    def __init__(
        self,
        topology: NumaTopology,
        capacity_overrides: dict[Channel, float] | None = None,
        history_limit: int | None = DEFAULT_HISTORY_LIMIT,
    ) -> None:
        self.topology = topology
        self.channels: list[Channel] = topology.remote_channels()
        self._index: dict[Channel, int] = {c: i for i, c in enumerate(self.channels)}
        caps = np.full(len(self.channels), topology.link_bw_bytes_per_cycle)
        for ch, cap in (capacity_overrides or {}).items():
            topology.validate_channel(ch)
            if not ch.is_remote:
                raise TopologyError(f"cannot override capacity of local channel {ch}")
            if cap <= 0:
                raise TopologyError(f"capacity for {ch} must be positive")
            caps[self._index[ch]] = cap
        self.capacities = caps
        self.history_limit = history_limit
        self._bytes = np.zeros(len(self.channels), dtype=np.float64)
        self._busy_cycles = np.zeros(len(self.channels), dtype=np.float64)
        self._peak = np.zeros(len(self.channels), dtype=np.float64)
        self._total_cycles = 0.0
        self._n_intervals = 0
        self._history: list[deque[UtilizationRecord]] = [
            make_history(history_limit) for _ in self.channels
        ]

    def __len__(self) -> int:
        return len(self.channels)

    @property
    def n_intervals(self) -> int:
        """Total intervals ever recorded (not capped by the ring buffer)."""
        return self._n_intervals

    def index_of(self, channel: Channel) -> int:
        """Dense index of ``channel`` (raises for local/unknown channels)."""
        try:
            return self._index[channel]
        except KeyError:
            raise TopologyError(f"no interconnect channel {channel}") from None

    def capacity_of(self, channel: Channel) -> float:
        """Bytes/cycle capacity of ``channel``."""
        return float(self.capacities[self.index_of(channel)])

    def record_interval(
        self,
        start_cycle: float,
        duration_cycles: float,
        bytes_per_channel: np.ndarray,
    ) -> None:
        """Account per-channel traffic over one simulated interval."""
        b = np.asarray(bytes_per_channel, dtype=np.float64)
        if b.shape != (len(self.channels),):
            raise TopologyError(
                f"expected {len(self.channels)} channel byte counts, got {b.shape}"
            )
        if duration_cycles < 0 or np.any(b < 0):
            raise SimulationError("negative duration or traffic")
        self._bytes += b
        self._total_cycles += duration_cycles
        if duration_cycles > 0:
            self._n_intervals += 1
            rho = np.minimum(b / (self.capacities * duration_cycles), 1.0)
            self._busy_cycles += rho * duration_cycles
            np.maximum(self._peak, rho, out=self._peak)
            for i in range(len(self.channels)):
                self._history[i].append(
                    UtilizationRecord(
                        start_cycle=start_cycle,
                        duration_cycles=duration_cycles,
                        utilization=float(rho[i]),
                        bytes_moved=float(b[i]),
                    )
                )

    def total_bytes(self, channel: Channel) -> float:
        """Cumulative bytes moved over ``channel``."""
        return float(self._bytes[self.index_of(channel)])

    def mean_utilization(self, channel: Channel) -> float:
        """Time-weighted average utilization of ``channel``."""
        if self._total_cycles == 0:
            return 0.0
        return float(self._busy_cycles[self.index_of(channel)] / self._total_cycles)

    def peak_utilization(self, channel: Channel) -> float:
        """Highest interval utilization ever seen on ``channel``.

        A running aggregate — unaffected by the history retention cap.
        """
        return float(self._peak[self.index_of(channel)])

    def history(self, channel: Channel) -> list[UtilizationRecord]:
        """The retained utilization records for ``channel``.

        At most ``history_limit`` records — the most recent ones when the
        run outlived the cap.  Use the running aggregates for whole-run
        statistics.
        """
        return list(self._history[self.index_of(channel)])
