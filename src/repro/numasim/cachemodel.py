"""Analytical cache-behaviour model.

The epoch engine cannot afford to push every access of a multi-billion-access
workload through the exact simulator in :mod:`repro.numasim.cache`.  Instead,
each access *stream* (a stationary pattern over a region of one data object)
is summarized by a :class:`StreamProfile`, and this module converts a profile
plus the effective cache capacities seen by the issuing thread into:

* the fraction of accesses satisfied at each memory level
  (:class:`LevelFractions`),
* the DRAM traffic generated per access (bytes), and
* the achievable memory-level parallelism (MLP).

The formulas are the standard first-order models:

``sequential``
    One cold miss per 64-byte line, i.e. a line-miss fraction of
    ``element_bytes / 64``; repeated passes over a region that fits in some
    level hit that level.  The hardware prefetcher hides a fraction of the
    DRAM-level latency (misses are reported as LFB hits) without reducing
    DRAM traffic.

``strided``
    Like sequential but each access may touch a new line when the stride
    reaches the line size: line-miss fraction ``min(1, stride/64)``.

``random``
    Independent references over a working set ``W``: the probability that a
    line is resident in a cache of effective size ``S`` is ``min(1, S/W)``,
    applied hierarchically.  Prefetchers cannot track it.

``pointer_chase``
    The bandit pattern: every access is a dependent conflict miss that goes
    to DRAM, MLP = 1, prefetch-immune.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.errors import WorkloadError
from repro.types import CACHE_LINE_BYTES, MemLevel

__all__ = ["PatternKind", "StreamProfile", "LevelFractions", "CacheModel", "EffectiveCaches"]


class PatternKind(enum.Enum):
    """Spatial/temporal shape of an access stream."""

    SEQUENTIAL = "sequential"
    STRIDED = "strided"
    RANDOM = "random"
    POINTER_CHASE = "pointer_chase"


@dataclass(frozen=True, slots=True)
class StreamProfile:
    """Stationary statistics of one access stream.

    ``working_set_bytes`` is the region the stream touches (per thread);
    ``passes`` is how many times the region is traversed during the phase
    (>=1; fractional passes are fine); ``element_bytes`` the access
    granularity; ``stride_bytes`` the address increment for STRIDED;
    ``write_fraction`` is carried for traffic accounting (a dirty writeback
    roughly doubles DRAM traffic for streaming writes).
    """

    kind: PatternKind
    working_set_bytes: int
    element_bytes: int = 8
    stride_bytes: int | None = None
    passes: float = 1.0
    write_fraction: float = 0.0
    #: Independent pointer-chase chains (the bandit's tunable stream count);
    #: each chain is one outstanding dependent miss, so MLP == chains.
    chains: int = 1

    def __post_init__(self) -> None:
        if self.chains < 1:
            raise WorkloadError("chains must be >= 1")
        if self.working_set_bytes <= 0:
            raise WorkloadError("working_set_bytes must be positive")
        if self.element_bytes <= 0 or self.element_bytes > CACHE_LINE_BYTES:
            raise WorkloadError(
                f"element_bytes must be in (0, {CACHE_LINE_BYTES}]: {self.element_bytes}"
            )
        if self.passes <= 0:
            raise WorkloadError("passes must be positive")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise WorkloadError("write_fraction must be in [0, 1]")
        if self.kind is PatternKind.STRIDED and (self.stride_bytes or 0) <= 0:
            raise WorkloadError("STRIDED profile needs a positive stride_bytes")


@dataclass(frozen=True, slots=True)
class EffectiveCaches:
    """Cache capacity actually available to one thread, in bytes.

    Private levels shrink when SMT siblings are active; the shared L3
    shrinks with the number of threads actively streaming on the socket.
    """

    l1_bytes: float
    l2_bytes: float
    l3_bytes: float

    def __post_init__(self) -> None:
        if min(self.l1_bytes, self.l2_bytes, self.l3_bytes) <= 0:
            raise WorkloadError("effective cache sizes must be positive")


@dataclass(frozen=True, slots=True)
class LevelFractions:
    """Fraction of a stream's accesses satisfied at each level (sums to 1)."""

    fractions: dict[MemLevel, float] = field(default_factory=dict)
    #: DRAM bytes moved per access (includes writeback traffic).
    dram_bytes_per_access: float = 0.0
    #: Average number of overlappable outstanding misses.
    mlp: float = 1.0

    def __post_init__(self) -> None:
        total = sum(self.fractions.values())
        if abs(total - 1.0) > 1e-6:
            raise WorkloadError(f"level fractions must sum to 1, got {total}")
        if self.dram_bytes_per_access < 0:
            raise WorkloadError("dram_bytes_per_access must be >= 0")
        if self.mlp < 1.0:
            raise WorkloadError("mlp must be >= 1")

    @property
    def dram_fraction(self) -> float:
        """Fraction of accesses served by (local or remote) DRAM."""
        return sum(v for k, v in self.fractions.items() if k.is_dram)


def _complete(fractions: dict[MemLevel, float]) -> dict[MemLevel, float]:
    """Fill missing levels with 0 and renormalize tiny float drift."""
    out = {lvl: max(0.0, fractions.get(lvl, 0.0)) for lvl in MemLevel}
    total = sum(out.values())
    if total <= 0:
        raise WorkloadError("no positive level fraction")
    return {k: v / total for k, v in out.items()}


@dataclass(frozen=True)
class CacheModel:
    """Machine-level knobs for the analytical model."""

    #: Fraction of streaming DRAM-level accesses whose latency the hardware
    #: prefetcher hides (reported as LFB); traffic is unchanged.
    prefetch_efficiency: float = 0.6
    #: MLP for independent (streaming / random) access streams.
    streaming_mlp: float = 8.0
    random_mlp: float = 4.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.prefetch_efficiency < 1.0:
            raise WorkloadError("prefetch_efficiency must be in [0, 1)")
        if self.streaming_mlp < 1 or self.random_mlp < 1:
            raise WorkloadError("MLP values must be >= 1")

    # -- public API -----------------------------------------------------------

    def level_fractions(self, profile: StreamProfile, caches: EffectiveCaches) -> LevelFractions:
        """Resolve a stream profile into per-level hit fractions."""
        kind = profile.kind
        if kind is PatternKind.POINTER_CHASE:
            return self._pointer_chase(profile)
        if kind is PatternKind.RANDOM:
            return self._random(profile, caches)
        if kind in (PatternKind.SEQUENTIAL, PatternKind.STRIDED):
            return self._streaming(profile, caches)
        raise WorkloadError(f"unknown pattern kind {kind}")  # pragma: no cover

    # -- per-pattern models ----------------------------------------------------

    def _pointer_chase(self, profile: StreamProfile) -> LevelFractions:
        # Conflict-engineered: every access is a dependent DRAM miss.
        line = CACHE_LINE_BYTES
        return LevelFractions(
            fractions=_complete({MemLevel.LOCAL_DRAM: 1.0}),
            dram_bytes_per_access=line * (1.0 + profile.write_fraction),
            mlp=float(profile.chains),
        )

    def _random(self, profile: StreamProfile, caches: EffectiveCaches) -> LevelFractions:
        ws = float(profile.working_set_bytes)
        # Independent-reference residency probabilities, hierarchically.
        p_l1 = min(1.0, caches.l1_bytes / ws)
        p_l2 = min(1.0, caches.l2_bytes / ws)
        p_l3 = min(1.0, caches.l3_bytes / ws)
        f_l1 = p_l1
        f_l2 = max(0.0, p_l2 - p_l1)
        f_l3 = max(0.0, p_l3 - p_l2)
        f_dram = max(0.0, 1.0 - p_l3)
        line = CACHE_LINE_BYTES
        traffic = f_dram * line * (1.0 + profile.write_fraction)
        return LevelFractions(
            fractions=_complete(
                {
                    MemLevel.L1: f_l1,
                    MemLevel.L2: f_l2,
                    MemLevel.L3: f_l3,
                    MemLevel.LOCAL_DRAM: f_dram,
                }
            ),
            dram_bytes_per_access=traffic,
            # chains > 1 overrides the default random-access MLP (dependent
            # chained lookups, as in clustering or graph traversals).
            mlp=(float(profile.chains) if profile.chains > 1 else self.random_mlp)
            if f_dram > 0
            else 1.0,
        )

    def _streaming(self, profile: StreamProfile, caches: EffectiveCaches) -> LevelFractions:
        line = CACHE_LINE_BYTES
        ws = float(profile.working_set_bytes)
        if profile.kind is PatternKind.STRIDED:
            stride = float(profile.stride_bytes or profile.element_bytes)
            line_miss = min(1.0, stride / line)
        else:
            line_miss = profile.element_bytes / line
        # Which level retains the region between passes?
        if ws <= caches.l1_bytes:
            retained = MemLevel.L1
        elif ws <= caches.l2_bytes:
            retained = MemLevel.L2
        elif ws <= caches.l3_bytes:
            retained = MemLevel.L3
        else:
            retained = MemLevel.LOCAL_DRAM

        # Cold (first) pass always streams from DRAM; warm passes hit
        # `retained`.  Weight passes accordingly.
        passes = profile.passes
        cold_weight = min(1.0, 1.0 / passes)
        warm_weight = 1.0 - cold_weight
        if retained is MemLevel.LOCAL_DRAM:
            cold_weight, warm_weight = 1.0, 0.0

        # Within a streaming pass: `line_miss` of accesses touch a new line
        # (DRAM level); the rest hit L1 spatially.
        f_dram_raw = cold_weight * line_miss
        f_spatial_l1 = cold_weight * (1.0 - line_miss)

        # Prefetcher converts part of the DRAM-latency misses into LFB hits.
        f_lfb = f_dram_raw * self.prefetch_efficiency
        f_dram = f_dram_raw - f_lfb

        fractions: dict[MemLevel, float] = {
            MemLevel.L1: f_spatial_l1,
            MemLevel.LFB: f_lfb,
            MemLevel.LOCAL_DRAM: f_dram,
        }
        if warm_weight > 0:
            if retained is MemLevel.L1:
                fractions[MemLevel.L1] = fractions.get(MemLevel.L1, 0.0) + warm_weight
            else:
                # Warm passes still miss L1 on each new line.
                fractions[MemLevel.L1] = (
                    fractions.get(MemLevel.L1, 0.0) + warm_weight * (1.0 - line_miss)
                )
                fractions[retained] = fractions.get(retained, 0.0) + warm_weight * line_miss

        # DRAM traffic: every line-miss at DRAM level moves a line; streaming
        # writes additionally write the line back.
        traffic = cold_weight * line_miss * line * (1.0 + profile.write_fraction)
        return LevelFractions(
            fractions=_complete(fractions),
            dram_bytes_per_access=traffic,
            mlp=self.streaming_mlp if f_dram_raw > 0 else 1.0,
        )


def split_dram_locality(
    fractions: LevelFractions, local_fraction: float
) -> LevelFractions:
    """Split the DRAM fraction into local vs remote by page placement.

    ``local_fraction`` is the share of the stream's DRAM traffic whose pages
    live on the accessing thread's own node.  Cache-level fractions are
    untouched.
    """
    if not 0.0 <= local_fraction <= 1.0:
        raise WorkloadError("local_fraction must be in [0, 1]")
    f = dict(fractions.fractions)
    dram_total = f.get(MemLevel.LOCAL_DRAM, 0.0) + f.get(MemLevel.REMOTE_DRAM, 0.0)
    f[MemLevel.LOCAL_DRAM] = dram_total * local_fraction
    f[MemLevel.REMOTE_DRAM] = dram_total * (1.0 - local_fraction)
    return replace(fractions, fractions=_complete(f)) if dram_total > 0 else fractions
