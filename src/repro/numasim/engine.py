"""Piecewise-stationary NUMA execution engine.

The engine executes *thread programs* — sequences of phases, each phase a
stationary mix of access streams — against the machine's bandwidth and
latency models.  Between two scheduling events (a thread finishing its
phase) the system is stationary, so the engine:

1. computes each runnable thread's uncontended issue rate from the
   analytical cache model and base latencies;
2. derives the DRAM traffic flows each thread pushes onto memory
   controllers and interconnect channels;
3. solves the demand-bounded max-min fair allocation
   (:func:`repro.numasim.fairness.solve_max_min`) to obtain per-resource
   utilizations;
4. inflates access latencies with the queueing model and re-derives issue
   rates, iterating the rate/utilization fixed point with damping;
5. advances simulated time exactly to the next phase completion, recording
   per-channel traffic and per-(thread, stream, level, node) access
   buckets for the PMU sampler.

Contention is emergent: nothing in the engine knows about "good" or "rmc"
labels — a saturated channel simply inflates remote latencies and throttles
the threads crossing it, which is precisely what DR-BW's features observe.

The solver/recorder is the columnar kernel: each stationary span is laid
out as parallel numpy columns (one row per (thread, stream, level, dst)
combination) and the fixed point is evaluated with vectorized latency
math.  Its bit-exact behaviour is pinned by the interval goldens and
hypothesis property tests in ``tests/engine/`` — the scalar reference
kernel that once served as the differential oracle was retired after the
columnar path earned a trajectory point (see docs/performance.md).
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError, WorkloadError
from repro.numasim.cachemodel import (
    CacheModel,
    EffectiveCaches,
    PatternKind,
    StreamProfile,
)
from repro.numasim.fairness import build_membership, water_fill
from repro.numasim.interconnect import InterconnectFabric
from repro.numasim.latency import LatencyModel, LatencyTable, queueing_delay_factor
from repro.numasim.memctrl import DEFAULT_HISTORY_LIMIT, MemoryControllerSet
from repro.numasim.topology import NumaTopology
from repro.telemetry import get_telemetry
from repro.types import Channel, MemLevel

logger = logging.getLogger(__name__)

__all__ = [
    "EngineStream",
    "EnginePhase",
    "ThreadProgram",
    "SampleBucket",
    "BucketColumns",
    "BucketRates",
    "IntervalRecord",
    "PhaseTiming",
    "RunResult",
    "ExecutionEngine",
]

_EPS = 1e-9
_RATE_ITERATIONS = 8
_RATE_DAMPING = 0.5


@dataclass(frozen=True)
class EngineStream:
    """One stationary access stream of a phase.

    ``weight`` is the fraction of the phase's accesses issued to this
    stream; ``node_fractions[n]`` is the share of this stream's DRAM
    traffic that targets NUMA node ``n`` (derived from page placement).
    ``region_base``/``region_bytes`` delimit the (virtual) address range the
    stream touches, used by the PMU sampler to fabricate sample addresses.
    """

    object_id: int
    region_base: int
    region_bytes: int
    profile: StreamProfile
    weight: float
    node_fractions: np.ndarray
    #: True when every thread on a socket reads the *same* region (a shared
    #: object): one copy serves them all, so the stream sees the full L3
    #: rather than a per-thread share.
    shared: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.weight <= 1.0:
            raise WorkloadError(f"stream weight must be in (0, 1]: {self.weight}")
        nf = self.node_fractions
        if type(nf) is not np.ndarray or nf.dtype != np.float64:
            nf = np.asarray(nf, dtype=np.float64)
        if nf.ndim != 1 or nf.size == 0:
            raise WorkloadError("node_fractions must be a non-empty 1-D array")
        if (nf < -1e-12).any() or abs(float(nf.sum()) - 1.0) > 1e-6:
            raise WorkloadError(f"node_fractions must be a distribution, got {nf}")
        if self.region_bytes <= 0:
            raise WorkloadError("region_bytes must be positive")
        object.__setattr__(self, "node_fractions", nf.clip(0.0, 1.0))


@dataclass(frozen=True)
class EnginePhase:
    """A stationary phase: ``n_accesses`` spread over ``streams``."""

    name: str
    n_accesses: float
    compute_cycles_per_access: float
    streams: tuple[EngineStream, ...]

    def __post_init__(self) -> None:
        if self.n_accesses < 0:
            raise WorkloadError("n_accesses must be >= 0")
        if self.compute_cycles_per_access < 0:
            raise WorkloadError("compute_cycles_per_access must be >= 0")
        if self.n_accesses > 0:
            if not self.streams:
                raise WorkloadError(f"phase {self.name!r} has accesses but no streams")
            total = sum(s.weight for s in self.streams)
            if abs(total - 1.0) > 1e-6:
                raise WorkloadError(
                    f"phase {self.name!r}: stream weights sum to {total}, expected 1"
                )


@dataclass(frozen=True)
class ThreadProgram:
    """The phases one software thread executes, bound to logical CPU ``cpu``."""

    thread_id: int
    cpu: int
    phases: tuple[EnginePhase, ...]


@dataclass(frozen=True, slots=True)
class SampleBucket:
    """Aggregate of homogeneous accesses, ready for Poisson thinning.

    ``dst_node`` is meaningful for DRAM levels (the node whose controller
    served the access); for cache levels it equals the source node.

    A thin per-record view: the engine stores buckets columnarly (see
    :class:`BucketColumns`) and materializes these only for object-level
    consumers.
    """

    thread_id: int
    cpu: int
    src_node: int
    object_id: int
    region_base: int
    region_bytes: int
    level: MemLevel
    dst_node: int
    n_accesses: float
    mean_latency: float


@dataclass(frozen=True, slots=True)
class BucketColumns:
    """Columnar store of a run's sample buckets, one numpy array per field.

    Rows are emitted in canonical (sorted-key) order by the engine's
    bucket finalization, so two runs that accumulated the same buckets
    serialize identically regardless of accumulation insertion order.
    The PMU sampler thins these columns directly without rehydrating
    :class:`SampleBucket` objects.
    """

    thread_id: np.ndarray
    cpu: np.ndarray
    src_node: np.ndarray
    object_id: np.ndarray
    region_base: np.ndarray
    region_bytes: np.ndarray
    level: np.ndarray  # MemLevel integer codes
    dst_node: np.ndarray
    n_accesses: np.ndarray
    mean_latency: np.ndarray

    _INT_FIELDS = (
        "thread_id", "cpu", "src_node", "object_id",
        "region_base", "region_bytes", "level", "dst_node",
    )

    def __len__(self) -> int:
        return int(self.thread_id.shape[0])

    @classmethod
    def from_buckets(cls, buckets: list[SampleBucket]) -> "BucketColumns":
        """Columnarize a per-record bucket list (compat/oracle path)."""
        n = len(buckets)
        return cls(
            **{
                name: np.fromiter(
                    (int(getattr(b, name)) for b in buckets), dtype=np.int64, count=n
                )
                for name in cls._INT_FIELDS
            },
            n_accesses=np.fromiter(
                (b.n_accesses for b in buckets), dtype=np.float64, count=n
            ),
            mean_latency=np.fromiter(
                (b.mean_latency for b in buckets), dtype=np.float64, count=n
            ),
        )

    def to_buckets(self) -> list[SampleBucket]:
        """Materialize per-record :class:`SampleBucket` views."""
        return [
            SampleBucket(
                thread_id=int(self.thread_id[i]),
                cpu=int(self.cpu[i]),
                src_node=int(self.src_node[i]),
                object_id=int(self.object_id[i]),
                region_base=int(self.region_base[i]),
                region_bytes=int(self.region_bytes[i]),
                level=MemLevel(int(self.level[i])),
                dst_node=int(self.dst_node[i]),
                n_accesses=float(self.n_accesses[i]),
                mean_latency=float(self.mean_latency[i]),
            )
            for i in range(len(self))
        ]


@dataclass(frozen=True)
class BucketRates:
    """Columnar per-cycle access rates of one stationary span.

    One row per (thread, stream, level, dst) combination the span's solver
    resolved; ``rate[i]`` is accesses/cycle, so a slice of ``dt`` cycles
    contributes ``rate[i] * dt`` accesses at ``latency[i]``.  Shared by
    every :class:`IntervalRecord` sliced out of the span, so per-slice
    consumers (the PMU sampler's streaming path) can thin the whole row
    set with one vectorized draw instead of materializing buckets.
    """

    thread_id: np.ndarray
    cpu: np.ndarray
    src_node: np.ndarray
    object_id: np.ndarray
    region_base: np.ndarray
    region_bytes: np.ndarray
    level: np.ndarray
    dst_node: np.ndarray
    rate: np.ndarray
    latency: np.ndarray

    def __len__(self) -> int:
        return int(self.rate.shape[0])


@dataclass(frozen=True)
class IntervalRecord:
    """One monitoring interval emitted by the engine's streaming hook.

    Produced only when a listener is attached (see
    :meth:`ExecutionEngine.run`); the batch path never builds these.
    ``node_bytes[d]`` is DRAM traffic served by node ``d`` during the
    interval; ``channel_bytes`` the per-directed-channel share of it.
    """

    index: int
    start_cycle: float
    duration_cycles: float
    node_bytes: np.ndarray
    channel_bytes: dict[Channel, float]
    rates: BucketRates

    @property
    def end_cycle(self) -> float:
        return self.start_cycle + self.duration_cycles

    def buckets(self) -> list[SampleBucket]:
        """Materialize this interval's accesses as sample buckets."""
        r = self.rates
        counts = r.rate * self.duration_cycles
        return [
            SampleBucket(
                thread_id=int(r.thread_id[i]),
                cpu=int(r.cpu[i]),
                src_node=int(r.src_node[i]),
                object_id=int(r.object_id[i]),
                region_base=int(r.region_base[i]),
                region_bytes=int(r.region_bytes[i]),
                level=MemLevel(int(r.level[i])),
                dst_node=int(r.dst_node[i]),
                n_accesses=float(counts[i]),
                mean_latency=float(r.latency[i]),
            )
            for i in range(len(r))
            if counts[i] > 0
        ]


@dataclass(frozen=True)
class PhaseTiming:
    """Wall-clock (cycle) extent of one named phase across all threads."""

    name: str
    start_cycle: float
    end_cycle: float

    @property
    def duration_cycles(self) -> float:
        return self.end_cycle - self.start_cycle


@dataclass
class RunResult:
    """Everything the profiler and evaluation harness need from one run."""

    topology: NumaTopology
    total_cycles: float
    thread_finish_cycles: dict[int, float]
    phase_timings: list[PhaseTiming]
    bucket_columns: BucketColumns
    memctrl: MemoryControllerSet
    interconnect: InterconnectFabric
    #: Extra stall injected per access (profiling overhead model), cycles.
    extra_stall_cycles: float = 0.0

    @property
    def buckets(self) -> list[SampleBucket]:
        """Per-record view over :attr:`bucket_columns` (cached on first use)."""
        cached = self.__dict__.get("_buckets")
        if cached is None:
            cached = self.bucket_columns.to_buckets()
            self.__dict__["_buckets"] = cached
        return cached

    @property
    def total_seconds(self) -> float:
        return self.topology.cycles_to_seconds(self.total_cycles)

    def channel_bytes(self) -> dict[Channel, float]:
        """Cumulative traffic per remote channel."""
        return {c: self.interconnect.total_bytes(c) for c in self.interconnect.channels}

    def phase_cycles(self, name: str) -> float:
        """Total cycles spent in phases named ``name`` (summed over repeats)."""
        return sum(t.duration_cycles for t in self.phase_timings if t.name == name)


@dataclass
class _ThreadState:
    program: ThreadProgram
    phase_idx: int = 0
    remaining: float = 0.0
    finish_cycle: float = 0.0

    def current_phase(self) -> EnginePhase | None:
        if self.phase_idx >= len(self.program.phases):
            return None
        return self.program.phases[self.phase_idx]


@dataclass
class _StreamCtx:
    """Per-interval resolved state of one (thread, stream) pair."""

    state: _ThreadState
    stream: EngineStream
    src_node: int
    fractions: dict[MemLevel, float]
    dram_bytes_per_access: float
    mlp: float
    traffic_coeff: np.ndarray = field(default_factory=lambda: np.zeros(0))
    flow_ids: dict[int, int] = field(default_factory=dict)  # dst node -> flow idx


class _SpanFlows:
    """DRAM/link flow table of one stationary span (shared by both kernels)."""

    __slots__ = (
        "usage", "capacities", "ch_index", "n_links",
        "flow_thread", "flow_coeff", "flow_dst", "flow_chan", "n_flows",
        # fixed-point accelerators: prebuilt fairness membership matrix and
        # the contiguous per-thread flow-group boundaries
        "member", "flow_starts", "flow_first",
    )


class _SpanLayout:
    """Columnar row layout of one stationary span.

    One row per (thread, stream, level, dst) combination, in the fixed
    canonical visit order (threads, then streams, then ``fractions``
    insertion order, then ascending remote dst) the goldens are pinned to.  ``prog``
    is the per-thread rate program evaluated by ``_rates_at``: a list of
    ``(compute_cycles_per_access, streams)`` where each stream entry is
    ``(weight, mlp, terms)`` and each term ``(frac, row_idx, sub)`` —
    ``sub`` is ``None`` for a direct level or a list of
    ``(nf_share, row_idx)`` pairs averaging remote targets.

    Latency rows split into constant (cache) and DRAM groups; the DRAM
    group carries the precomputed pipe/queue decomposition from
    :class:`~repro.numasim.latency.LatencyTable` so one vectorized
    expression prices every row per fixed-point iteration.
    """

    __slots__ = (
        "prog",
        # latency evaluation
        "row_lat0", "dram_idx", "dram_pipe", "dram_mcpart", "dram_node",
        "rem_pos", "rem_linkpart", "rem_link", "rand_pos",
        # bucket/rate emission
        "row_thread", "w", "f", "m1", "d1",
        "key_prefix", "bucket_ok", "all_ok",
        "tid", "cpu", "src", "obj", "rbase", "rbytes", "lvl", "dst",
        "n_rows",
    )


class _SpanPlan:
    """Solved state of one stationary span under the columnar kernel."""

    __slots__ = ("rates", "layout", "flows", "final_latency")


class ExecutionEngine:
    """Runs thread programs to completion on a simulated NUMA machine."""

    def __init__(
        self,
        topology: NumaTopology,
        latency_model: LatencyModel | None = None,
        cache_model: CacheModel | None = None,
        barriers: bool = True,
        link_capacity_overrides: dict[Channel, float] | None = None,
        history_limit: int | None = None,
    ) -> None:
        self.topology = topology
        self.latency_model = latency_model or LatencyModel()
        self.cache_model = cache_model or CacheModel()
        self.barriers = barriers
        self._link_overrides = link_capacity_overrides
        #: Per-(src, dst, level) latency constants, folded once from the
        #: model so the columnar kernel never re-derives them per span.
        self.latency_table = LatencyTable(self.latency_model, topology)
        #: Memo for ``cache_model.level_fractions`` keyed by
        #: (profile, effective cache sizes) — the model is pure, and spans
        #: of a steady workload re-resolve the same handful of splits.
        self._lf_cache: dict[tuple, object] = {}
        # Flow-table constants are topology-fixed: build the channel index
        # and resource-capacity vector once instead of per span.
        fabric_channels = topology.remote_channels()
        self._fabric_ch_index = {c: i for i, c in enumerate(fabric_channels)}
        self._fabric_n_links = len(fabric_channels)
        n_nodes = topology.n_sockets
        caps = np.concatenate(
            [
                np.full(n_nodes, topology.dram_bw_bytes_per_cycle),
                np.full(self._fabric_n_links, topology.link_bw_bytes_per_cycle),
            ]
        )
        if link_capacity_overrides:
            for ch, cap in link_capacity_overrides.items():
                caps[n_nodes + self._fabric_ch_index[ch]] = cap
        self._fabric_capacities = caps
        #: Retention cap for raw per-interval utilization records on the
        #: run's memory controllers and interconnect fabric (``None`` uses
        #: their shared default) — running aggregates are never capped.
        self.history_limit = (
            history_limit if history_limit is not None else DEFAULT_HISTORY_LIMIT
        )

    # -- public API -----------------------------------------------------------

    def run(
        self,
        programs: list[ThreadProgram],
        extra_stall_cycles_per_access: float = 0.0,
        interval_listener=None,
        interval_max_cycles: float | None = None,
    ) -> RunResult:
        """Execute ``programs`` and return the full run record.

        ``extra_stall_cycles_per_access`` injects a uniform per-access slowdown
        used by the profiling-overhead model (Table VII): sampling interrupts
        and allocation interception steal cycles from every thread.

        ``interval_listener``, when given, is called with an
        :class:`IntervalRecord` for every monitoring interval *while the run
        executes* — the streaming hook live monitoring builds on.  The system
        is stationary between phase completions, so slicing a span at
        ``interval_max_cycles`` (when set) only refines reporting
        granularity: per-slice traffic and access counts are exact linear
        shares of the span, and the batch-path accounting (buckets,
        utilization histories, timings) is untouched.  Listener exceptions
        propagate and abort the run.
        """
        tel = get_telemetry()
        with tel.span("engine.run", n_threads=len(programs)) as sp:
            result = self._run(
                programs,
                extra_stall_cycles_per_access,
                interval_listener=interval_listener,
                interval_max_cycles=interval_max_cycles,
            )
            if tel.enabled:
                n_intervals = result.memctrl.n_intervals
                sp.set(
                    intervals=n_intervals,
                    total_cycles=round(result.total_cycles, 1),
                )
                tel.metrics.counter("engine.runs").inc()
                tel.metrics.counter("engine.intervals").inc(n_intervals)
                logger.debug(
                    "engine run: %d threads, %d intervals, %.0f cycles",
                    len(programs), n_intervals, result.total_cycles,
                )
            return result

    def _run(
        self,
        programs: list[ThreadProgram],
        extra_stall_cycles_per_access: float,
        interval_listener=None,
        interval_max_cycles: float | None = None,
    ) -> RunResult:
        if interval_max_cycles is not None and interval_max_cycles <= 0:
            raise SimulationError(
                f"interval_max_cycles must be positive, got {interval_max_cycles}"
            )
        if not programs:
            raise SimulationError("no thread programs to run")
        seen = set()
        for p in programs:
            if p.thread_id in seen:
                raise SimulationError(f"duplicate thread id {p.thread_id}")
            seen.add(p.thread_id)
            if not 0 <= p.cpu < self.topology.n_cpus:
                raise SimulationError(f"thread {p.thread_id} bound to bad cpu {p.cpu}")

        memctrl = MemoryControllerSet(self.topology, history_limit=self.history_limit)
        fabric = InterconnectFabric(
            self.topology, self._link_overrides, history_limit=self.history_limit
        )

        states = [_ThreadState(program=p) for p in programs]
        for st in states:
            self._enter_phase(st)

        now = 0.0
        bucket_acc: dict[tuple, list[float]] = {}
        phase_spans: dict[tuple[int, str], list[float]] = {}  # (group, name) -> [start, end]
        guard = 0
        max_events = sum(len(p.phases) for p in programs) * 4 + 64
        interval_index = 0

        while True:
            runnable = self._runnable(states)
            if not runnable:
                if all(st.current_phase() is None for st in states):
                    break
                raise SimulationError("deadlock: unfinished threads but none runnable")

            plan = self._solve_span_columnar(runnable, extra_stall_cycles_per_access)
            rates = plan.rates

            # Time to the next phase completion among runnable threads.
            dts = [
                st.remaining / max(rate, _EPS)
                for st, rate in zip(runnable, rates)
            ]
            dt = min(dts)
            if not math.isfinite(dt) or dt < 0:
                raise SimulationError(f"bad interval length {dt}")
            dt = max(dt, _EPS)

            self._record_span_columnar(
                now, dt, runnable, plan, memctrl, fabric, bucket_acc, phase_spans
            )
            if interval_listener is not None:
                span_tbl = self._span_rates_columnar(plan, fabric)
                interval_index = self._emit_slices(
                    interval_listener,
                    interval_index,
                    now,
                    dt,
                    span_tbl,
                    fabric,
                    interval_max_cycles,
                )

            now += dt
            for st, rate in zip(runnable, rates):
                st.remaining -= rate * dt
                if st.remaining <= _EPS * max(1.0, rate * dt):
                    st.remaining = 0.0
                    st.finish_cycle = now
                    st.phase_idx += 1
                    self._enter_phase(st)

            guard += 1
            if guard > max_events:
                raise SimulationError("engine exceeded its event budget")

        return RunResult(
            topology=self.topology,
            total_cycles=now,
            thread_finish_cycles={st.program.thread_id: st.finish_cycle for st in states},
            phase_timings=self._phase_timings(phase_spans),
            bucket_columns=self._finalize_bucket_columns(bucket_acc),
            memctrl=memctrl,
            interconnect=fabric,
            extra_stall_cycles=extra_stall_cycles_per_access,
        )

    # -- scheduling -------------------------------------------------------------

    def _enter_phase(self, st: _ThreadState) -> None:
        """Load the next non-empty phase's work counter (skipping empty ones)."""
        while True:
            phase = st.current_phase()
            if phase is None:
                return
            if phase.n_accesses > 0:
                st.remaining = phase.n_accesses
                return
            st.phase_idx += 1

    def _runnable(self, states: list[_ThreadState]) -> list[_ThreadState]:
        alive = [st for st in states if st.current_phase() is not None]
        if not alive:
            return []
        if not self.barriers:
            return alive
        group = min(st.phase_idx for st in alive)
        return [st for st in alive if st.phase_idx == group]

    # -- shared span setup (both kernels) --------------------------------------

    def _build_ctxs(self, runnable: list[_ThreadState]) -> list[list[_StreamCtx]]:
        """Resolve per-(thread, stream) cache splits and DRAM fractions."""
        topo = self.topology

        # Cache sharing: private L1/L2 split between active SMT siblings,
        # L3 split between active threads on the socket.
        core_load: dict[int, int] = {}
        socket_load: dict[int, int] = {}
        for st in runnable:
            core = topo.core_of_cpu(st.program.cpu)
            node = topo.node_of_cpu(st.program.cpu)
            core_load[core] = core_load.get(core, 0) + 1
            socket_load[node] = socket_load.get(node, 0) + 1

        lf_cache = self._lf_cache
        ctxs: list[list[_StreamCtx]] = []
        for st in runnable:
            phase = st.current_phase()
            assert phase is not None
            core = topo.core_of_cpu(st.program.cpu)
            node = topo.node_of_cpu(st.program.cpu)
            caches = EffectiveCaches(
                l1_bytes=topo.l1.size_bytes / core_load[core],
                l2_bytes=topo.l2.size_bytes / core_load[core],
                l3_bytes=topo.l3.size_bytes / max(1, socket_load[node]),
            )
            # A thread's private streams compete for its cache share in
            # proportion to their footprints (29 equal arrays each get 1/29
            # of the share, not the whole of it).  Shared streams see the
            # full socket L3 — one resident copy serves every thread.
            private_ws = sum(
                s.profile.working_set_bytes for s in phase.streams if not s.shared
            )
            per_thread: list[_StreamCtx] = []
            for stream in phase.streams:
                if stream.shared:
                    stream_caches = EffectiveCaches(
                        l1_bytes=caches.l1_bytes,
                        l2_bytes=caches.l2_bytes,
                        l3_bytes=float(topo.l3.size_bytes),
                    )
                else:
                    frac = (
                        stream.profile.working_set_bytes / private_ws
                        if private_ws > 0
                        else 1.0
                    )
                    stream_caches = EffectiveCaches(
                        l1_bytes=max(caches.l1_bytes * frac, 1.0),
                        l2_bytes=max(caches.l2_bytes * frac, 1.0),
                        l3_bytes=max(caches.l3_bytes * frac, 1.0),
                    )
                lf_key = (
                    stream.profile,
                    stream_caches.l1_bytes,
                    stream_caches.l2_bytes,
                    stream_caches.l3_bytes,
                )
                lf = lf_cache.get(lf_key)
                if lf is None:
                    if len(lf_cache) > 4096:
                        lf_cache.clear()
                    lf = self.cache_model.level_fractions(stream.profile, stream_caches)
                    lf_cache[lf_key] = lf
                fr = self._localize(lf.fractions, stream.node_fractions, node)
                per_thread.append(
                    _StreamCtx(
                        state=st,
                        stream=stream,
                        src_node=node,
                        fractions=fr,
                        dram_bytes_per_access=lf.dram_bytes_per_access,
                        mlp=lf.mlp,
                    )
                )
            ctxs.append(per_thread)
        return ctxs

    def _build_flows(self, ctxs: list[list[_StreamCtx]]) -> "_SpanFlows":
        """Flow table: one flow per (thread, stream, dst node) with traffic."""
        topo = self.topology
        n_nodes = topo.n_sockets
        ch_index = self._fabric_ch_index
        n_links = self._fabric_n_links
        capacities = self._fabric_capacities

        usage: list[tuple[int, ...]] = []
        threads: list[int] = []
        coeffs_flat: list[float] = []
        dsts: list[int] = []
        chans: list[int] = []  # channel index, -1 for node-local flows
        for t_idx, per_thread in enumerate(ctxs):
            for ctx in per_thread:
                nf = ctx.stream.node_fractions
                coeffs = np.zeros(n_nodes)
                for dst in range(n_nodes):
                    traffic = ctx.stream.weight * ctx.dram_bytes_per_access * nf[dst]
                    if traffic <= _EPS:
                        continue
                    res = [dst]
                    chan = -1
                    if dst != ctx.src_node:
                        chan = ch_index[Channel(ctx.src_node, dst)]
                        res.append(n_nodes + chan)
                    ctx.flow_ids[dst] = len(usage)
                    usage.append(tuple(res))
                    threads.append(t_idx)
                    coeffs_flat.append(traffic)
                    dsts.append(dst)
                    chans.append(chan)
                    coeffs[dst] = traffic
                ctx.traffic_coeff = coeffs

        fl = _SpanFlows()
        fl.usage = usage
        fl.capacities = capacities
        fl.ch_index = ch_index
        fl.n_links = n_links
        ft = np.array(threads, dtype=np.int64)
        fl.flow_thread = ft
        fl.flow_coeff = np.array(coeffs_flat, dtype=np.float64)
        fl.flow_dst = np.array(dsts, dtype=np.int64)
        fl.flow_chan = np.array(chans, dtype=np.int64)
        fl.n_flows = len(usage)
        if fl.n_flows:
            fl.member = build_membership(usage, capacities.shape[0])
            # Flows are emitted grouped by thread index, so per-thread
            # reductions can use contiguous reduceat segments.
            starts = np.flatnonzero(np.r_[True, ft[1:] != ft[:-1]])
            fl.flow_starts = starts
            fl.flow_first = ft[starts]
        else:
            fl.member = None
            fl.flow_starts = fl.flow_first = None
        return fl

    def _localize(
        self,
        fractions: dict[MemLevel, float],
        node_fractions: np.ndarray,
        src_node: int,
    ) -> dict[MemLevel, float]:
        """Split the DRAM fraction into local/remote by page placement."""
        out = dict(fractions)
        dram = out.pop(MemLevel.LOCAL_DRAM, 0.0) + out.pop(MemLevel.REMOTE_DRAM, 0.0)
        local = float(node_fractions[src_node]) if src_node < node_fractions.size else 0.0
        out[MemLevel.LOCAL_DRAM] = dram * local
        out[MemLevel.REMOTE_DRAM] = dram * (1.0 - local)
        return out

    # -- the columnar kernel ----------------------------------------------------

    def _build_layout(
        self,
        runnable: list[_ThreadState],
        ctxs: list[list[_StreamCtx]],
    ) -> _SpanLayout:
        """Lay the span out as parallel columns, one row per bucket source.

        Row order follows the canonical visit order the goldens are pinned
        to, so every downstream accumulation (``np.add.at``, bucket dict
        updates) sees operands in the same sequence and produces the same
        bits run after run.
        """
        tab = self.latency_table
        n_nodes = self.topology.n_sockets
        ch_index = tab.channel_index
        local_dram = MemLevel.LOCAL_DRAM
        remote_dram = MemLevel.REMOTE_DRAM
        local_int = int(local_dram)
        remote_int = int(remote_dram)
        local_pipe = tab.pipe(local_dram)
        local_mcpart = tab.mc_part(local_dram)
        remote_pipe = tab.pipe(remote_dram)
        remote_mcpart = tab.mc_part(remote_dram)
        remote_linkpart = tab.link_part(remote_dram)
        base_of = tab.base_of
        random_kind = PatternKind.RANDOM

        prog: list[tuple[float, list]] = []
        f_col: list[float] = []
        m1_col: list[float] = []
        d1_col: list[float] = []
        lat0: list[float] = []
        dram_idx: list[int] = []
        dram_pipe: list[float] = []
        dram_mcpart: list[float] = []
        dram_node: list[int] = []
        rem_pos: list[int] = []
        rem_linkpart: list[float] = []
        rem_link: list[int] = []
        rand_pos: list[int] = []
        key_prefix: list[tuple] = []
        bucket_ok: list[bool] = []
        lvl_c: list[int] = []
        dst_c: list[int] = []
        # Columns constant within one (thread, stream) context are recorded
        # once per context and expanded with np.repeat at the end — rows of
        # a context are contiguous in the canonical visit order.
        nrow = 0
        ctx_rows: list[int] = []
        ctx_tidx: list[int] = []
        ctx_w: list[float] = []
        ctx_tid: list[int] = []
        ctx_cpu: list[int] = []
        ctx_src: list[int] = []
        ctx_obj: list[int] = []
        ctx_rbase: list[int] = []
        ctx_rbytes: list[int] = []

        for t_idx, (st, per_thread) in enumerate(zip(runnable, ctxs)):
            phase = st.current_phase()
            assert phase is not None
            tid = st.program.thread_id
            cpu = st.program.cpu
            stream_entries: list[tuple[float, float, list]] = []
            for ctx in per_thread:
                stream = ctx.stream
                src = ctx.src_node
                nf = stream.node_fractions
                is_random = stream.profile.kind is random_kind
                obj = stream.object_id
                rbase = stream.region_base
                rbytes = stream.region_bytes
                ctx_start = nrow
                terms: list[tuple[float, int, list | None]] = []
                for lvl, frac in ctx.fractions.items():
                    if frac <= 0:
                        continue
                    if lvl is remote_dram:
                        remote_total = 1.0 - float(nf[src])
                        denom = max(remote_total, _EPS)
                        sub: list[tuple[float, int]] = []
                        for dst in range(nf.size):
                            if dst == src or nf[dst] <= 0:
                                continue
                            ridx = nrow
                            nrow += 1
                            sub.append((float(nf[dst] / denom), ridx))
                            f_col.append(frac)
                            m1_col.append(float(nf[dst]))
                            d1_col.append(denom)
                            lat0.append(0.0)
                            dram_pipe.append(remote_pipe)
                            dram_mcpart.append(remote_mcpart)
                            dram_node.append(dst)
                            rem_pos.append(len(dram_idx))
                            rem_linkpart.append(remote_linkpart)
                            rem_link.append(ch_index[Channel(src, dst)])
                            if is_random:
                                rand_pos.append(len(dram_idx))
                            dram_idx.append(ridx)
                            bucket_ok.append(dst < n_nodes)
                            key_prefix.append(
                                (tid, cpu, src, obj, rbase, rbytes, remote_int, dst)
                            )
                            lvl_c.append(remote_int)
                            dst_c.append(dst)
                        terms.append((frac, -1, sub))
                    else:
                        ridx = nrow
                        nrow += 1
                        f_col.append(frac)
                        m1_col.append(1.0)
                        d1_col.append(1.0)
                        if lvl is local_dram:
                            lat0.append(0.0)
                            dram_pipe.append(local_pipe)
                            dram_mcpart.append(local_mcpart)
                            dram_node.append(src)
                            if is_random:
                                rand_pos.append(len(dram_idx))
                            dram_idx.append(ridx)
                            lvl_int = local_int
                        else:
                            lat0.append(base_of(lvl))
                            lvl_int = int(lvl)
                        terms.append((frac, ridx, None))
                        bucket_ok.append(True)
                        key_prefix.append(
                            (tid, cpu, src, obj, rbase, rbytes, lvl_int, src)
                        )
                        lvl_c.append(lvl_int)
                        dst_c.append(src)
                ctx_rows.append(nrow - ctx_start)
                ctx_tidx.append(t_idx)
                ctx_w.append(stream.weight)
                ctx_tid.append(tid)
                ctx_cpu.append(cpu)
                ctx_src.append(src)
                ctx_obj.append(obj)
                ctx_rbase.append(rbase)
                ctx_rbytes.append(rbytes)
                stream_entries.append((stream.weight, ctx.mlp, terms))
            prog.append((phase.compute_cycles_per_access, stream_entries))

        lay = _SpanLayout()
        lay.prog = prog
        reps = np.array(ctx_rows, dtype=np.int64)
        lay.row_thread = np.repeat(np.array(ctx_tidx, dtype=np.int64), reps)
        lay.w = np.repeat(np.array(ctx_w, dtype=np.float64), reps)
        lay.f = np.array(f_col, dtype=np.float64)
        lay.m1 = np.array(m1_col, dtype=np.float64)
        lay.d1 = np.array(d1_col, dtype=np.float64)
        lay.row_lat0 = np.array(lat0, dtype=np.float64)
        lay.dram_idx = np.array(dram_idx, dtype=np.int64)
        lay.dram_pipe = np.array(dram_pipe, dtype=np.float64)
        lay.dram_mcpart = np.array(dram_mcpart, dtype=np.float64)
        lay.dram_node = np.array(dram_node, dtype=np.int64)
        lay.rem_pos = np.array(rem_pos, dtype=np.int64)
        lay.rem_linkpart = np.array(rem_linkpart, dtype=np.float64)
        lay.rem_link = np.array(rem_link, dtype=np.int64)
        lay.rand_pos = np.array(rand_pos, dtype=np.int64)
        lay.key_prefix = key_prefix
        lay.bucket_ok = bucket_ok
        lay.all_ok = all(bucket_ok)
        lay.tid = np.repeat(np.array(ctx_tid, dtype=np.int64), reps)
        lay.cpu = np.repeat(np.array(ctx_cpu, dtype=np.int64), reps)
        lay.src = np.repeat(np.array(ctx_src, dtype=np.int64), reps)
        lay.obj = np.repeat(np.array(ctx_obj, dtype=np.int64), reps)
        lay.rbase = np.repeat(np.array(ctx_rbase, dtype=np.int64), reps)
        lay.rbytes = np.repeat(np.array(ctx_rbytes, dtype=np.int64), reps)
        lay.lvl = np.array(lvl_c, dtype=np.int64)
        lay.dst = np.array(dst_c, dtype=np.int64)
        lay.n_rows = nrow
        return lay

    def _row_latencies(
        self,
        lay: _SpanLayout,
        mc_rho: np.ndarray,
        link_rho: np.ndarray,
    ) -> np.ndarray:
        """Median latency of every layout row under the given utilizations.

        Bit-identical to per-row ``LatencyModel.effective_latency`` calls:
        clip/divide/add/multiply are elementwise, so vectorizing them
        preserves every rounding.
        """
        lat = lay.row_lat0.copy()
        if lay.dram_idx.size:
            lm = self.latency_model
            mcf = queueing_delay_factor(mc_rho, lm.max_inflation)
            d = lay.dram_pipe + lay.dram_mcpart * np.asarray(mcf)[lay.dram_node]
            if lay.rem_pos.size:
                lkf = np.asarray(queueing_delay_factor(link_rho, lm.max_inflation))
                dr = d[lay.rem_pos]
                d[lay.rem_pos] = (dr - lay.rem_linkpart) + lay.rem_linkpart * lkf[lay.rem_link]
            if lay.rand_pos.size:
                d[lay.rand_pos] *= lm.random_access_penalty
            lat[lay.dram_idx] = d
        return lat

    def _rates_at(
        self,
        lay: _SpanLayout,
        mc_rho: np.ndarray,
        link_rho: np.ndarray,
        extra_stall: float,
    ) -> list[float]:
        """Per-thread issue rates at the given utilizations (columnar).

        Evaluates the same arithmetic as ``_thread_rate``, reading row
        latencies from one vectorized pricing pass; the reductions stay in
        scalar Python because numpy's pairwise summation would change the
        accumulation order (and therefore the bits).
        """
        latl = self._row_latencies(lay, mc_rho, link_rho).tolist()
        rates: list[float] = []
        for cpa, stream_entries in lay.prog:
            stall = 0.0
            for weight, mlp, terms in stream_entries:
                s = 0.0
                for frac, ridx, sub in terms:
                    if sub is None:
                        lat = latl[ridx]
                    else:
                        lat = 0.0
                        for share, rj in sub:
                            lat += share * latl[rj]
                    s += frac * lat
                stall += weight * s / mlp
            denom = cpa + stall + extra_stall
            if denom <= 0:
                raise SimulationError("thread with zero cost per access")
            rates.append(1.0 / denom)
        return rates

    def _solve_span_columnar(
        self,
        runnable: list[_ThreadState],
        extra_stall: float,
    ) -> _SpanPlan:
        """Columnar twin of ``_solve_interval``: same fixed point, same bits."""
        n_nodes = self.topology.n_sockets
        ctxs = self._build_ctxs(runnable)
        fl = self._build_flows(ctxs)
        lay = self._build_layout(runnable, ctxs)
        n_links = fl.n_links

        rates = np.array(
            self._rates_at(lay, np.zeros(n_nodes), np.zeros(n_links), extra_stall)
        )
        mc_rho = np.zeros(n_nodes)
        link_rho = np.zeros(n_links)

        for _ in range(_RATE_ITERATIONS):
            if fl.n_flows:
                demands = rates[fl.flow_thread] * fl.flow_coeff
                sol = water_fill(demands, fl.member, fl.capacities)
                mc_rho = sol.utilization[:n_nodes]
                link_rho = sol.utilization[n_nodes:]
                throttle = sol.throttle(demands)
                # A thread advances no faster than its most-throttled flow.
                # min is exact, so grouped reduceat over the contiguous
                # per-thread flow segments matches np.minimum.at bitwise.
                cap = np.full(len(ctxs), np.inf)
                cap[fl.flow_first] = np.minimum.reduceat(
                    np.where(throttle > 0, throttle, _EPS), fl.flow_starts
                )
                rate_cap = rates * np.where(np.isfinite(cap), cap, 1.0)
            else:
                rate_cap = rates.copy()

            vals = self._rates_at(lay, mc_rho, link_rho, extra_stall)
            new_rates = np.array(
                [
                    min(v, rate_cap[i] if rate_cap[i] > 0 else _EPS)
                    for i, v in enumerate(vals)
                ]
            )
            rates = _RATE_DAMPING * rates + (1.0 - _RATE_DAMPING) * new_rates

        plan = _SpanPlan()
        plan.rates = [float(r) for r in rates]
        plan.layout = lay
        plan.flows = fl
        plan.final_latency = self._row_latencies(lay, mc_rho, link_rho)
        return plan

    def _record_span_columnar(
        self,
        now: float,
        dt: float,
        runnable: list[_ThreadState],
        plan: _SpanPlan,
        memctrl: MemoryControllerSet,
        fabric: InterconnectFabric,
        bucket_acc: dict[tuple, list[float]],
        phase_spans: dict[tuple[int, str], list[float]],
    ) -> None:
        """Record one stationary span into controllers, fabric and buckets."""
        for st in runnable:
            phase = st.current_phase()
            assert phase is not None
            key = (st.phase_idx, phase.name)
            span = phase_spans.setdefault(key, [now, now + dt])
            span[0] = min(span[0], now)
            span[1] = max(span[1], now + dt)

        fl = plan.flows
        lay = plan.layout
        node_bytes = np.zeros(self.topology.n_sockets)
        chan_bytes = np.zeros(len(fabric))
        rates_arr = np.asarray(plan.rates, dtype=np.float64)
        if fl.n_flows:
            tr = fl.flow_coeff * rates_arr[fl.flow_thread]
            tr = tr * dt
            # np.add.at applies updates sequentially in element order — the
            # canonical accumulation order the goldens are pinned to.
            np.add.at(node_bytes, fl.flow_dst, tr)
            remote = fl.flow_chan >= 0
            if remote.any():
                np.add.at(chan_bytes, fl.flow_chan[remote], tr[remote])

        if lay.n_rows:
            a = rates_arr[lay.row_thread] * dt
            a = a * lay.w
            a = a * lay.f
            a = a * lay.m1
            counts = (a / lay.d1).tolist()
            lats = plan.final_latency.tolist()
            prefix = lay.key_prefix
            ok = lay.bucket_ok
            all_ok = lay.all_ok
            log2 = math.log2
            for i, c in enumerate(counts):
                if c <= 0 or not (all_ok or ok[i]):
                    continue
                latv = lats[i]
                lat_bin = int(round(4.0 * log2(latv if latv > 1.0 else 1.0)))
                key = prefix[i] + (lat_bin,)
                acc = bucket_acc.get(key)
                if acc is None:
                    bucket_acc[key] = [c, c * latv]
                else:
                    acc[0] += c
                    acc[1] += c * latv

        memctrl.record_interval(now, dt, node_bytes)
        fabric.record_interval(now, dt, chan_bytes)

    def _span_rates_columnar(
        self,
        plan: _SpanPlan,
        fabric: InterconnectFabric,
    ) -> tuple[BucketRates, np.ndarray, np.ndarray]:
        """Per-cycle access/traffic rates of the span, for the streaming hook."""
        fl = plan.flows
        lay = plan.layout
        node_rate = np.zeros(self.topology.n_sockets)
        chan_rate = np.zeros(len(fabric))
        rates_arr = np.asarray(plan.rates, dtype=np.float64)
        if fl.n_flows:
            tr = fl.flow_coeff * rates_arr[fl.flow_thread]
            np.add.at(node_rate, fl.flow_dst, tr)
            remote = fl.flow_chan >= 0
            if remote.any():
                np.add.at(chan_rate, fl.flow_chan[remote], tr[remote])

        r = rates_arr[lay.row_thread] * lay.w
        r = r * lay.f
        r = r * lay.m1
        r = r / lay.d1
        keep = r > 0
        if not lay.all_ok:
            keep &= np.asarray(lay.bucket_ok, dtype=bool)
        return (
            BucketRates(
                thread_id=lay.tid[keep],
                cpu=lay.cpu[keep],
                src_node=lay.src[keep],
                object_id=lay.obj[keep],
                region_base=lay.rbase[keep],
                region_bytes=lay.rbytes[keep],
                level=lay.lvl[keep],
                dst_node=lay.dst[keep],
                rate=r[keep],
                latency=plan.final_latency[keep],
            ),
            node_rate,
            chan_rate,
        )

    # -- the streaming hook -----------------------------------------------------

    def _emit_slices(
        self,
        listener,
        index: int,
        start: float,
        span: float,
        span_tbl: tuple[BucketRates, np.ndarray, np.ndarray],
        fabric: InterconnectFabric,
        max_cycles: float | None,
    ) -> int:
        """Slice one stationary span into monitoring intervals.

        The solver ran once for the whole span; slices share one
        :class:`BucketRates` table (``span_tbl``, built by
        ``_span_rates_columnar``), so each emission is a handful of
        vectorized scalings — cheap enough to leave the listener attached
        on production-length runs.
        """
        bucket_rates, node_rate, chan_rate = span_tbl
        n_slices = 1
        if max_cycles is not None:
            n_slices = max(1, math.ceil(span / max_cycles))
            if n_slices > 100_000:
                raise SimulationError(
                    f"interval_max_cycles={max_cycles} slices a {span:.3g}-cycle "
                    "span into too many intervals"
                )
        dt = span / n_slices
        channels = fabric.channels
        for k in range(n_slices):
            chan_bytes = chan_rate * dt
            listener(
                IntervalRecord(
                    index=index,
                    start_cycle=start + k * dt,
                    duration_cycles=dt,
                    node_bytes=node_rate * dt,
                    channel_bytes={
                        ch: float(v) for ch, v in zip(channels, chan_bytes)
                    },
                    rates=bucket_rates,
                )
            )
            index += 1
        return index

    @staticmethod
    def _finalize_bucket_columns(bucket_acc: dict[tuple, list[float]]) -> BucketColumns:
        """Emit accumulated buckets as sorted columns.

        Keys are sorted canonically so the serialized output is independent
        of dict insertion order (regression-tested with shuffled insertion
        in ``tests/engine/test_columnar_equiv.py``).
        """
        items = sorted(bucket_acc.items())
        n = len(items)
        ints = np.empty((n, 8), dtype=np.int64)
        counts = np.empty(n, dtype=np.float64)
        lat_sums = np.empty(n, dtype=np.float64)
        for i, (key, acc) in enumerate(items):
            ints[i] = key[:8]
            counts[i] = acc[0]
            lat_sums[i] = acc[1]
        return BucketColumns(
            thread_id=ints[:, 0].copy(),
            cpu=ints[:, 1].copy(),
            src_node=ints[:, 2].copy(),
            object_id=ints[:, 3].copy(),
            region_base=ints[:, 4].copy(),
            region_bytes=ints[:, 5].copy(),
            level=ints[:, 6].copy(),
            dst_node=ints[:, 7].copy(),
            n_accesses=counts,
            mean_latency=lat_sums / counts,
        )

    @staticmethod
    def _phase_timings(phase_spans: dict[tuple[int, str], list[float]]) -> list[PhaseTiming]:
        return [
            PhaseTiming(name=name, start_cycle=span[0], end_cycle=span[1])
            for (_, name), span in sorted(phase_spans.items())
        ]
