"""Piecewise-stationary NUMA execution engine.

The engine executes *thread programs* — sequences of phases, each phase a
stationary mix of access streams — against the machine's bandwidth and
latency models.  Between two scheduling events (a thread finishing its
phase) the system is stationary, so the engine:

1. computes each runnable thread's uncontended issue rate from the
   analytical cache model and base latencies;
2. derives the DRAM traffic flows each thread pushes onto memory
   controllers and interconnect channels;
3. solves the demand-bounded max-min fair allocation
   (:func:`repro.numasim.fairness.solve_max_min`) to obtain per-resource
   utilizations;
4. inflates access latencies with the queueing model and re-derives issue
   rates, iterating the rate/utilization fixed point with damping;
5. advances simulated time exactly to the next phase completion, recording
   per-channel traffic and per-(thread, stream, level, node) access
   buckets for the PMU sampler.

Contention is emergent: nothing in the engine knows about "good" or "rmc"
labels — a saturated channel simply inflates remote latencies and throttles
the threads crossing it, which is precisely what DR-BW's features observe.
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError, WorkloadError
from repro.numasim.cachemodel import (
    CacheModel,
    EffectiveCaches,
    PatternKind,
    StreamProfile,
)
from repro.numasim.fairness import FairnessProblem, solve_max_min
from repro.numasim.interconnect import InterconnectFabric
from repro.numasim.latency import LatencyModel
from repro.numasim.memctrl import DEFAULT_HISTORY_LIMIT, MemoryControllerSet
from repro.numasim.topology import NumaTopology
from repro.telemetry import get_telemetry
from repro.types import Channel, MemLevel

logger = logging.getLogger(__name__)

__all__ = [
    "EngineStream",
    "EnginePhase",
    "ThreadProgram",
    "SampleBucket",
    "BucketRates",
    "IntervalRecord",
    "PhaseTiming",
    "RunResult",
    "ExecutionEngine",
]

_EPS = 1e-9
_RATE_ITERATIONS = 8
_RATE_DAMPING = 0.5


@dataclass(frozen=True)
class EngineStream:
    """One stationary access stream of a phase.

    ``weight`` is the fraction of the phase's accesses issued to this
    stream; ``node_fractions[n]`` is the share of this stream's DRAM
    traffic that targets NUMA node ``n`` (derived from page placement).
    ``region_base``/``region_bytes`` delimit the (virtual) address range the
    stream touches, used by the PMU sampler to fabricate sample addresses.
    """

    object_id: int
    region_base: int
    region_bytes: int
    profile: StreamProfile
    weight: float
    node_fractions: np.ndarray
    #: True when every thread on a socket reads the *same* region (a shared
    #: object): one copy serves them all, so the stream sees the full L3
    #: rather than a per-thread share.
    shared: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.weight <= 1.0:
            raise WorkloadError(f"stream weight must be in (0, 1]: {self.weight}")
        nf = np.asarray(self.node_fractions, dtype=np.float64)
        if nf.ndim != 1 or nf.size == 0:
            raise WorkloadError("node_fractions must be a non-empty 1-D array")
        if np.any(nf < -1e-12) or abs(float(nf.sum()) - 1.0) > 1e-6:
            raise WorkloadError(f"node_fractions must be a distribution, got {nf}")
        if self.region_bytes <= 0:
            raise WorkloadError("region_bytes must be positive")
        object.__setattr__(self, "node_fractions", np.clip(nf, 0.0, 1.0))


@dataclass(frozen=True)
class EnginePhase:
    """A stationary phase: ``n_accesses`` spread over ``streams``."""

    name: str
    n_accesses: float
    compute_cycles_per_access: float
    streams: tuple[EngineStream, ...]

    def __post_init__(self) -> None:
        if self.n_accesses < 0:
            raise WorkloadError("n_accesses must be >= 0")
        if self.compute_cycles_per_access < 0:
            raise WorkloadError("compute_cycles_per_access must be >= 0")
        if self.n_accesses > 0:
            if not self.streams:
                raise WorkloadError(f"phase {self.name!r} has accesses but no streams")
            total = sum(s.weight for s in self.streams)
            if abs(total - 1.0) > 1e-6:
                raise WorkloadError(
                    f"phase {self.name!r}: stream weights sum to {total}, expected 1"
                )


@dataclass(frozen=True)
class ThreadProgram:
    """The phases one software thread executes, bound to logical CPU ``cpu``."""

    thread_id: int
    cpu: int
    phases: tuple[EnginePhase, ...]


@dataclass
class SampleBucket:
    """Aggregate of homogeneous accesses, ready for Poisson thinning.

    ``dst_node`` is meaningful for DRAM levels (the node whose controller
    served the access); for cache levels it equals the source node.
    """

    thread_id: int
    cpu: int
    src_node: int
    object_id: int
    region_base: int
    region_bytes: int
    level: MemLevel
    dst_node: int
    n_accesses: float
    mean_latency: float


@dataclass(frozen=True)
class BucketRates:
    """Columnar per-cycle access rates of one stationary span.

    One row per (thread, stream, level, dst) combination the span's solver
    resolved; ``rate[i]`` is accesses/cycle, so a slice of ``dt`` cycles
    contributes ``rate[i] * dt`` accesses at ``latency[i]``.  Shared by
    every :class:`IntervalRecord` sliced out of the span, so per-slice
    consumers (the PMU sampler's streaming path) can thin the whole row
    set with one vectorized draw instead of materializing buckets.
    """

    thread_id: np.ndarray
    cpu: np.ndarray
    src_node: np.ndarray
    object_id: np.ndarray
    region_base: np.ndarray
    region_bytes: np.ndarray
    level: np.ndarray
    dst_node: np.ndarray
    rate: np.ndarray
    latency: np.ndarray

    def __len__(self) -> int:
        return int(self.rate.shape[0])


@dataclass(frozen=True)
class IntervalRecord:
    """One monitoring interval emitted by the engine's streaming hook.

    Produced only when a listener is attached (see
    :meth:`ExecutionEngine.run`); the batch path never builds these.
    ``node_bytes[d]`` is DRAM traffic served by node ``d`` during the
    interval; ``channel_bytes`` the per-directed-channel share of it.
    """

    index: int
    start_cycle: float
    duration_cycles: float
    node_bytes: np.ndarray
    channel_bytes: dict[Channel, float]
    rates: BucketRates

    @property
    def end_cycle(self) -> float:
        return self.start_cycle + self.duration_cycles

    def buckets(self) -> list[SampleBucket]:
        """Materialize this interval's accesses as sample buckets."""
        r = self.rates
        counts = r.rate * self.duration_cycles
        return [
            SampleBucket(
                thread_id=int(r.thread_id[i]),
                cpu=int(r.cpu[i]),
                src_node=int(r.src_node[i]),
                object_id=int(r.object_id[i]),
                region_base=int(r.region_base[i]),
                region_bytes=int(r.region_bytes[i]),
                level=MemLevel(int(r.level[i])),
                dst_node=int(r.dst_node[i]),
                n_accesses=float(counts[i]),
                mean_latency=float(r.latency[i]),
            )
            for i in range(len(r))
            if counts[i] > 0
        ]


@dataclass(frozen=True)
class PhaseTiming:
    """Wall-clock (cycle) extent of one named phase across all threads."""

    name: str
    start_cycle: float
    end_cycle: float

    @property
    def duration_cycles(self) -> float:
        return self.end_cycle - self.start_cycle


@dataclass
class RunResult:
    """Everything the profiler and evaluation harness need from one run."""

    topology: NumaTopology
    total_cycles: float
    thread_finish_cycles: dict[int, float]
    phase_timings: list[PhaseTiming]
    buckets: list[SampleBucket]
    memctrl: MemoryControllerSet
    interconnect: InterconnectFabric
    #: Extra stall injected per access (profiling overhead model), cycles.
    extra_stall_cycles: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.topology.cycles_to_seconds(self.total_cycles)

    def channel_bytes(self) -> dict[Channel, float]:
        """Cumulative traffic per remote channel."""
        return {c: self.interconnect.total_bytes(c) for c in self.interconnect.channels}

    def phase_cycles(self, name: str) -> float:
        """Total cycles spent in phases named ``name`` (summed over repeats)."""
        return sum(t.duration_cycles for t in self.phase_timings if t.name == name)


@dataclass
class _ThreadState:
    program: ThreadProgram
    phase_idx: int = 0
    remaining: float = 0.0
    finish_cycle: float = 0.0

    def current_phase(self) -> EnginePhase | None:
        if self.phase_idx >= len(self.program.phases):
            return None
        return self.program.phases[self.phase_idx]


@dataclass
class _StreamCtx:
    """Per-interval resolved state of one (thread, stream) pair."""

    state: _ThreadState
    stream: EngineStream
    src_node: int
    fractions: dict[MemLevel, float]
    dram_bytes_per_access: float
    mlp: float
    traffic_coeff: np.ndarray = field(default_factory=lambda: np.zeros(0))
    flow_ids: dict[int, int] = field(default_factory=dict)  # dst node -> flow idx


class ExecutionEngine:
    """Runs thread programs to completion on a simulated NUMA machine."""

    def __init__(
        self,
        topology: NumaTopology,
        latency_model: LatencyModel | None = None,
        cache_model: CacheModel | None = None,
        barriers: bool = True,
        link_capacity_overrides: dict[Channel, float] | None = None,
        history_limit: int | None = None,
    ) -> None:
        self.topology = topology
        self.latency_model = latency_model or LatencyModel()
        self.cache_model = cache_model or CacheModel()
        self.barriers = barriers
        self._link_overrides = link_capacity_overrides
        #: Retention cap for raw per-interval utilization records on the
        #: run's memory controllers and interconnect fabric (``None`` uses
        #: their shared default) — running aggregates are never capped.
        self.history_limit = (
            history_limit if history_limit is not None else DEFAULT_HISTORY_LIMIT
        )

    # -- public API -----------------------------------------------------------

    def run(
        self,
        programs: list[ThreadProgram],
        extra_stall_cycles_per_access: float = 0.0,
        interval_listener=None,
        interval_max_cycles: float | None = None,
    ) -> RunResult:
        """Execute ``programs`` and return the full run record.

        ``extra_stall_cycles_per_access`` injects a uniform per-access slowdown
        used by the profiling-overhead model (Table VII): sampling interrupts
        and allocation interception steal cycles from every thread.

        ``interval_listener``, when given, is called with an
        :class:`IntervalRecord` for every monitoring interval *while the run
        executes* — the streaming hook live monitoring builds on.  The system
        is stationary between phase completions, so slicing a span at
        ``interval_max_cycles`` (when set) only refines reporting
        granularity: per-slice traffic and access counts are exact linear
        shares of the span, and the batch-path accounting (buckets,
        utilization histories, timings) is untouched.  Listener exceptions
        propagate and abort the run.
        """
        tel = get_telemetry()
        with tel.span("engine.run", n_threads=len(programs)) as sp:
            result = self._run(
                programs,
                extra_stall_cycles_per_access,
                interval_listener=interval_listener,
                interval_max_cycles=interval_max_cycles,
            )
            if tel.enabled:
                n_intervals = result.memctrl.n_intervals
                sp.set(
                    intervals=n_intervals,
                    total_cycles=round(result.total_cycles, 1),
                )
                tel.metrics.counter("engine.runs").inc()
                tel.metrics.counter("engine.intervals").inc(n_intervals)
                logger.debug(
                    "engine run: %d threads, %d intervals, %.0f cycles",
                    len(programs), n_intervals, result.total_cycles,
                )
            return result

    def _run(
        self,
        programs: list[ThreadProgram],
        extra_stall_cycles_per_access: float,
        interval_listener=None,
        interval_max_cycles: float | None = None,
    ) -> RunResult:
        if interval_max_cycles is not None and interval_max_cycles <= 0:
            raise SimulationError(
                f"interval_max_cycles must be positive, got {interval_max_cycles}"
            )
        if not programs:
            raise SimulationError("no thread programs to run")
        seen = set()
        for p in programs:
            if p.thread_id in seen:
                raise SimulationError(f"duplicate thread id {p.thread_id}")
            seen.add(p.thread_id)
            if not 0 <= p.cpu < self.topology.n_cpus:
                raise SimulationError(f"thread {p.thread_id} bound to bad cpu {p.cpu}")

        memctrl = MemoryControllerSet(self.topology, history_limit=self.history_limit)
        fabric = InterconnectFabric(
            self.topology, self._link_overrides, history_limit=self.history_limit
        )

        states = [_ThreadState(program=p) for p in programs]
        for st in states:
            self._enter_phase(st)

        now = 0.0
        bucket_acc: dict[tuple, list[float]] = {}
        phase_spans: dict[tuple[int, str], list[float]] = {}  # (group, name) -> [start, end]
        guard = 0
        max_events = sum(len(p.phases) for p in programs) * 4 + 64
        interval_index = 0

        while True:
            runnable = self._runnable(states)
            if not runnable:
                if all(st.current_phase() is None for st in states):
                    break
                raise SimulationError("deadlock: unfinished threads but none runnable")

            ctxs, rates = self._solve_interval(runnable, extra_stall_cycles_per_access)

            # Time to the next phase completion among runnable threads.
            dts = [
                st.remaining / max(rate, _EPS)
                for st, rate in zip(runnable, rates)
            ]
            dt = min(dts)
            if not math.isfinite(dt) or dt < 0:
                raise SimulationError(f"bad interval length {dt}")
            dt = max(dt, _EPS)

            self._record_interval(
                now, dt, runnable, rates, ctxs, memctrl, fabric, bucket_acc, phase_spans
            )
            if interval_listener is not None:
                interval_index = self._emit_intervals(
                    interval_listener,
                    interval_index,
                    now,
                    dt,
                    runnable,
                    rates,
                    ctxs,
                    fabric,
                    interval_max_cycles,
                )

            now += dt
            for st, rate in zip(runnable, rates):
                st.remaining -= rate * dt
                if st.remaining <= _EPS * max(1.0, rate * dt):
                    st.remaining = 0.0
                    st.finish_cycle = now
                    st.phase_idx += 1
                    self._enter_phase(st)

            guard += 1
            if guard > max_events:
                raise SimulationError("engine exceeded its event budget")

        return RunResult(
            topology=self.topology,
            total_cycles=now,
            thread_finish_cycles={st.program.thread_id: st.finish_cycle for st in states},
            phase_timings=self._phase_timings(phase_spans),
            buckets=self._finalize_buckets(bucket_acc),
            memctrl=memctrl,
            interconnect=fabric,
            extra_stall_cycles=extra_stall_cycles_per_access,
        )

    # -- scheduling -------------------------------------------------------------

    def _enter_phase(self, st: _ThreadState) -> None:
        """Load the next non-empty phase's work counter (skipping empty ones)."""
        while True:
            phase = st.current_phase()
            if phase is None:
                return
            if phase.n_accesses > 0:
                st.remaining = phase.n_accesses
                return
            st.phase_idx += 1

    def _runnable(self, states: list[_ThreadState]) -> list[_ThreadState]:
        alive = [st for st in states if st.current_phase() is not None]
        if not alive:
            return []
        if not self.barriers:
            return alive
        group = min(st.phase_idx for st in alive)
        return [st for st in alive if st.phase_idx == group]

    # -- the stationary-interval solver ---------------------------------------

    def _solve_interval(
        self,
        runnable: list[_ThreadState],
        extra_stall: float,
    ) -> tuple[list[list[_StreamCtx]], list[float]]:
        topo = self.topology
        n_nodes = topo.n_sockets

        # Cache sharing: private L1/L2 split between active SMT siblings,
        # L3 split between active threads on the socket.
        core_load: dict[int, int] = {}
        socket_load: dict[int, int] = {}
        for st in runnable:
            core = topo.core_of_cpu(st.program.cpu)
            node = topo.node_of_cpu(st.program.cpu)
            core_load[core] = core_load.get(core, 0) + 1
            socket_load[node] = socket_load.get(node, 0) + 1

        ctxs: list[list[_StreamCtx]] = []
        for st in runnable:
            phase = st.current_phase()
            assert phase is not None
            core = topo.core_of_cpu(st.program.cpu)
            node = topo.node_of_cpu(st.program.cpu)
            caches = EffectiveCaches(
                l1_bytes=topo.l1.size_bytes / core_load[core],
                l2_bytes=topo.l2.size_bytes / core_load[core],
                l3_bytes=topo.l3.size_bytes / max(1, socket_load[node]),
            )
            # A thread's private streams compete for its cache share in
            # proportion to their footprints (29 equal arrays each get 1/29
            # of the share, not the whole of it).  Shared streams see the
            # full socket L3 — one resident copy serves every thread.
            private_ws = sum(
                s.profile.working_set_bytes for s in phase.streams if not s.shared
            )
            per_thread: list[_StreamCtx] = []
            for stream in phase.streams:
                if stream.shared:
                    stream_caches = EffectiveCaches(
                        l1_bytes=caches.l1_bytes,
                        l2_bytes=caches.l2_bytes,
                        l3_bytes=float(topo.l3.size_bytes),
                    )
                else:
                    frac = (
                        stream.profile.working_set_bytes / private_ws
                        if private_ws > 0
                        else 1.0
                    )
                    stream_caches = EffectiveCaches(
                        l1_bytes=max(caches.l1_bytes * frac, 1.0),
                        l2_bytes=max(caches.l2_bytes * frac, 1.0),
                        l3_bytes=max(caches.l3_bytes * frac, 1.0),
                    )
                lf = self.cache_model.level_fractions(stream.profile, stream_caches)
                fr = self._localize(lf.fractions, stream.node_fractions, node)
                per_thread.append(
                    _StreamCtx(
                        state=st,
                        stream=stream,
                        src_node=node,
                        fractions=fr,
                        dram_bytes_per_access=lf.dram_bytes_per_access,
                        mlp=lf.mlp,
                    )
                )
            ctxs.append(per_thread)

        # Flow table: one flow per (thread, stream, dst node) with traffic.
        fabric_channels = topo.remote_channels()
        ch_index = {c: i for i, c in enumerate(fabric_channels)}
        n_links = len(fabric_channels)
        capacities = np.concatenate(
            [
                np.full(n_nodes, topo.dram_bw_bytes_per_cycle),
                np.full(n_links, topo.link_bw_bytes_per_cycle),
            ]
        )
        if self._link_overrides:
            for ch, cap in self._link_overrides.items():
                capacities[n_nodes + ch_index[ch]] = cap

        usage: list[tuple[int, ...]] = []
        coeff_rows: list[tuple[int, float]] = []  # (thread idx, bytes/access-of-thread)
        for t_idx, per_thread in enumerate(ctxs):
            for ctx in per_thread:
                nf = ctx.stream.node_fractions
                coeffs = np.zeros(n_nodes)
                for dst in range(n_nodes):
                    traffic = ctx.stream.weight * ctx.dram_bytes_per_access * nf[dst]
                    if traffic <= _EPS:
                        continue
                    res = [dst]
                    if dst != ctx.src_node:
                        res.append(n_nodes + ch_index[Channel(ctx.src_node, dst)])
                    ctx.flow_ids[dst] = len(usage)
                    usage.append(tuple(res))
                    coeff_rows.append((t_idx, traffic))
                    coeffs[dst] = traffic
                ctx.traffic_coeff = coeffs

        n_flows = len(usage)
        flow_thread = np.array([t for t, _ in coeff_rows], dtype=np.int64)
        flow_coeff = np.array([c for _, c in coeff_rows], dtype=np.float64)

        # Uncontended starting point.
        rates = np.array(
            [self._thread_rate(per, np.zeros(n_nodes), np.zeros(n_links), ch_index, extra_stall)
             for per in ctxs]
        )
        mc_rho = np.zeros(n_nodes)
        link_rho = np.zeros(n_links)

        for _ in range(_RATE_ITERATIONS):
            if n_flows:
                demands = rates[flow_thread] * flow_coeff
                sol = solve_max_min(
                    FairnessProblem(demands=demands, usage=usage, capacities=capacities)
                )
                mc_rho = sol.utilization[:n_nodes]
                link_rho = sol.utilization[n_nodes:]
                throttle = sol.throttle(demands)
                # A thread advances no faster than its most-throttled flow.
                cap = np.full(len(ctxs), np.inf)
                np.minimum.at(cap, flow_thread, np.where(throttle > 0, throttle, _EPS))
                rate_cap = rates * np.where(np.isfinite(cap), cap, 1.0)
            else:
                rate_cap = rates.copy()

            new_rates = np.array(
                [
                    min(
                        self._thread_rate(per, mc_rho, link_rho, ch_index, extra_stall),
                        rate_cap[i] if rate_cap[i] > 0 else _EPS,
                    )
                    for i, per in enumerate(ctxs)
                ]
            )
            rates = _RATE_DAMPING * rates + (1.0 - _RATE_DAMPING) * new_rates

        # Attach final latencies per (stream, level, dst) for bucket recording.
        for per_thread in ctxs:
            for ctx in per_thread:
                ctx_lat = self._stream_latencies(ctx, mc_rho, link_rho, ch_index)
                ctx.latencies = ctx_lat  # type: ignore[attr-defined]

        return ctxs, [float(r) for r in rates]

    def _localize(
        self,
        fractions: dict[MemLevel, float],
        node_fractions: np.ndarray,
        src_node: int,
    ) -> dict[MemLevel, float]:
        """Split the DRAM fraction into local/remote by page placement."""
        out = dict(fractions)
        dram = out.pop(MemLevel.LOCAL_DRAM, 0.0) + out.pop(MemLevel.REMOTE_DRAM, 0.0)
        local = float(node_fractions[src_node]) if src_node < node_fractions.size else 0.0
        out[MemLevel.LOCAL_DRAM] = dram * local
        out[MemLevel.REMOTE_DRAM] = dram * (1.0 - local)
        return out

    def _stream_latencies(
        self,
        ctx: _StreamCtx,
        mc_rho: np.ndarray,
        link_rho: np.ndarray,
        ch_index: dict[Channel, int],
    ) -> dict[tuple[MemLevel, int], float]:
        """Median latency per (level, dst node) under current utilizations."""
        lm = self.latency_model
        src = ctx.src_node
        is_random = ctx.stream.profile.kind is PatternKind.RANDOM
        out: dict[tuple[MemLevel, int], float] = {}
        for lvl, frac in ctx.fractions.items():
            if frac <= 0:
                continue
            if lvl is MemLevel.LOCAL_DRAM:
                out[(lvl, src)] = lm.effective_latency(
                    lvl, mc_rho=float(mc_rho[src]), random_access=is_random
                )
            elif lvl is MemLevel.REMOTE_DRAM:
                nf = ctx.stream.node_fractions
                for dst in range(nf.size):
                    if dst == src or nf[dst] <= 0:
                        continue
                    li = ch_index[Channel(src, dst)]
                    out[(lvl, dst)] = lm.effective_latency(
                        lvl,
                        mc_rho=float(mc_rho[dst]),
                        link_rho=float(link_rho[li]),
                        random_access=is_random,
                    )
            else:
                out[(lvl, src)] = lm.base_latency(lvl)
        return out

    def _thread_rate(
        self,
        per_thread: list[_StreamCtx],
        mc_rho: np.ndarray,
        link_rho: np.ndarray,
        ch_index: dict[Channel, int],
        extra_stall: float,
    ) -> float:
        """Issue rate (accesses/cycle) of one thread at given utilizations."""
        phase = per_thread[0].state.current_phase()
        assert phase is not None
        stall = 0.0
        for ctx in per_thread:
            lats = self._stream_latencies(ctx, mc_rho, link_rho, ch_index)
            src = ctx.src_node
            nf = ctx.stream.node_fractions
            remote_total = 1.0 - float(nf[src])
            s = 0.0
            for lvl, frac in ctx.fractions.items():
                if frac <= 0:
                    continue
                if lvl is MemLevel.REMOTE_DRAM:
                    # Average remote latency over target nodes.
                    lat = 0.0
                    for dst in range(nf.size):
                        if dst == src or nf[dst] <= 0:
                            continue
                        lat += (nf[dst] / max(remote_total, _EPS)) * lats[(lvl, dst)]
                else:
                    lat = lats[(lvl, src if lvl is not MemLevel.LOCAL_DRAM else src)]
                s += frac * lat
            stall += ctx.stream.weight * s / ctx.mlp
        denom = phase.compute_cycles_per_access + stall + extra_stall
        if denom <= 0:
            raise SimulationError("thread with zero cost per access")
        return 1.0 / denom

    # -- recording ----------------------------------------------------------------

    def _record_interval(
        self,
        now: float,
        dt: float,
        runnable: list[_ThreadState],
        rates: list[float],
        ctxs: list[list[_StreamCtx]],
        memctrl: MemoryControllerSet,
        fabric: InterconnectFabric,
        bucket_acc: dict[tuple, list[float]],
        phase_spans: dict[tuple[int, str], list[float]],
    ) -> None:
        topo = self.topology
        n_nodes = topo.n_sockets
        node_bytes = np.zeros(n_nodes)
        chan_bytes = np.zeros(len(fabric))

        for st, rate, per_thread in zip(runnable, rates, ctxs):
            phase = st.current_phase()
            assert phase is not None
            key = (st.phase_idx, phase.name)
            span = phase_spans.setdefault(key, [now, now + dt])
            span[0] = min(span[0], now)
            span[1] = max(span[1], now + dt)

            accesses = rate * dt
            for ctx in per_thread:
                lats = getattr(ctx, "latencies")
                stream_accesses = accesses * ctx.stream.weight
                nf = ctx.stream.node_fractions
                src = ctx.src_node
                remote_total = 1.0 - float(nf[src])
                # Traffic accounting.
                for dst in range(n_nodes):
                    traffic = ctx.traffic_coeff[dst] * rate * dt
                    if traffic <= 0:
                        continue
                    node_bytes[dst] += traffic
                    if dst != src:
                        chan_bytes[fabric.index_of(Channel(src, dst))] += traffic
                # Sample buckets.
                for lvl, frac in ctx.fractions.items():
                    if frac <= 0:
                        continue
                    if lvl is MemLevel.REMOTE_DRAM:
                        for dst in range(n_nodes):
                            if dst == src or nf[dst] <= 0:
                                continue
                            cnt = stream_accesses * frac * nf[dst] / max(remote_total, _EPS)
                            self._accumulate(
                                bucket_acc, st, ctx, lvl, dst, cnt, lats[(lvl, dst)]
                            )
                    else:
                        cnt = stream_accesses * frac
                        self._accumulate(
                            bucket_acc, st, ctx, lvl, src, cnt, lats[(lvl, src)]
                        )

        memctrl.record_interval(now, dt, node_bytes)
        fabric.record_interval(now, dt, chan_bytes)

    # -- the streaming hook -----------------------------------------------------

    def _emit_intervals(
        self,
        listener,
        index: int,
        start: float,
        span: float,
        runnable: list[_ThreadState],
        rates: list[float],
        ctxs: list[list[_StreamCtx]],
        fabric: InterconnectFabric,
        max_cycles: float | None,
    ) -> int:
        """Slice one stationary span into monitoring intervals.

        The solver ran once for the whole span; slices share one
        :class:`BucketRates` table, so each emission is a handful of
        vectorized scalings — cheap enough to leave the listener attached
        on production-length runs.
        """
        bucket_rates, node_rate, chan_rate = self._span_rates(runnable, rates, ctxs, fabric)
        n_slices = 1
        if max_cycles is not None:
            n_slices = max(1, math.ceil(span / max_cycles))
            if n_slices > 100_000:
                raise SimulationError(
                    f"interval_max_cycles={max_cycles} slices a {span:.3g}-cycle "
                    "span into too many intervals"
                )
        dt = span / n_slices
        channels = fabric.channels
        for k in range(n_slices):
            chan_bytes = chan_rate * dt
            listener(
                IntervalRecord(
                    index=index,
                    start_cycle=start + k * dt,
                    duration_cycles=dt,
                    node_bytes=node_rate * dt,
                    channel_bytes={
                        ch: float(v) for ch, v in zip(channels, chan_bytes)
                    },
                    rates=bucket_rates,
                )
            )
            index += 1
        return index

    def _span_rates(
        self,
        runnable: list[_ThreadState],
        rates: list[float],
        ctxs: list[list[_StreamCtx]],
        fabric: InterconnectFabric,
    ) -> tuple[BucketRates, np.ndarray, np.ndarray]:
        """Per-cycle access and traffic rates of the current stationary span."""
        n_nodes = self.topology.n_sockets
        node_rate = np.zeros(n_nodes)
        chan_rate = np.zeros(len(fabric))
        cols: dict[str, list] = {
            name: []
            for name in (
                "thread_id", "cpu", "src_node", "object_id",
                "region_base", "region_bytes", "level", "dst_node",
                "rate", "latency",
            )
        }

        def add_row(st: _ThreadState, ctx: _StreamCtx, level: MemLevel,
                    dst: int, rate: float, latency: float) -> None:
            if rate <= 0:
                return
            cols["thread_id"].append(st.program.thread_id)
            cols["cpu"].append(st.program.cpu)
            cols["src_node"].append(ctx.src_node)
            cols["object_id"].append(ctx.stream.object_id)
            cols["region_base"].append(ctx.stream.region_base)
            cols["region_bytes"].append(ctx.stream.region_bytes)
            cols["level"].append(int(level))
            cols["dst_node"].append(dst)
            cols["rate"].append(rate)
            cols["latency"].append(latency)

        for st, rate, per_thread in zip(runnable, rates, ctxs):
            for ctx in per_thread:
                lats = getattr(ctx, "latencies")
                stream_rate = rate * ctx.stream.weight
                nf = ctx.stream.node_fractions
                src = ctx.src_node
                remote_total = 1.0 - float(nf[src])
                for dst in range(n_nodes):
                    traffic = ctx.traffic_coeff[dst] * rate
                    if traffic <= 0:
                        continue
                    node_rate[dst] += traffic
                    if dst != src:
                        chan_rate[fabric.index_of(Channel(src, dst))] += traffic
                for lvl, frac in ctx.fractions.items():
                    if frac <= 0:
                        continue
                    if lvl is MemLevel.REMOTE_DRAM:
                        for dst in range(n_nodes):
                            if dst == src or nf[dst] <= 0:
                                continue
                            r = stream_rate * frac * nf[dst] / max(remote_total, _EPS)
                            add_row(st, ctx, lvl, dst, r, lats[(lvl, dst)])
                    else:
                        add_row(st, ctx, lvl, src, stream_rate * frac, lats[(lvl, src)])

        int_cols = (
            "thread_id", "cpu", "src_node", "object_id",
            "region_base", "region_bytes", "level", "dst_node",
        )
        return (
            BucketRates(
                **{c: np.asarray(cols[c], dtype=np.int64) for c in int_cols},
                rate=np.asarray(cols["rate"], dtype=np.float64),
                latency=np.asarray(cols["latency"], dtype=np.float64),
            ),
            node_rate,
            chan_rate,
        )

    @staticmethod
    def _accumulate(
        bucket_acc: dict[tuple, list[float]],
        st: _ThreadState,
        ctx: _StreamCtx,
        level: MemLevel,
        dst: int,
        count: float,
        latency: float,
    ) -> None:
        if count <= 0:
            return
        # Quarter-octave latency bins keep contended vs calm intervals
        # distinguishable without unbounded bucket growth.
        lat_bin = int(round(4.0 * math.log2(max(latency, 1.0))))
        key = (
            st.program.thread_id,
            st.program.cpu,
            ctx.src_node,
            ctx.stream.object_id,
            ctx.stream.region_base,
            ctx.stream.region_bytes,
            int(level),
            dst,
            lat_bin,
        )
        acc = bucket_acc.setdefault(key, [0.0, 0.0])
        acc[0] += count
        acc[1] += count * latency

    @staticmethod
    def _finalize_buckets(bucket_acc: dict[tuple, list[float]]) -> list[SampleBucket]:
        buckets = []
        for key, (count, lat_sum) in sorted(bucket_acc.items()):
            tid, cpu, src, obj, base, size, lvl, dst, _ = key
            buckets.append(
                SampleBucket(
                    thread_id=tid,
                    cpu=cpu,
                    src_node=src,
                    object_id=obj,
                    region_base=base,
                    region_bytes=size,
                    level=MemLevel(lvl),
                    dst_node=dst,
                    n_accesses=count,
                    mean_latency=lat_sum / count,
                )
            )
        return buckets

    @staticmethod
    def _phase_timings(phase_spans: dict[tuple[int, str], list[float]]) -> list[PhaseTiming]:
        return [
            PhaseTiming(name=name, start_cycle=span[0], end_cycle=span[1])
            for (_, name), span in sorted(phase_spans.items())
        ]
