"""The :class:`Machine` facade.

Bundles a topology, a latency model, and an analytical cache model into the
single object the rest of the library passes around, and exposes ``run`` for
executing compiled thread programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.numasim.cachemodel import CacheModel
from repro.numasim.engine import ExecutionEngine, RunResult, ThreadProgram
from repro.numasim.latency import LatencyModel
from repro.numasim.topology import NumaTopology
from repro.types import Channel

__all__ = ["Machine"]


@dataclass
class Machine:
    """A simulated NUMA machine (defaults mirror the paper's E5-4650 box)."""

    topology: NumaTopology = field(default_factory=NumaTopology)
    latency_model: LatencyModel = field(default_factory=LatencyModel)
    cache_model: CacheModel = field(default_factory=CacheModel)
    #: Optional per-channel capacity overrides (asymmetric interconnects).
    link_capacity_overrides: dict[Channel, float] | None = None
    #: Retention cap for raw per-interval utilization records (``None``
    #: uses the engine default); running aggregates are never capped.
    history_limit: int | None = None

    def engine(self, barriers: bool = True) -> ExecutionEngine:
        """Build an execution engine for this machine."""
        return ExecutionEngine(
            topology=self.topology,
            latency_model=self.latency_model,
            cache_model=self.cache_model,
            barriers=barriers,
            link_capacity_overrides=self.link_capacity_overrides,
            history_limit=self.history_limit,
        )

    def run(
        self,
        programs: list[ThreadProgram],
        barriers: bool = True,
        extra_stall_cycles_per_access: float = 0.0,
        interval_listener=None,
        interval_max_cycles: float | None = None,
    ) -> RunResult:
        """Execute ``programs`` on this machine and return the run record.

        ``interval_listener`` / ``interval_max_cycles`` forward to the
        engine's streaming hook (see :meth:`ExecutionEngine.run`).
        """
        return self.engine(barriers=barriers).run(
            programs,
            extra_stall_cycles_per_access=extra_stall_cycles_per_access,
            interval_listener=interval_listener,
            interval_max_cycles=interval_max_cycles,
        )
