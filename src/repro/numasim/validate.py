"""Cross-validation of the analytical cache model against exact traces.

The fast engine path trusts :mod:`repro.numasim.cachemodel`'s closed-form
hit fractions.  This module generates *actual address traces* for each
access pattern and pushes them through the exact set-associative
hierarchy of :mod:`repro.numasim.cache`, so the two models can be
compared on the statistic that matters to DR-BW: the per-level access
mix.

Used by the test suite as a regression harness on the analytical
formulas (``tests/numasim/test_validate.py``) and available to users who
tweak :class:`~repro.numasim.cachemodel.CacheModel` parameters and want
to re-anchor them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.numasim.cache import CacheHierarchy
from repro.numasim.cachemodel import CacheModel, EffectiveCaches, PatternKind, StreamProfile
from repro.numasim.topology import CacheSpec
from repro.types import CACHE_LINE_BYTES, MemLevel

__all__ = ["TraceMixComparison", "generate_trace", "compare_against_exact"]


def generate_trace(
    profile: StreamProfile,
    base: int = 0,
    n_accesses: int | None = None,
    seed: int = 0,
) -> np.ndarray:
    """Byte-address trace realizing ``profile`` over ``[base, base+W)``.

    ``n_accesses`` defaults to ``passes`` full traversals for streaming
    patterns and ``passes * W / element`` references for random ones.
    """
    rng = np.random.default_rng(seed)
    ws = profile.working_set_bytes
    if profile.kind is PatternKind.SEQUENTIAL:
        step = profile.element_bytes
        one_pass = np.arange(0, ws - step + 1, step, dtype=np.int64)
        passes = max(int(round(profile.passes)), 1)
        trace = np.tile(one_pass, passes)
    elif profile.kind is PatternKind.STRIDED:
        step = int(profile.stride_bytes or profile.element_bytes)
        one_pass = np.arange(0, ws - 1, step, dtype=np.int64)
        passes = max(int(round(profile.passes)), 1)
        trace = np.tile(one_pass, passes)
    elif profile.kind is PatternKind.RANDOM:
        n = n_accesses or max(int(profile.passes * ws / profile.element_bytes), 1)
        slots = ws // profile.element_bytes
        trace = rng.integers(0, slots, size=n, dtype=np.int64) * profile.element_bytes
    elif profile.kind is PatternKind.POINTER_CHASE:
        # Same-set conflict chain, as the bandit builds it.
        raise WorkloadError(
            "pointer-chase traces come from repro.workloads.bandit."
            "build_chase_addresses (they need the cache geometry)"
        )
    else:  # pragma: no cover - exhaustive over PatternKind
        raise WorkloadError(f"unknown pattern {profile.kind}")
    if n_accesses is not None:
        trace = trace[:n_accesses]
    return base + trace


@dataclass(frozen=True)
class TraceMixComparison:
    """Analytical vs exact per-level access mixes for one profile."""

    profile: StreamProfile
    analytical: dict[MemLevel, float]
    exact: dict[MemLevel, float]

    def dram_gap(self) -> float:
        """Absolute gap in the *line-fetch* (DRAM traffic) fraction.

        The two LFB semantics differ: the analytical model books
        prefetch-hidden line fetches as LFB, so its fetch fraction is
        ``LFB + DRAM``; the exact simulator books same-line hits on an
        in-flight fill as LFB (those are spatial hits, not fetches), so
        its fetch fraction is the DRAM levels alone.
        """
        a = sum(
            self.analytical.get(k, 0.0)
            for k in (MemLevel.LFB, MemLevel.LOCAL_DRAM, MemLevel.REMOTE_DRAM)
        )
        e = sum(
            self.exact.get(k, 0.0)
            for k in (MemLevel.LOCAL_DRAM, MemLevel.REMOTE_DRAM)
        )
        return abs(a - e)

    def cache_gap(self) -> float:
        """Absolute gap in the cache-served (non-fetch) fraction.

        Symmetric to :meth:`dram_gap`: the exact simulator's LFB hits
        count as cache-served here (they are same-line spatial hits).
        """
        a = sum(
            self.analytical.get(k, 0.0)
            for k in (MemLevel.L1, MemLevel.L2, MemLevel.L3)
        )
        e = sum(
            self.exact.get(k, 0.0)
            for k in (MemLevel.L1, MemLevel.L2, MemLevel.L3, MemLevel.LFB)
        )
        return abs(a - e)


def compare_against_exact(
    profile: StreamProfile,
    l1: CacheSpec | None = None,
    l2: CacheSpec | None = None,
    l3: CacheSpec | None = None,
    model: CacheModel | None = None,
    max_trace: int = 200_000,
    seed: int = 0,
) -> TraceMixComparison:
    """Run ``profile`` both ways and return the two level mixes.

    Cache specs default to a scaled-down hierarchy (4 KiB / 32 KiB /
    256 KiB) so traces stay short; the analytical model receives the same
    effective capacities, making the comparison apples-to-apples.
    """
    l1 = l1 or CacheSpec(4 * 1024, CACHE_LINE_BYTES, 8)
    l2 = l2 or CacheSpec(32 * 1024, CACHE_LINE_BYTES, 8)
    l3 = l3 or CacheSpec(256 * 1024, CACHE_LINE_BYTES, 16)
    model = model or CacheModel()

    caches = EffectiveCaches(
        l1_bytes=float(l1.size_bytes),
        l2_bytes=float(l2.size_bytes),
        l3_bytes=float(l3.size_bytes),
    )
    analytical = model.level_fractions(profile, caches).fractions

    trace = generate_trace(profile, seed=seed)
    if trace.size > max_trace:
        raise WorkloadError(
            f"trace of {trace.size} accesses exceeds max_trace={max_trace}; "
            "shrink the working set or pass a larger budget"
        )
    hier = CacheHierarchy(l1, l2, l3)
    levels = hier.run_trace(trace)
    counts = np.bincount(levels, minlength=max(MemLevel) + 1)
    exact = {
        lvl: float(counts[int(lvl)]) / trace.size
        for lvl in MemLevel
        if counts[int(lvl)]
    }
    return TraceMixComparison(profile=profile, analytical=dict(analytical), exact=exact)
