"""Memory access latency model.

Base (uncontended) latencies follow measured numbers for SandyBridge-EP
class machines: a handful of cycles for L1, tens for L3, ~200 cycles for
local DRAM and ~1.55× that for one-hop remote DRAM.  Under load, a memory
controller or interconnect channel behaves like a queueing server: the
sojourn time grows as utilization ``rho`` approaches 1.  We use the classic
M/M/1 waiting-time shape ``base * rho / (1 - rho)`` with a hard cap so a
saturated resource inflates latency by at most ``max_inflation``.

The *distribution* of sampled latencies matters to DR-BW — five of the
thirteen Table I features are "ratio of samples with latency above T".
We therefore expose a lognormal sampler whose median equals the modeled
latency; its shape parameter reproduces the heavy right tail PEBS shows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.types import Channel, MemLevel

__all__ = ["LatencyModel", "LatencyTable", "queueing_delay_factor"]


def queueing_delay_factor(rho: float | np.ndarray, max_inflation: float = 20.0) -> float | np.ndarray:
    """Multiplicative latency inflation for a resource at utilization ``rho``.

    Returns ``1 + rho/(1-rho)`` capped at ``max_inflation``; utilizations at
    or above 1 saturate at the cap.  Vectorized over numpy arrays.
    """
    rho_arr = np.asarray(rho, dtype=np.float64)
    safe = np.clip(rho_arr, 0.0, 1.0 - 1e-9)
    factor = 1.0 + safe / (1.0 - safe)
    result = np.minimum(factor, max_inflation)
    if np.isscalar(rho) or (isinstance(rho, np.ndarray) and rho.ndim == 0):
        return float(result)
    return result


@dataclass(frozen=True)
class LatencyModel:
    """Per-level base latencies (cycles) plus contention inflation rules.

    ``base[level]`` is the uncontended load-to-use latency.  DRAM levels are
    split into a fixed *pipeline* portion (row access, on-die traversal) and
    a *queueable* portion (memory-controller service; plus link transfer for
    remote accesses) — only the queueable portion inflates under load.
    """

    base: dict[MemLevel, float] = field(
        default_factory=lambda: {
            MemLevel.L1: 4.0,
            MemLevel.L2: 12.0,
            MemLevel.L3: 40.0,
            MemLevel.LFB: 60.0,
            MemLevel.LOCAL_DRAM: 200.0,
            MemLevel.REMOTE_DRAM: 310.0,
        }
    )
    #: Fraction of a DRAM access that queues behind the memory controller.
    mc_queue_fraction: float = 0.55
    #: Fraction of a *remote* access that queues behind the interconnect link.
    link_queue_fraction: float = 0.25
    #: Queueing-delay ceiling: saturated controllers plateau rather than
    #: diverge (row-buffer scheduling bounds worst-case sojourn times).
    max_inflation: float = 8.0
    #: Extra DRAM-latency multiplier for *random* access streams: they get
    #: no prefetch overlap and miss open DRAM rows, so the observed
    #: load-to-use latency exceeds a streaming access under equal load.
    random_access_penalty: float = 1.3
    #: Lognormal sigma of sampled latencies around the modeled median.
    #: PEBS latency distributions are wide and right-skewed; 0.4 gives a
    #: p95/median ratio of ~1.9, in line with measured DRAM-latency spreads.
    noise_sigma: float = 0.4

    def base_latency(self, level: MemLevel) -> float:
        """Uncontended latency for ``level`` in cycles."""
        return self.base[level]

    def effective_latency(
        self,
        level: MemLevel,
        mc_rho: float = 0.0,
        link_rho: float = 0.0,
        random_access: bool = False,
    ) -> float:
        """Modeled (median) latency in cycles under the given utilizations.

        ``mc_rho`` is the utilization of the target node's memory
        controller; ``link_rho`` the utilization of the crossed interconnect
        channel (ignored unless ``level`` is remote DRAM).  Cache levels
        never inflate — contention in this model is a main-memory
        phenomenon, matching the paper's focus.
        """
        base = self.base[level]
        if not level.is_dram:
            return base
        mc_factor = queueing_delay_factor(mc_rho, self.max_inflation)
        lat = base * (1.0 - self.mc_queue_fraction) + base * self.mc_queue_fraction * mc_factor
        if level is MemLevel.REMOTE_DRAM:
            link_factor = queueing_delay_factor(link_rho, self.max_inflation)
            # Shift part of the fixed portion into the link queue.
            fixed = lat - base * self.link_queue_fraction
            lat = fixed + base * self.link_queue_fraction * link_factor
        if random_access:
            lat *= self.random_access_penalty
        return lat

    def sample_latencies(
        self,
        median_cycles: float,
        n: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Draw ``n`` noisy latencies (cycles) with the given median.

        Lognormal with ``sigma = noise_sigma``: median-preserving, strictly
        positive, right-skewed like real PEBS latency distributions.
        """
        if n < 0:
            raise ValueError("n must be >= 0")
        if median_cycles <= 0:
            raise ValueError("median latency must be positive")
        if n == 0:
            return np.empty(0, dtype=np.float64)
        return median_cycles * rng.lognormal(mean=0.0, sigma=self.noise_sigma, size=n)


class LatencyTable:
    """Precomputed per-(src_node, dst_node, mem_level) latency constants.

    :meth:`LatencyModel.effective_latency` re-derives the pipeline/queue
    decomposition of every DRAM access on each call; the execution
    engine's columnar solver evaluates latencies for hundreds of rows per
    fixed-point iteration, so this table folds the per-level constants —
    ``pipe = base * (1 - mc_queue_fraction)``, ``mc_part = base *
    mc_queue_fraction``, ``link_part = base * link_queue_fraction`` — once
    at construction.  :meth:`lookup` recombines them with the *exact*
    floating-point operation order of ``effective_latency`` so the two are
    bit-identical for every valid (src, dst, level) triple and utilization
    (property-tested in ``tests/numasim/test_latency_table.py``).

    The table also carries the topology's directed-channel index so a
    remote (src, dst) pair resolves to its interconnect channel without
    rebuilding :class:`~repro.types.Channel` keys in hot loops.
    """

    def __init__(self, model: LatencyModel, topology) -> None:
        self.model = model
        self.n_nodes = int(topology.n_sockets)
        self._base: dict[MemLevel, float] = {}
        self._pipe: dict[MemLevel, float] = {}
        self._mc_part: dict[MemLevel, float] = {}
        self._link_part: dict[MemLevel, float] = {}
        for level, base in model.base.items():
            self._base[level] = base
            if level.is_dram:
                self._pipe[level] = base * (1.0 - model.mc_queue_fraction)
                self._mc_part[level] = base * model.mc_queue_fraction
                self._link_part[level] = base * model.link_queue_fraction
        self.channel_index: dict[Channel, int] = {
            c: i for i, c in enumerate(topology.remote_channels())
        }

    # -- constants for the engine's vectorized kernel ------------------------

    def base_of(self, level: MemLevel) -> float:
        """Uncontended base latency of ``level`` (== ``model.base_latency``)."""
        return self._base[level]

    def pipe(self, level: MemLevel) -> float:
        """Fixed (non-queueable) portion of a DRAM access at ``level``."""
        return self._pipe[level]

    def mc_part(self, level: MemLevel) -> float:
        """Portion of a DRAM access that queues at the memory controller."""
        return self._mc_part[level]

    def link_part(self, level: MemLevel) -> float:
        """Portion of a remote access that queues at the interconnect link."""
        return self._link_part[level]

    # -- scalar parity API ---------------------------------------------------

    def lookup(
        self,
        level: MemLevel,
        src: int,
        dst: int,
        mc_rho: float = 0.0,
        link_rho: float = 0.0,
        random_access: bool = False,
    ) -> float:
        """Latency of a ``src -> dst`` access at ``level``; bit-identical to
        :meth:`LatencyModel.effective_latency` under the same utilizations.

        Cache levels and local DRAM require ``src == dst``; remote DRAM
        requires ``src != dst`` (and a channel between the two nodes).
        """
        n = self.n_nodes
        if not (0 <= src < n and 0 <= dst < n):
            raise ValueError(f"node pair ({src}, {dst}) outside [0, {n})")
        if level is MemLevel.REMOTE_DRAM:
            if src == dst:
                raise ValueError("remote DRAM lookup needs src != dst")
        elif src != dst:
            raise ValueError(f"{level.name} lookup needs src == dst")
        base = self._base[level]
        if not level.is_dram:
            return base
        mc_factor = queueing_delay_factor(mc_rho, self.model.max_inflation)
        lat = self._pipe[level] + self._mc_part[level] * mc_factor
        if level is MemLevel.REMOTE_DRAM:
            link_factor = queueing_delay_factor(link_rho, self.model.max_inflation)
            link_part = self._link_part[level]
            lat = (lat - link_part) + link_part * link_factor
        if random_access:
            lat *= self.model.random_access_penalty
        return lat

    def rows(self) -> list[dict]:
        """Uncontended latencies for every valid (src, dst, level) triple.

        Sorted, JSON-ready rows — the shape the interval-level golden
        fixtures pin for two reference topologies.
        """
        out = []
        for level in sorted(self._base, key=int):
            for src in range(self.n_nodes):
                for dst in range(self.n_nodes):
                    remote = level is MemLevel.REMOTE_DRAM
                    if (src == dst) == remote:
                        continue
                    out.append(
                        {
                            "level": level.name,
                            "src": src,
                            "dst": dst,
                            "latency": float(self.lookup(level, src, dst)),
                        }
                    )
        return out
