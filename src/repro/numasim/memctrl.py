"""Per-node memory controllers.

Each NUMA node owns one memory controller with a fixed service capacity in
bytes/cycle.  The engine debits traffic into the controller per simulated
interval; the controller keeps a time-weighted utilization history that the
evaluation harness uses to report where contention occurred.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError, TopologyError
from repro.numasim.topology import NumaTopology

__all__ = ["MemoryControllerSet", "UtilizationRecord"]


@dataclass(frozen=True, slots=True)
class UtilizationRecord:
    """One interval's utilization of a bandwidth resource."""

    start_cycle: float
    duration_cycles: float
    utilization: float
    bytes_moved: float

    def __post_init__(self) -> None:
        if self.duration_cycles < 0 or self.bytes_moved < 0:
            raise SimulationError("negative interval duration or traffic")
        if not 0.0 <= self.utilization <= 1.0 + 1e-9:
            raise SimulationError(f"utilization out of range: {self.utilization}")


class MemoryControllerSet:
    """Bandwidth accounting for every node's memory controller."""

    def __init__(self, topology: NumaTopology) -> None:
        self.topology = topology
        self.capacity = topology.dram_bw_bytes_per_cycle
        self._bytes = np.zeros(topology.n_sockets, dtype=np.float64)
        self._busy_cycles = np.zeros(topology.n_sockets, dtype=np.float64)
        self._total_cycles = 0.0
        self._history: list[list[UtilizationRecord]] = [
            [] for _ in range(topology.n_sockets)
        ]

    def record_interval(
        self,
        start_cycle: float,
        duration_cycles: float,
        bytes_per_node: np.ndarray,
    ) -> None:
        """Account ``bytes_per_node`` of DRAM traffic over one interval."""
        b = np.asarray(bytes_per_node, dtype=np.float64)
        if b.shape != (self.topology.n_sockets,):
            raise TopologyError(
                f"expected {self.topology.n_sockets} per-node byte counts, got {b.shape}"
            )
        if duration_cycles < 0 or np.any(b < 0):
            raise SimulationError("negative duration or traffic")
        self._bytes += b
        self._total_cycles += duration_cycles
        if duration_cycles > 0:
            rho = np.minimum(b / (self.capacity * duration_cycles), 1.0)
            self._busy_cycles += rho * duration_cycles
            for node in range(self.topology.n_sockets):
                self._history[node].append(
                    UtilizationRecord(
                        start_cycle=start_cycle,
                        duration_cycles=duration_cycles,
                        utilization=float(rho[node]),
                        bytes_moved=float(b[node]),
                    )
                )

    def total_bytes(self, node: int) -> float:
        """Cumulative DRAM bytes served by ``node``'s controller."""
        return float(self._bytes[node])

    def mean_utilization(self, node: int) -> float:
        """Time-weighted average utilization of ``node``'s controller."""
        if self._total_cycles == 0:
            return 0.0
        return float(self._busy_cycles[node] / self._total_cycles)

    def peak_utilization(self, node: int) -> float:
        """Highest interval utilization seen on ``node``'s controller."""
        hist = self._history[node]
        return max((r.utilization for r in hist), default=0.0)

    def history(self, node: int) -> list[UtilizationRecord]:
        """Interval-by-interval utilization records for ``node``."""
        if not 0 <= node < self.topology.n_sockets:
            raise TopologyError(f"no node {node}")
        return list(self._history[node])
