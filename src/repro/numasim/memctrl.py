"""Per-node memory controllers.

Each NUMA node owns one memory controller with a fixed service capacity in
bytes/cycle.  The engine debits traffic into the controller per simulated
interval; the controller keeps a time-weighted utilization history that the
evaluation harness uses to report where contention occurred.

Raw per-interval records are kept in a bounded ring buffer
(``history_limit`` records per resource, :data:`DEFAULT_HISTORY_LIMIT` by
default) so a long-lived run — the live monitor, or a profiling service
executing jobs for hours — uses constant memory instead of growing
linearly with simulated intervals.  The summary statistics
(:meth:`~MemoryControllerSet.mean_utilization`,
:meth:`~MemoryControllerSet.peak_utilization`,
:meth:`~MemoryControllerSet.total_bytes`, ``n_intervals``) are running
aggregates over *every* interval ever recorded, so bounding the raw
records never changes them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError, TopologyError
from repro.numasim.topology import NumaTopology

__all__ = ["DEFAULT_HISTORY_LIMIT", "MemoryControllerSet", "UtilizationRecord"]

#: Default cap on raw per-interval records retained per bandwidth resource.
#: Generously above any batch run (the engine's event budget bounds those
#: to a few hundred intervals) while keeping unbounded streaming runs flat.
DEFAULT_HISTORY_LIMIT = 4096


def make_history(history_limit: int | None) -> deque:
    """A ring buffer for interval records (``None`` → unbounded).

    Shared by :class:`MemoryControllerSet` and
    :class:`~repro.numasim.interconnect.InterconnectFabric` so both sides
    validate the limit identically.
    """
    if history_limit is not None and history_limit < 1:
        raise SimulationError(
            f"history_limit must be >= 1 or None, got {history_limit}"
        )
    return deque(maxlen=history_limit)


@dataclass(frozen=True, slots=True)
class UtilizationRecord:
    """One interval's utilization of a bandwidth resource."""

    start_cycle: float
    duration_cycles: float
    utilization: float
    bytes_moved: float

    def __post_init__(self) -> None:
        if self.duration_cycles < 0 or self.bytes_moved < 0:
            raise SimulationError("negative interval duration or traffic")
        if not 0.0 <= self.utilization <= 1.0 + 1e-9:
            raise SimulationError(f"utilization out of range: {self.utilization}")


class MemoryControllerSet:
    """Bandwidth accounting for every node's memory controller."""

    def __init__(
        self,
        topology: NumaTopology,
        history_limit: int | None = DEFAULT_HISTORY_LIMIT,
    ) -> None:
        self.topology = topology
        self.capacity = topology.dram_bw_bytes_per_cycle
        self.history_limit = history_limit
        self._bytes = np.zeros(topology.n_sockets, dtype=np.float64)
        self._busy_cycles = np.zeros(topology.n_sockets, dtype=np.float64)
        self._peak = np.zeros(topology.n_sockets, dtype=np.float64)
        self._total_cycles = 0.0
        self._n_intervals = 0
        self._history: list[deque[UtilizationRecord]] = [
            make_history(history_limit) for _ in range(topology.n_sockets)
        ]

    @property
    def n_intervals(self) -> int:
        """Total intervals ever recorded (not capped by the ring buffer)."""
        return self._n_intervals

    def record_interval(
        self,
        start_cycle: float,
        duration_cycles: float,
        bytes_per_node: np.ndarray,
    ) -> None:
        """Account ``bytes_per_node`` of DRAM traffic over one interval."""
        b = np.asarray(bytes_per_node, dtype=np.float64)
        if b.shape != (self.topology.n_sockets,):
            raise TopologyError(
                f"expected {self.topology.n_sockets} per-node byte counts, got {b.shape}"
            )
        if duration_cycles < 0 or np.any(b < 0):
            raise SimulationError("negative duration or traffic")
        self._bytes += b
        self._total_cycles += duration_cycles
        if duration_cycles > 0:
            self._n_intervals += 1
            rho = np.minimum(b / (self.capacity * duration_cycles), 1.0)
            self._busy_cycles += rho * duration_cycles
            np.maximum(self._peak, rho, out=self._peak)
            for node in range(self.topology.n_sockets):
                self._history[node].append(
                    UtilizationRecord(
                        start_cycle=start_cycle,
                        duration_cycles=duration_cycles,
                        utilization=float(rho[node]),
                        bytes_moved=float(b[node]),
                    )
                )

    def total_bytes(self, node: int) -> float:
        """Cumulative DRAM bytes served by ``node``'s controller."""
        return float(self._bytes[node])

    def mean_utilization(self, node: int) -> float:
        """Time-weighted average utilization of ``node``'s controller."""
        if self._total_cycles == 0:
            return 0.0
        return float(self._busy_cycles[node] / self._total_cycles)

    def peak_utilization(self, node: int) -> float:
        """Highest interval utilization ever seen on ``node``'s controller.

        A running aggregate — unaffected by the history retention cap.
        """
        return float(self._peak[node])

    def history(self, node: int) -> list[UtilizationRecord]:
        """The retained utilization records for ``node``.

        At most ``history_limit`` records — the most recent ones when the
        run outlived the cap.  Use the running aggregates for whole-run
        statistics.
        """
        if not 0 <= node < self.topology.n_sockets:
            raise TopologyError(f"no node {node}")
        return list(self._history[node])
