"""Demand-bounded max-min fair bandwidth allocation (progressive filling).

Memory controllers and interconnect links are shared by many concurrent
flows (one flow per thread × stream × target node).  Real hardware
arbiters approximate fair queuing, so we allocate bandwidth with the
textbook *water-filling* algorithm:

1. grow every unfrozen flow's allocation at the same rate;
2. a flow freezes when it reaches its demand, or when some resource it
   crosses saturates;
3. repeat until all flows are frozen.

The result is the unique demand-bounded max-min fair allocation.  Its
defining properties — no resource over capacity, no allocation above
demand, and Pareto optimality (every unsatisfied flow crosses a saturated
resource) — are enforced by property-based tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError

__all__ = [
    "FairnessProblem",
    "FairnessSolution",
    "build_membership",
    "solve_max_min",
    "water_fill",
]

_EPS = 1e-12


@dataclass(frozen=True)
class FairnessProblem:
    """``demands[f]`` in bytes/cycle; ``usage[f]`` = resource indices flow f crosses."""

    demands: np.ndarray
    usage: list[tuple[int, ...]]
    capacities: np.ndarray

    def __post_init__(self) -> None:
        d = np.asarray(self.demands, dtype=np.float64)
        c = np.asarray(self.capacities, dtype=np.float64)
        if d.ndim != 1 or c.ndim != 1:
            raise SimulationError("demands and capacities must be 1-D")
        if len(self.usage) != d.shape[0]:
            raise SimulationError("usage list must match number of flows")
        if np.any(d < 0):
            raise SimulationError("demands must be >= 0")
        if np.any(c <= 0):
            raise SimulationError("capacities must be > 0")
        n_res = c.shape[0]
        for f, res in enumerate(self.usage):
            for r in res:
                if not 0 <= r < n_res:
                    raise SimulationError(f"flow {f} crosses unknown resource {r}")


@dataclass(frozen=True)
class FairnessSolution:
    """Allocations per flow and resulting per-resource utilization."""

    allocations: np.ndarray
    utilization: np.ndarray

    def throttle(self, demands: np.ndarray) -> np.ndarray:
        """Per-flow allocated/demand ratio in [0, 1] (1 for zero-demand flows)."""
        d = np.asarray(demands, dtype=np.float64)
        out = np.ones_like(d)
        nz = d > _EPS
        out[nz] = np.minimum(1.0, self.allocations[nz] / d[nz])
        return out


def build_membership(usage: list[tuple[int, ...]], n_res: int) -> np.ndarray:
    """Membership matrix ``M[r, f] = 1`` when flow ``f`` crosses resource ``r``.

    The engine's fixed-point solver re-arbitrates the same flow set many
    times per stationary span with only the demands changing; building the
    matrix once and passing it to :func:`water_fill` skips the per-call
    reconstruction that :func:`solve_max_min` performs.
    """
    member = np.zeros((n_res, len(usage)), dtype=np.float64)
    for f, res in enumerate(usage):
        for r in res:
            member[r, f] = 1.0
    return member


def solve_max_min(problem: FairnessProblem) -> FairnessSolution:
    """Compute the demand-bounded max-min fair allocation.

    Runs in at most ``n_flows + n_resources`` water-filling rounds; each
    round freezes at least one flow.
    """
    demands = np.asarray(problem.demands, dtype=np.float64)
    capacities = np.asarray(problem.capacities, dtype=np.float64)
    n_flows = demands.shape[0]
    n_res = capacities.shape[0]

    if n_res == 0 or n_flows == 0:
        # Nothing to arbitrate: every flow gets its demand.
        return FairnessSolution(
            allocations=demands.copy(),
            utilization=np.zeros(n_res, dtype=np.float64),
        )

    member = build_membership(problem.usage, n_res)
    return water_fill(demands, member, capacities)


def water_fill(
    demands: np.ndarray,
    member: np.ndarray,
    capacities: np.ndarray,
) -> FairnessSolution:
    """Water-filling core over a prebuilt membership matrix.

    Bit-identical to :func:`solve_max_min` on the equivalent problem —
    only the membership construction and validation are hoisted out, for
    callers (the execution engine) that arbitrate a fixed flow set
    repeatedly.
    """
    n_flows = demands.shape[0]
    n_res = capacities.shape[0]

    if n_res == 0 or n_flows == 0:
        return FairnessSolution(
            allocations=demands.copy(),
            utilization=np.zeros(n_res, dtype=np.float64),
        )

    alloc = np.zeros(n_flows, dtype=np.float64)
    active = demands > _EPS
    residual = capacities.copy()

    for _ in range(n_flows + n_res + 1):
        if not np.any(active):
            break
        active_f = active.astype(np.float64)
        counts = member @ active_f  # active flows per resource
        with np.errstate(divide="ignore", invalid="ignore"):
            headroom = np.where(counts > 0, residual / np.maximum(counts, 1.0), np.inf)
        remaining = np.where(active, demands - alloc, np.inf)
        delta = min(float(np.min(headroom)), float(np.min(remaining)))
        if not np.isfinite(delta):  # pragma: no cover - defensive
            raise SimulationError("water-filling produced non-finite increment")
        delta = max(delta, 0.0)

        alloc[active] += delta
        residual -= delta * counts
        residual = np.maximum(residual, 0.0)

        # Freeze satisfied flows and flows crossing a saturated resource.
        satisfied = active & (demands - alloc <= _EPS * np.maximum(demands, 1.0) + _EPS)
        saturated_res = residual <= _EPS * np.maximum(capacities, 1.0)
        blocked = active & (member[saturated_res].sum(axis=0) > 0)
        newly_frozen = satisfied | blocked
        if not np.any(newly_frozen):  # pragma: no cover - defensive
            raise SimulationError("water-filling failed to make progress")
        active &= ~newly_frozen
    else:  # pragma: no cover - defensive
        raise SimulationError("water-filling exceeded its round budget")

    used = member @ alloc
    utilization = np.minimum(used / capacities, 1.0)
    return FairnessSolution(allocations=alloc, utilization=utilization)
