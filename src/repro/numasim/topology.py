"""NUMA topology description.

The default topology mirrors the paper's evaluation platform: a 32-core
(8 cores × 4 sockets) Intel Xeon E5-4650 at 2.70 GHz with Hyper-Threading,
32 KB L1 and 256 KB L2 per core, 20 MB L3 per socket, and 64 GB DRAM per
socket.  Sockets are fully interconnected (Figure 1 of the paper), and each
ordered socket pair has its own directed channel — interconnect bandwidth is
asymmetric on real machines, so the two directions are distinct resources.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TopologyError
from repro.types import Channel

__all__ = ["CacheSpec", "NumaTopology"]


@dataclass(frozen=True, slots=True)
class CacheSpec:
    """Geometry of one cache level."""

    size_bytes: int
    line_bytes: int = 64
    associativity: int = 8

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.associativity <= 0:
            raise TopologyError(f"cache dimensions must be positive: {self}")
        if self.size_bytes % (self.line_bytes * self.associativity) != 0:
            raise TopologyError(
                f"cache size {self.size_bytes} is not divisible by "
                f"line*associativity ({self.line_bytes}*{self.associativity})"
            )

    @property
    def n_sets(self) -> int:
        """Number of cache sets."""
        return self.size_bytes // (self.line_bytes * self.associativity)

    @property
    def n_lines(self) -> int:
        """Total number of cache lines."""
        return self.size_bytes // self.line_bytes


@dataclass(frozen=True)
class NumaTopology:
    """A multi-socket, fully interconnected NUMA machine description.

    Core numbering is contiguous per socket: cores ``[s*cores_per_socket,
    (s+1)*cores_per_socket)`` live on socket ``s``.  With SMT, hardware
    thread (CPU) ids extend the same scheme: CPU ``c`` and CPU
    ``c + n_cores`` share physical core ``c`` — the layout Linux exposes on
    the paper's machine.
    """

    n_sockets: int = 4
    cores_per_socket: int = 8
    smt: int = 2
    clock_ghz: float = 2.70
    l1: CacheSpec = field(default_factory=lambda: CacheSpec(32 * 1024, 64, 8))
    l2: CacheSpec = field(default_factory=lambda: CacheSpec(256 * 1024, 64, 8))
    l3: CacheSpec = field(default_factory=lambda: CacheSpec(20 * 1024 * 1024, 64, 20))
    dram_bytes_per_node: int = 64 * 1024**3
    #: Peak local DRAM bandwidth per memory controller, bytes/cycle.
    #: ~38 GB/s at 2.7 GHz ≈ 14 B/cycle (quad-channel DDR3-1600 derated).
    dram_bw_bytes_per_cycle: float = 14.0
    #: Peak bandwidth of one *directed* inter-socket channel, bytes/cycle.
    #: One QPI link at 8 GT/s moves ~12.8 GB/s per direction ≈ 4.7 B/cycle.
    link_bw_bytes_per_cycle: float = 4.7

    def __post_init__(self) -> None:
        if self.n_sockets < 1:
            raise TopologyError("need at least one socket")
        if self.cores_per_socket < 1:
            raise TopologyError("need at least one core per socket")
        if self.smt < 1:
            raise TopologyError("SMT factor must be >= 1")
        if self.clock_ghz <= 0:
            raise TopologyError("clock must be positive")
        if self.dram_bw_bytes_per_cycle <= 0 or self.link_bw_bytes_per_cycle <= 0:
            raise TopologyError("bandwidth capacities must be positive")

    # -- counting -----------------------------------------------------------

    @property
    def n_cores(self) -> int:
        """Number of physical cores."""
        return self.n_sockets * self.cores_per_socket

    @property
    def n_cpus(self) -> int:
        """Number of hardware threads (logical CPUs)."""
        return self.n_cores * self.smt

    @property
    def total_dram_bytes(self) -> int:
        """DRAM across all nodes."""
        return self.dram_bytes_per_node * self.n_sockets

    # -- lookups ------------------------------------------------------------

    def node_of_cpu(self, cpu: int) -> int:
        """NUMA node hosting logical CPU ``cpu``."""
        if not 0 <= cpu < self.n_cpus:
            raise TopologyError(f"cpu {cpu} out of range [0, {self.n_cpus})")
        core = cpu % self.n_cores
        return core // self.cores_per_socket

    def core_of_cpu(self, cpu: int) -> int:
        """Physical core hosting logical CPU ``cpu``."""
        if not 0 <= cpu < self.n_cpus:
            raise TopologyError(f"cpu {cpu} out of range [0, {self.n_cpus})")
        return cpu % self.n_cores

    def cpus_of_node(self, node: int) -> list[int]:
        """All logical CPUs on NUMA node ``node``, SMT siblings last."""
        if not 0 <= node < self.n_sockets:
            raise TopologyError(f"node {node} out of range [0, {self.n_sockets})")
        first = node * self.cores_per_socket
        cores = range(first, first + self.cores_per_socket)
        return [c + t * self.n_cores for t in range(self.smt) for c in cores]

    def cores_of_node(self, node: int) -> list[int]:
        """Physical cores on node ``node``."""
        if not 0 <= node < self.n_sockets:
            raise TopologyError(f"node {node} out of range [0, {self.n_sockets})")
        first = node * self.cores_per_socket
        return list(range(first, first + self.cores_per_socket))

    # -- channels ------------------------------------------------------------

    def remote_channels(self) -> list[Channel]:
        """Every directed inter-socket channel, sorted."""
        return [
            Channel(s, d)
            for s in range(self.n_sockets)
            for d in range(self.n_sockets)
            if s != d
        ]

    def all_channels(self) -> list[Channel]:
        """Remote channels plus the per-node 'local' pseudo-channels."""
        return [
            Channel(s, d)
            for s in range(self.n_sockets)
            for d in range(self.n_sockets)
        ]

    def validate_channel(self, channel: Channel) -> None:
        """Raise :class:`TopologyError` unless ``channel`` exists here."""
        if not (0 <= channel.src < self.n_sockets and 0 <= channel.dst < self.n_sockets):
            raise TopologyError(f"channel {channel} not in a {self.n_sockets}-socket machine")

    def seconds_to_cycles(self, seconds: float) -> float:
        """Convert wall-clock seconds to core cycles."""
        return seconds * self.clock_ghz * 1e9

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert core cycles to wall-clock seconds."""
        return cycles / (self.clock_ghz * 1e9)
