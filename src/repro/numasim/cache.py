"""Exact set-associative LRU cache simulation.

The fast path of the simulator uses the *analytical* model in
:mod:`repro.numasim.cachemodel`; this module provides a precise,
line-granular simulator used where exactness matters:

* validating the bandit micro-benchmark's construction — its pointer-chase
  stream maps every access to the same cache set, so a correct
  set-associative LRU cache must show a ~100% conflict-miss rate;
* calibrating/regression-testing the analytical model on small traces.

The implementation favours clarity over raw speed but keeps the hot loop
allocation-free: each set is a fixed-size array of tags with an LRU stack
encoded as recency counters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.numasim.topology import CacheSpec
from repro.types import MemLevel

__all__ = ["SetAssociativeCache", "CacheHierarchy", "AccessOutcome"]


@dataclass(frozen=True, slots=True)
class AccessOutcome:
    """Result of pushing one address through a :class:`CacheHierarchy`."""

    level: MemLevel
    evicted_line: int | None = None


class SetAssociativeCache:
    """One set-associative cache level with true-LRU replacement.

    Addresses are byte addresses; the cache operates on line-aligned tags.
    ``access`` returns ``True`` on hit.  ``fill`` inserts a line (evicting
    the LRU way if needed) and returns the evicted line address or ``None``.
    """

    def __init__(self, spec: CacheSpec) -> None:
        self.spec = spec
        self._n_sets = spec.n_sets
        self._ways = spec.associativity
        self._line_shift = int(np.log2(spec.line_bytes))
        if (1 << self._line_shift) != spec.line_bytes:
            raise ValueError("line size must be a power of two")
        # tag == full line address (line-aligned address >> line_shift);
        # -1 marks an empty way.
        self._tags = np.full((self._n_sets, self._ways), -1, dtype=np.int64)
        # Larger recency value == more recently used.
        self._recency = np.zeros((self._n_sets, self._ways), dtype=np.int64)
        self._tick = 0
        self.hits = 0
        self.misses = 0

    # -- geometry helpers ----------------------------------------------------

    def line_of(self, addr: int) -> int:
        """Line number (global tag) containing byte address ``addr``."""
        return addr >> self._line_shift

    def set_of(self, addr: int) -> int:
        """Cache set index selected by byte address ``addr``."""
        return self.line_of(addr) % self._n_sets

    # -- operations ------------------------------------------------------------

    def access(self, addr: int) -> bool:
        """Look up ``addr``; update LRU state; return ``True`` on hit."""
        line = self.line_of(addr)
        s = line % self._n_sets
        self._tick += 1
        tags = self._tags[s]
        for w in range(self._ways):
            if tags[w] == line:
                self._recency[s, w] = self._tick
                self.hits += 1
                return True
        self.misses += 1
        return False

    def fill(self, addr: int) -> int | None:
        """Insert the line containing ``addr``; return evicted line or None.

        Idempotent when the line is already resident (refreshes recency).
        """
        line = self.line_of(addr)
        s = line % self._n_sets
        self._tick += 1
        tags = self._tags[s]
        for w in range(self._ways):
            if tags[w] == line:
                self._recency[s, w] = self._tick
                return None
        # Prefer an empty way; otherwise evict true-LRU.
        for w in range(self._ways):
            if tags[w] == -1:
                tags[w] = line
                self._recency[s, w] = self._tick
                return None
        victim = int(np.argmin(self._recency[s]))
        evicted = int(tags[victim])
        tags[victim] = line
        self._recency[s, victim] = self._tick
        return evicted

    def invalidate(self, addr: int) -> bool:
        """Drop the line containing ``addr`` if resident; return whether it was."""
        line = self.line_of(addr)
        s = line % self._n_sets
        tags = self._tags[s]
        for w in range(self._ways):
            if tags[w] == line:
                tags[w] = -1
                self._recency[s, w] = 0
                return True
        return False

    def contains(self, addr: int) -> bool:
        """Non-mutating residency check."""
        line = self.line_of(addr)
        return bool(np.any(self._tags[line % self._n_sets] == line))

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses so far that missed (0 if no accesses)."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def reset_stats(self) -> None:
        """Zero hit/miss counters without disturbing cache contents."""
        self.hits = 0
        self.misses = 0


class CacheHierarchy:
    """L1 → L2 → L3 lookup chain with per-level fill on miss.

    A miss at every level is classified as DRAM; whether it is local or
    remote DRAM depends on page placement, which the hierarchy does not
    know — callers pass ``dram_level`` per access.  A small line-fill-buffer
    model reports :attr:`MemLevel.LFB` when an access hits a line whose miss
    is still outstanding (within ``lfb_window`` accesses of the miss).
    """

    def __init__(
        self,
        l1: CacheSpec,
        l2: CacheSpec,
        l3: CacheSpec,
        lfb_entries: int = 10,
        lfb_window: int = 4,
    ) -> None:
        self.l1 = SetAssociativeCache(l1)
        self.l2 = SetAssociativeCache(l2)
        self.l3 = SetAssociativeCache(l3)
        self._lfb_window = lfb_window
        self._lfb_entries = lfb_entries
        self._pending: dict[int, int] = {}  # line -> access index of the miss
        self._n_accesses = 0
        self.level_counts: dict[MemLevel, int] = {lvl: 0 for lvl in MemLevel}

    def _line_shift_l1(self) -> int:
        return self.l1._line_shift

    def access(self, addr: int, dram_level: MemLevel = MemLevel.LOCAL_DRAM) -> AccessOutcome:
        """Simulate one load; returns the satisfying level and any L3 eviction."""
        if dram_level not in (MemLevel.LOCAL_DRAM, MemLevel.REMOTE_DRAM):
            raise ValueError(f"dram_level must be a DRAM level, got {dram_level}")
        self._n_accesses += 1
        line = self.l1.line_of(addr)

        # A fill in flight for this line?  Within the window the access is
        # satisfied by the line fill buffer; after the window the fill has
        # completed, so install the line and treat the access as an L1 hit.
        pending_at = self._pending.get(line)
        if pending_at is not None:
            if self._n_accesses - pending_at <= self._lfb_window:
                self.level_counts[MemLevel.LFB] += 1
                return AccessOutcome(MemLevel.LFB)
            del self._pending[line]
            self.l1.fill(addr)
            self.l2.fill(addr)
            self.l3.fill(addr)

        if self.l1.access(addr):
            self.level_counts[MemLevel.L1] += 1
            return AccessOutcome(MemLevel.L1)

        if self.l2.access(addr):
            self.l1.fill(addr)
            self.level_counts[MemLevel.L2] += 1
            return AccessOutcome(MemLevel.L2)

        if self.l3.access(addr):
            self.l1.fill(addr)
            self.l2.fill(addr)
            self.level_counts[MemLevel.L3] += 1
            return AccessOutcome(MemLevel.L3)

        # Full miss: the fill is now in flight (completes after the LFB
        # window); only then do the caches hold the line.
        if len(self._pending) >= self._lfb_entries:
            # The stalest fill has long completed — install it.
            oldest = min(self._pending, key=self._pending.__getitem__)
            del self._pending[oldest]
            oldest_addr = oldest << self._line_shift_l1()
            self.l1.fill(oldest_addr)
            self.l2.fill(oldest_addr)
            self.l3.fill(oldest_addr)
        self._pending[line] = self._n_accesses
        self.level_counts[dram_level] += 1
        return AccessOutcome(dram_level, evicted_line=None)

    def run_trace(
        self,
        addrs: np.ndarray,
        dram_levels: np.ndarray | None = None,
    ) -> np.ndarray:
        """Push a whole address trace through; return per-access MemLevel codes."""
        addrs = np.asarray(addrs, dtype=np.int64)
        out = np.empty(addrs.shape[0], dtype=np.int64)
        for i, a in enumerate(addrs):
            lvl = (
                MemLevel.LOCAL_DRAM
                if dram_levels is None
                else MemLevel(int(dram_levels[i]))
            )
            out[i] = self.access(int(a), lvl).level
        return out

    @property
    def dram_miss_rate(self) -> float:
        """Fraction of accesses that reached DRAM."""
        if self._n_accesses == 0:
            return 0.0
        dram = self.level_counts[MemLevel.LOCAL_DRAM] + self.level_counts[MemLevel.REMOTE_DRAM]
        return dram / self._n_accesses
