"""Experiment drivers regenerating every table and figure of the paper.

Each ``run_*`` function is self-contained, deterministic given its seed,
and returns a plain-data result object that :mod:`repro.eval.tables`
renders in the paper's layout.  The benchmark harness under
``benchmarks/`` calls these drivers one table/figure at a time.

A single trained classifier is shared across experiments via
:func:`shared_classifier` — training takes a few seconds and every
detection experiment needs the same model, as in the paper's workflow
(train once on the mini-programs, apply everywhere).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.core.classifier import DrBwClassifier, classify_benchmark, classify_case
from repro.core.diagnoser import Diagnoser, DiagnosisReport
from repro.core.profiler import DrBwProfiler, ProfilerConfig
from repro.core.training import (
    TrainingInstance,
    train_default_classifier,
    training_matrix,
)
from repro.core.validation import ConfusionMatrix, CrossValidationResult, cross_validate
from repro.eval.configs import EVAL_CONFIGS, RunConfig
from repro.numasim.machine import Machine
from repro.optim import (
    colocate_objects,
    interleave_objects,
    measure_speedup,
    replicate_objects,
)
from repro.types import Mode
from repro.workloads.base import Workload
from repro.workloads.suites.registry import BENCHMARKS, BenchmarkSpec

__all__ = [
    "shared_classifier",
    "run_table2_training_data",
    "run_table3_confusion",
    "run_fig3_tree",
    "run_table5_detection",
    "run_table4_classes",
    "run_table6_accuracy",
    "run_table7_overhead",
    "run_fig4_cf",
    "run_fig5_amg",
    "run_fig6_irsmk",
    "run_fig7_streamcluster",
    "run_fig8_lulesh",
    "run_case_sp",
    "run_case_blackscholes",
]


@lru_cache(maxsize=2)
def shared_classifier(seed: int = 0) -> tuple[DrBwClassifier, tuple[TrainingInstance, ...]]:
    """Train (once) the default DR-BW classifier on the Table II data."""
    machine = Machine()
    clf, instances = train_default_classifier(machine, seed=seed)
    return clf, tuple(instances)


# ---------------------------------------------------------------------------
# Tables II / III / Figure 3 — training
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TrainingSummary:
    """Table II: per-program good/rmc instance counts."""

    counts: dict[str, tuple[int, int]]  # program -> (good, rmc)

    @property
    def total(self) -> int:
        return sum(g + r for g, r in self.counts.values())


def run_table2_training_data(seed: int = 0) -> TrainingSummary:
    """Collect the training set and summarize it as in Table II."""
    _, instances = shared_classifier(seed)
    counts: dict[str, list[int]] = {}
    for inst in instances:
        slot = counts.setdefault(inst.config.program, [0, 0])
        slot[0 if inst.label is Mode.GOOD else 1] += 1
    return TrainingSummary(counts={k: (v[0], v[1]) for k, v in counts.items()})


def run_table3_confusion(seed: int = 0, k: int = 10) -> CrossValidationResult:
    """Stratified k-fold CV on the training set (Table III)."""
    clf, instances = shared_classifier(seed)
    X, y = training_matrix(list(instances))
    return cross_validate(clf, X, y, k=k, seed=seed)


@dataclass(frozen=True)
class TreeSummary:
    """Figure 3: the fitted tree and which features it uses."""

    rendering: str
    used_features: tuple[str, ...]
    depth: int
    n_leaves: int
    importances: dict[str, float]


def run_fig3_tree(seed: int = 0) -> TreeSummary:
    """The learned decision tree (Figure 3)."""
    clf, _ = shared_classifier(seed)
    imp = {
        name: float(v)
        for name, v in zip(clf.feature_names, clf.tree.feature_importances_)
        if v > 0
    }
    return TreeSummary(
        rendering=clf.render_tree(),
        used_features=tuple(sorted(clf.used_feature_names())),
        depth=clf.tree.depth,
        n_leaves=clf.tree.n_leaves,
        importances=imp,
    )


# ---------------------------------------------------------------------------
# Tables IV / V / VI — benchmark detection
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CaseResult:
    """One benchmark case: configuration, oracle verdict, detection."""

    benchmark: str
    input_name: str
    config: RunConfig
    oracle_speedup: float
    actual: Mode
    detected: Mode


@dataclass
class DetectionResults:
    """All Table V cases plus the derived Table IV / VI summaries."""

    cases: list[CaseResult] = field(default_factory=list)

    def per_benchmark(self) -> dict[str, tuple[int, int, int]]:
        """benchmark -> (cases, actual RMC, detected RMC), Table V rows."""
        out: dict[str, list[int]] = {}
        for c in self.cases:
            row = out.setdefault(c.benchmark, [0, 0, 0])
            row[0] += 1
            row[1] += c.actual is Mode.RMC
            row[2] += c.detected is Mode.RMC
        return {k: tuple(v) for k, v in out.items()}  # type: ignore[return-value]

    def benchmark_classes(self) -> dict[str, Mode]:
        """Table IV: benchmark-level class from the per-case ground truth."""
        by_bench: dict[str, list[Mode]] = {}
        for c in self.cases:
            by_bench.setdefault(c.benchmark, []).append(c.actual)
        return {b: classify_benchmark(labels) for b, labels in by_bench.items()}

    def accuracy_summary(self) -> ConfusionMatrix:
        """Table VI: detection-vs-actual confusion over all cases."""
        actual = np.array([c.actual.value for c in self.cases])
        detected = np.array([c.detected.value for c in self.cases])
        return ConfusionMatrix.from_predictions(
            actual, detected, labels=(Mode.RMC.value, Mode.GOOD.value)
        )

    @property
    def false_negative_rate(self) -> float:
        return self.accuracy_summary().rate(Mode.RMC.value, Mode.GOOD.value)

    @property
    def false_positive_rate(self) -> float:
        return self.accuracy_summary().rate(Mode.GOOD.value, Mode.RMC.value)


def run_table5_detection(
    seed: int = 0,
    benchmarks: list[str] | None = None,
    configs: tuple[RunConfig, ...] = EVAL_CONFIGS,
    *,
    jobs: int | None = None,
    cache=None,
    cache_dir: str | None = None,
    use_cache: bool = False,
    runner_opts: dict | None = None,
) -> DetectionResults:
    """Run every Table V case: interleave oracle vs DR-BW detection.

    Each (benchmark, input, configuration) case is one campaign shard: the
    worker profiles the run and evaluates the interleave oracle, the
    parent classifies the returned per-channel features.  Keeping the
    model out of the shard makes cache entries reusable across
    classifiers, and shard seeds come from the case's content hash — the
    old ``hash((name, inp, cfg.name))`` seeding was salted per process and
    made every fresh interpreter a different experiment.
    """
    from repro.parallel import CampaignRunner
    from repro.parallel.shards import (
        benchmark_workload_spec,
        payload_channel_features,
        profile_shard,
    )

    clf, _ = shared_classifier(seed)
    names = benchmarks or [n for n, s in BENCHMARKS.items() if s.in_table5]
    cases: list[tuple[str, str, RunConfig]] = []
    specs: list[dict] = []
    for name in names:
        spec: BenchmarkSpec = BENCHMARKS[name]
        for inp in spec.inputs:
            for cfg in configs:
                cases.append((name, inp, cfg))
                specs.append(
                    profile_shard(
                        benchmark_workload_spec(name, inp),
                        cfg.n_threads,
                        cfg.n_nodes,
                        oracle=True,
                    )
                )
    runner = CampaignRunner(
        jobs=jobs,
        cache=cache,
        cache_dir=cache_dir,
        use_cache=use_cache,
        campaign_seed=seed,
        **(runner_opts or {}),
    )
    results = DetectionResults()
    for (name, inp, cfg), outcome in zip(cases, runner.run(specs)):
        labels = {
            ch: clf.classify_channel_detailed(fv).mode
            for ch, fv in payload_channel_features(outcome.payload).items()
        }
        oracle = outcome.payload["oracle"]
        results.cases.append(
            CaseResult(
                benchmark=name,
                input_name=inp,
                config=cfg,
                oracle_speedup=float(oracle["speedup"]),
                actual=Mode(oracle["mode"]),
                detected=classify_case(labels),
            )
        )
    return results


def run_table4_classes(detection: DetectionResults) -> dict[str, Mode]:
    """Table IV from the Table V case results."""
    return detection.benchmark_classes()


def run_table6_accuracy(detection: DetectionResults) -> ConfusionMatrix:
    """Table VI from the Table V case results."""
    return detection.accuracy_summary()


# ---------------------------------------------------------------------------
# Table VII — profiling overhead
# ---------------------------------------------------------------------------

#: The six case-study benchmarks Table VII profiles, with their inputs.
TABLE7_BENCHMARKS: tuple[tuple[str, str], ...] = (
    ("IRSmk", "large"),
    ("AMG2006", "30x30x30"),
    ("Streamcluster", "native"),
    ("NW", "default"),
    ("SP", "C"),
    ("LULESH", "large"),
)


@dataclass(frozen=True)
class OverheadRow:
    benchmark: str
    plain_cycles: float
    profiled_cycles: float

    @property
    def overhead(self) -> float:
        return self.profiled_cycles / self.plain_cycles - 1.0


def run_table7_overhead(
    config: RunConfig = RunConfig(64, 4),
    profiler_config: ProfilerConfig | None = None,
    *,
    seed: int = 0,
    jobs: int | None = None,
    cache=None,
    cache_dir: str | None = None,
    use_cache: bool = False,
    runner_opts: dict | None = None,
) -> list[OverheadRow]:
    """Profiling overhead at 64 threads across four nodes (Table VII).

    Overhead shards skip feature extraction (``features=False``) — the
    measurement is the plain-vs-profiled cycle pair.  Profiler configs the
    shard encoding cannot carry run in-process instead.
    """
    from repro.parallel import CampaignRunner
    from repro.parallel.shards import (
        benchmark_workload_spec,
        profile_shard,
        profiler_spec,
    )

    pspec = profiler_spec(profiler_config or ProfilerConfig())
    if pspec is None:
        machine = Machine()
        profiler = DrBwProfiler(machine, profiler_config)
        rows = []
        for name, inp in TABLE7_BENCHMARKS:
            workload = BENCHMARKS[name].build(inp)
            plain, profiled, _ = profiler.measure_overhead(
                workload, config.n_threads, config.n_nodes
            )
            rows.append(
                OverheadRow(benchmark=name, plain_cycles=plain, profiled_cycles=profiled)
            )
        return rows
    specs = [
        profile_shard(
            benchmark_workload_spec(name, inp),
            config.n_threads,
            config.n_nodes,
            profiler=pspec,
            overhead=True,
            features=False,
        )
        for name, inp in TABLE7_BENCHMARKS
    ]
    runner = CampaignRunner(
        jobs=jobs,
        cache=cache,
        cache_dir=cache_dir,
        use_cache=use_cache,
        campaign_seed=seed,
        **(runner_opts or {}),
    )
    return [
        OverheadRow(
            benchmark=name,
            plain_cycles=outcome.payload["overhead"]["plain_cycles"],
            profiled_cycles=outcome.payload["overhead"]["profiled_cycles"],
        )
        for (name, _), outcome in zip(TABLE7_BENCHMARKS, runner.run(specs))
    ]


# ---------------------------------------------------------------------------
# Figure 4 — Contribution Fraction distributions
# ---------------------------------------------------------------------------

#: Figure 4 panels: benchmark, input, configuration.
FIG4_PANELS: tuple[tuple[str, str, RunConfig], ...] = (
    ("AMG2006", "30x30x30", RunConfig(32, 4)),
    ("Streamcluster", "native", RunConfig(32, 4)),
    ("LULESH", "large", RunConfig(32, 4)),
    ("NW", "default", RunConfig(32, 4)),
)


def run_fig4_cf(seed: int = 0) -> dict[str, DiagnosisReport]:
    """CF distribution across data objects for the four case studies."""
    machine = Machine()
    clf, _ = shared_classifier(seed)
    profiler = DrBwProfiler(machine)
    diagnoser = Diagnoser()
    out: dict[str, DiagnosisReport] = {}
    for name, inp, cfg in FIG4_PANELS:
        workload = BENCHMARKS[name].build(inp)
        profile = profiler.profile(workload, cfg.n_threads, cfg.n_nodes, seed=seed + 17)
        labels = clf.classify_profile(profile)
        out[name] = diagnoser.diagnose(profile, labels)
    return out


# ---------------------------------------------------------------------------
# Figures 5-8 and remaining case studies — optimization speedups
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SpeedupRow:
    """One bar group: configuration plus speedups per strategy."""

    label: str
    config: RunConfig
    speedups: dict[str, float]


#: AMG2006's four blamed arrays (Figure 4(a)) — the co-locate target set.
AMG_COLOCATE_TARGETS = frozenset(
    {"RAP_diag_j", "diag_j", "diag_data", "A_diag_data"}
)


def run_fig5_amg(
    configs: tuple[RunConfig, ...] = (
        RunConfig(16, 4),
        RunConfig(24, 4),
        RunConfig(32, 4),
        RunConfig(64, 4),
    ),
) -> list[SpeedupRow]:
    """AMG2006 per-phase speedups: co-locate vs interleave (Figure 5)."""
    machine = Machine()
    base = BENCHMARKS["AMG2006"].build("30x30x30")
    rows: list[SpeedupRow] = []
    for cfg in configs:
        colocated = measure_speedup(
            base, colocate_objects(base, set(AMG_COLOCATE_TARGETS)), machine,
            cfg.n_threads, cfg.n_nodes,
        )
        interleaved = measure_speedup(
            base, interleave_objects(base), machine, cfg.n_threads, cfg.n_nodes
        )
        speedups = {}
        for tag, res in (("co-locate", colocated), ("interleave", interleaved)):
            speedups[f"{tag}:total"] = res.speedup
            for phase in ("init", "setup", "solve"):
                speedups[f"{tag}:{phase}"] = res.phase_speedup(phase)
        rows.append(SpeedupRow(label=cfg.name, config=cfg, speedups=speedups))
    return rows


def _two_way_rows(
    workload_builder,
    inputs: list[str],
    configs: tuple[RunConfig, ...],
    optimize_a,
    optimize_b,
    tag_a: str,
    tag_b: str,
) -> list[SpeedupRow]:
    machine = Machine()
    rows: list[SpeedupRow] = []
    for inp in inputs:
        base = workload_builder(inp)
        for cfg in configs:
            res_a = measure_speedup(base, optimize_a(base), machine, cfg.n_threads, cfg.n_nodes)
            res_b = measure_speedup(base, optimize_b(base), machine, cfg.n_threads, cfg.n_nodes)
            rows.append(
                SpeedupRow(
                    label=f"{inp} {cfg.name}",
                    config=cfg,
                    speedups={tag_a: res_a.speedup, tag_b: res_b.speedup},
                )
            )
    return rows


def run_fig6_irsmk(configs: tuple[RunConfig, ...] = EVAL_CONFIGS) -> list[SpeedupRow]:
    """IRSmk co-locate vs interleave across inputs and configs (Figure 6)."""
    return _two_way_rows(
        BENCHMARKS["IRSmk"].build,
        ["medium", "large"],
        configs,
        lambda w: colocate_objects(w),
        lambda w: interleave_objects(w),
        "co-locate",
        "interleave",
    )


def run_fig7_streamcluster(configs: tuple[RunConfig, ...] = EVAL_CONFIGS) -> list[SpeedupRow]:
    """Streamcluster replicate vs interleave (Figure 7)."""
    return _two_way_rows(
        BENCHMARKS["Streamcluster"].build,
        ["simlarge", "native"],
        configs,
        lambda w: replicate_objects(w, {"block", "point_p"}),
        lambda w: interleave_objects(w),
        "replicate",
        "interleave",
    )


def run_fig8_lulesh(configs: tuple[RunConfig, ...] = EVAL_CONFIGS) -> list[SpeedupRow]:
    """LULESH co-locate vs interleave (Figure 8)."""
    return _two_way_rows(
        BENCHMARKS["LULESH"].build,
        ["large"],
        configs,
        lambda w: colocate_objects(w),  # heap arrays only; statics untracked
        lambda w: interleave_objects(w),
        "co-locate",
        "interleave",
    )


def run_case_sp(config: RunConfig = RunConfig(64, 4)) -> float:
    """SP: whole-program interleave speedup (Section VIII.F)."""
    machine = Machine()
    base = BENCHMARKS["SP"].build("C")
    return measure_speedup(
        base, interleave_objects(base), machine, config.n_threads, config.n_nodes
    ).speedup


def run_case_blackscholes(config: RunConfig = RunConfig(64, 4)) -> float:
    """Blackscholes: co-locating ``buffer`` buys <1% (Section VIII.G)."""
    machine = Machine()
    base = BENCHMARKS["Blackscholes"].build("native")
    return measure_speedup(
        base, colocate_objects(base, {"buffer"}), machine, config.n_threads, config.n_nodes
    ).speedup
