"""Ground truth via the interleave oracle (Section VII.B).

*"We build our evaluation based on an assumption that remote bandwidth
contention will benefit from memory interleaving ... if the speedup of
the interleaved version exceeds a predefined threshold 10% over the
original code, we believe this benchmark suffers from a contention
issue."*

The oracle runs a workload twice — as written, and with **every** object
re-allocated page-interleaved across all nodes — and compares end-to-end
execution time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.numasim.machine import Machine
from repro.osl.pages import Interleave
from repro.types import Mode
from repro.workloads.base import Workload
from repro.workloads.runner import run_workload

__all__ = ["ORACLE_THRESHOLD", "OracleVerdict", "interleave_oracle", "interleave_everything"]

#: Speedup above which the oracle declares actual contention.
ORACLE_THRESHOLD = 1.10


@dataclass(frozen=True)
class OracleVerdict:
    """Outcome of one oracle comparison."""

    original_cycles: float
    interleaved_cycles: float

    @property
    def speedup(self) -> float:
        return self.original_cycles / self.interleaved_cycles

    @property
    def mode(self) -> Mode:
        return Mode.RMC if self.speedup > ORACLE_THRESHOLD else Mode.GOOD


def interleave_everything(workload: Workload) -> Workload:
    """The coarse-grained remedy: every object page-interleaved."""
    return workload.with_policies(
        {o.name: Interleave() for o in workload.objects}
    )


def interleave_oracle(
    workload: Workload,
    machine: Machine,
    n_threads: int,
    n_nodes: int,
) -> OracleVerdict:
    """Run original vs fully-interleaved and compare execution time."""
    original = run_workload(workload, machine, n_threads, n_nodes)
    interleaved = run_workload(
        interleave_everything(workload), machine, n_threads, n_nodes
    )
    return OracleVerdict(
        original_cycles=original.total_cycles,
        interleaved_cycles=interleaved.total_cycles,
    )
