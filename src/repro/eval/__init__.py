"""Evaluation harness: configurations, ground truth, and the paper's
tables and figures.

* :mod:`repro.eval.configs` — the eight ``Tt-Nn`` thread/node
  configurations of Section VII;
* :mod:`repro.eval.groundtruth` — the interleave oracle (a case is
  *actually* RMC when whole-program interleaving speeds it up >10%);
* :mod:`repro.eval.experiments` — drivers regenerating Tables II-VII and
  Figures 3-8;
* :mod:`repro.eval.faulted` — the same detection experiments run through
  the :mod:`repro.faults` injection layer (robustness evaluation);
* :mod:`repro.eval.tables` — paper-style text rendering of results.
"""

from repro.eval.configs import EVAL_CONFIGS, RunConfig
from repro.eval.groundtruth import interleave_oracle, OracleVerdict

__all__ = ["EVAL_CONFIGS", "RunConfig", "interleave_oracle", "OracleVerdict"]
