"""Robustness evaluation: the paper's detection experiments under faults.

The paper's Tables V/VI assume a clean collector; this module re-runs the
same cases through a :class:`~repro.faults.FaultPlan`-perturbed pipeline
and reports how the Table VI accuracy moves — the acceptance bar for the
degradation machinery is that the documented ``standard`` plan (10% drop,
1% corruption) keeps case accuracy within a few points of the clean run.

Entry points:

* :func:`run_detection_under_faults` — Table V-style case sweep through a
  faulted profiler (quarantine + confidence + bounded resampling on);
* :func:`run_table6_under_faults` — the clean-vs-faulted Table VI
  comparison, with the pooled degradation ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.classifier import classify_case
from repro.core.profiler import DroppedSampleReport, DrBwProfiler, ProfilerConfig
from repro.core.validation import ConfusionMatrix
from repro.eval.configs import EVAL_CONFIGS, RunConfig
from repro.eval.experiments import (
    CaseResult,
    DetectionResults,
    run_table5_detection,
    shared_classifier,
)
from repro.eval.groundtruth import interleave_oracle
from repro.faults import FAULT_PRESETS, FaultPlan
from repro.numasim.machine import Machine
from repro.workloads.suites.registry import BENCHMARKS, BenchmarkSpec

__all__ = [
    "FaultedDetectionResults",
    "Table6UnderFaults",
    "run_detection_under_faults",
    "run_table6_under_faults",
]


@dataclass
class FaultedDetectionResults(DetectionResults):
    """Table V cases run under a fault plan, plus the degradation ledger."""

    plan: FaultPlan = field(default_factory=FaultPlan)
    degradation: DroppedSampleReport = field(default_factory=DroppedSampleReport)

    def fold_degradation(self, dropped: DroppedSampleReport) -> None:
        """Pool one profile's ledger into the sweep-wide totals."""
        agg = self.degradation
        agg.observed += dropped.observed
        agg.kept += dropped.kept
        for reason, n in dropped.quarantined.items():
            agg.count(reason, n)
        for reason, n in dropped.injected.items():
            agg.injected[reason] = agg.injected.get(reason, 0) + n
        agg.resample_attempts += dropped.resample_attempts


def run_detection_under_faults(
    plan: FaultPlan,
    seed: int = 0,
    benchmarks: list[str] | None = None,
    configs: tuple[RunConfig, ...] = EVAL_CONFIGS,
    resample_floor: int = 25,
    resample_attempts: int = 3,
    *,
    jobs: int | None = None,
    cache=None,
    cache_dir: str | None = None,
    use_cache: bool = False,
) -> FaultedDetectionResults:
    """Run Table V cases through the fault-injected pipeline.

    Mirrors :func:`repro.eval.experiments.run_table5_detection` case for
    case — same oracle, same campaign machinery, per-case seeds derived
    from each shard's content hash (process-stable, unlike the salted
    ``hash()`` seeding this replaced) — so clean-vs-faulted deltas
    isolate the fault plan's effect.
    """
    from repro.parallel import CampaignRunner
    from repro.parallel.seeding import stable_case_seed
    from repro.parallel.shards import (
        benchmark_workload_spec,
        payload_channel_features,
        profile_shard,
        profiler_spec,
    )
    from repro.types import Mode

    clf, _ = shared_classifier(seed)
    pconfig = ProfilerConfig(
        faults=plan,
        resample_floor=resample_floor,
        resample_attempts=resample_attempts,
    )
    names = benchmarks or [n for n, s in BENCHMARKS.items() if s.in_table5]
    results = FaultedDetectionResults(plan=plan)
    pspec = profiler_spec(pconfig)
    if pspec is None:
        # Shard-unencodable fault plan: profile in-process, content-seeded.
        machine = Machine()
        profiler = DrBwProfiler(machine, pconfig)
        for name in names:
            spec: BenchmarkSpec = BENCHMARKS[name]
            for inp in spec.inputs:
                for cfg in configs:
                    workload = spec.build(inp)
                    verdict = interleave_oracle(
                        workload, machine, cfg.n_threads, cfg.n_nodes
                    )
                    profile = profiler.profile(
                        workload,
                        cfg.n_threads,
                        cfg.n_nodes,
                        seed=stable_case_seed(seed, name, inp, cfg.name),
                    )
                    results.fold_degradation(profile.dropped)
                    detected = classify_case(clf.classify_profile(profile))
                    results.cases.append(
                        CaseResult(
                            benchmark=name,
                            input_name=inp,
                            config=cfg,
                            oracle_speedup=verdict.speedup,
                            actual=verdict.mode,
                            detected=detected,
                        )
                    )
        return results
    cases: list[tuple[str, str, RunConfig]] = []
    specs: list[dict] = []
    for name in names:
        bspec: BenchmarkSpec = BENCHMARKS[name]
        for inp in bspec.inputs:
            for cfg in configs:
                cases.append((name, inp, cfg))
                specs.append(
                    profile_shard(
                        benchmark_workload_spec(name, inp),
                        cfg.n_threads,
                        cfg.n_nodes,
                        profiler=pspec,
                        oracle=True,
                    )
                )
    runner = CampaignRunner(
        jobs=jobs,
        cache=cache,
        cache_dir=cache_dir,
        use_cache=use_cache,
        campaign_seed=seed,
    )
    for (name, inp, cfg), outcome in zip(cases, runner.run(specs)):
        results.fold_degradation(outcome.dropped)
        labels = {
            ch: clf.classify_channel_detailed(fv).mode
            for ch, fv in payload_channel_features(outcome.payload).items()
        }
        oracle = outcome.payload["oracle"]
        results.cases.append(
            CaseResult(
                benchmark=name,
                input_name=inp,
                config=cfg,
                oracle_speedup=float(oracle["speedup"]),
                actual=Mode(oracle["mode"]),
                detected=classify_case(labels),
            )
        )
    return results


@dataclass(frozen=True)
class Table6UnderFaults:
    """Clean vs. faulted Table VI accuracy, side by side."""

    plan: FaultPlan
    clean: ConfusionMatrix
    faulted: ConfusionMatrix
    degradation: DroppedSampleReport

    @property
    def accuracy_delta(self) -> float:
        """Faulted minus clean case accuracy (negative = degradation)."""
        return self.faulted.accuracy - self.clean.accuracy


def run_table6_under_faults(
    plan: FaultPlan | str = "standard",
    seed: int = 0,
    benchmarks: list[str] | None = None,
    configs: tuple[RunConfig, ...] = EVAL_CONFIGS,
) -> Table6UnderFaults:
    """The robustness headline: Table VI accuracy with and without faults."""
    if isinstance(plan, str):
        plan = FAULT_PRESETS[plan]
    clean = run_table5_detection(seed=seed, benchmarks=benchmarks, configs=configs)
    faulted = run_detection_under_faults(
        plan, seed=seed, benchmarks=benchmarks, configs=configs
    )
    return Table6UnderFaults(
        plan=plan,
        clean=clean.accuracy_summary(),
        faulted=faulted.accuracy_summary(),
        degradation=faulted.degradation,
    )
