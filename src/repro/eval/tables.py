"""Paper-style text rendering of experiment results."""

from __future__ import annotations

from repro.core.diagnoser import DiagnosisReport
from repro.core.validation import ConfusionMatrix, CrossValidationResult
from repro.eval.experiments import (
    DetectionResults,
    OverheadRow,
    SpeedupRow,
    TrainingSummary,
    TreeSummary,
)
from repro.types import Mode

__all__ = [
    "format_table2",
    "format_table3",
    "format_fig3",
    "format_table4",
    "format_table5",
    "format_table6",
    "format_table6_faulted",
    "format_table7",
    "format_fig4",
    "format_speedup_rows",
]

#: Paper reference values for side-by-side printing.
PAPER_TABLE5 = {
    "Swaptions": (32, 0, 0), "Blackscholes": (32, 0, 0), "Bodytrack": (16, 0, 0),
    "Freqmine": (32, 0, 0), "Ferret": (32, 0, 0), "Fluidanimate": (32, 0, 4),
    "X264": (32, 0, 0), "Streamcluster": (16, 13, 16), "IRSmk": (24, 15, 15),
    "AMG2006": (8, 8, 8), "NW": (24, 16, 17), "BT": (24, 0, 0), "CG": (24, 0, 0),
    "DC": (16, 0, 0), "EP": (24, 0, 0), "FT": (24, 0, 2), "IS": (24, 0, 0),
    "LU": (24, 0, 0), "MG": (24, 0, 0), "UA": (24, 0, 9), "SP": (24, 11, 11),
}


def format_table2(summary: TrainingSummary) -> str:
    """Table II layout: mini-program / good / rmc / total."""
    lines = [f"{'mini-programs':<16}{'good':>6}{'rmc':>6}{'Total':>7}"]
    for program in ("sumv", "dotv", "countv", "bandit"):
        good, rmc = summary.counts.get(program, (0, 0))
        lines.append(f"{program:<16}{good:>6}{rmc if rmc else '-':>6}{good + rmc:>7}")
    total_good = sum(g for g, _ in summary.counts.values())
    total_rmc = sum(r for _, r in summary.counts.values())
    lines.append(
        f"{'Full training set':<16}{total_good:>6}{total_rmc:>6}{summary.total:>7}"
    )
    return "\n".join(lines)


def format_table3(cv: CrossValidationResult) -> str:
    """Table III: confusion matrix plus the CV success rate."""
    return f"{cv.confusion}\n{k_fold_line(cv)}  (paper: 187/192 = 97.4%)"


def k_fold_line(cv: CrossValidationResult) -> str:
    total = cv.confusion.total
    correct = round(cv.accuracy * total)
    return f"10-fold CV success rate: {correct}/{total} = {cv.accuracy:.1%}"


def format_fig3(tree: TreeSummary) -> str:
    """Figure 3: the learned tree."""
    imp = ", ".join(f"{k}={v:.3f}" for k, v in sorted(tree.importances.items()))
    return (
        f"{tree.rendering}\n"
        f"depth={tree.depth} leaves={tree.n_leaves}\n"
        f"importances: {imp}"
    )


def format_table4(classes: dict[str, Mode]) -> str:
    """Table IV: benchmark classification."""
    good = sorted(b for b, m in classes.items() if m is Mode.GOOD)
    rmc = sorted(b for b, m in classes.items() if m is Mode.RMC)
    return f"good ({len(good)}): {', '.join(good)}\nrmc  ({len(rmc)}): {', '.join(rmc)}"


def format_table5(detection: DetectionResults) -> str:
    """Table V layout with the paper's numbers alongside."""
    rows = detection.per_benchmark()
    lines = [
        f"{'Benchmark':<15}{'cases':>6}{'actual':>8}{'detected':>9}"
        f"{'paper act.':>11}{'paper det.':>11}"
    ]
    order = list(PAPER_TABLE5)
    for name in order:
        if name not in rows:
            continue
        cases, actual, detected = rows[name]
        p_cases, p_act, p_det = PAPER_TABLE5[name]
        lines.append(
            f"{name:<15}{cases:>6}{actual:>8}{detected:>9}{p_act:>11}{p_det:>11}"
        )
    total_cases = sum(v[0] for v in rows.values())
    total_act = sum(v[1] for v in rows.values())
    total_det = sum(v[2] for v in rows.values())
    lines.append(
        f"{'Total':<15}{total_cases:>6}{total_act:>8}{total_det:>9}"
        f"{63:>11}{82:>11}"
    )
    return "\n".join(lines)


def format_table6(confusion: ConfusionMatrix) -> str:
    """Table VI: correctness / false-positive / false-negative rates."""
    rmc, good = Mode.RMC.value, Mode.GOOD.value
    return (
        f"{confusion}\n"
        f"Correctness:         {confusion.accuracy:.1%}  (paper: 96.3%)\n"
        f"False positive rate: {confusion.rate(good, rmc):.1%}  (paper: 4.2%)\n"
        f"False negative rate: {confusion.rate(rmc, good):.1%}  (paper: 0%)"
    )


def format_table6_faulted(result) -> str:
    """Clean vs. faulted Table VI accuracy plus the degradation ledger.

    ``result`` is a :class:`repro.eval.faulted.Table6UnderFaults` (typed
    loosely to keep this rendering module import-light).
    """
    rmc, good = Mode.RMC.value, Mode.GOOD.value
    deg = result.degradation
    lines = [
        f"fault plan: {result.plan.describe()}",
        f"{'':<22}{'clean':>10}{'faulted':>10}",
        f"{'Correctness':<22}{result.clean.accuracy:>9.1%}{result.faulted.accuracy:>9.1%}",
        f"{'False positive rate':<22}"
        f"{result.clean.rate(good, rmc):>9.1%}{result.faulted.rate(good, rmc):>9.1%}",
        f"{'False negative rate':<22}"
        f"{result.clean.rate(rmc, good):>9.1%}{result.faulted.rate(rmc, good):>9.1%}",
        f"accuracy delta: {result.accuracy_delta:+.1%}",
        f"samples observed={deg.observed} kept={deg.kept} "
        f"quarantined={deg.total_quarantined} ({deg.drop_fraction:.1%})",
    ]
    if deg.quarantined:
        lines.append(
            "quarantine reasons: "
            + ", ".join(f"{k}={v}" for k, v in sorted(deg.quarantined.items()))
        )
    if deg.resample_attempts:
        lines.append(f"resample attempts across cases: {deg.resample_attempts}")
    return "\n".join(lines)


def format_table7(rows: list[OverheadRow]) -> str:
    """Table VII: per-benchmark profiling overhead."""
    lines = [f"{'Code':<15}{'without':>14}{'with':>14}{'overhead':>10}"]
    for r in rows:
        lines.append(
            f"{r.benchmark:<15}{r.plain_cycles:>14,.0f}{r.profiled_cycles:>14,.0f}"
            f"{r.overhead * 100:>+9.1f}%"
        )
    avg = sum(r.overhead for r in rows) / len(rows) if rows else 0.0
    lines.append(f"{'Average':<15}{'':>14}{'':>14}{avg * 100:>+9.1f}%")
    lines.append("(paper: average +3.3%, max +10.0%, Streamcluster -9.2%)")
    return "\n".join(lines)


def format_fig4(reports: dict[str, DiagnosisReport], top_k: int = 5) -> str:
    """Figure 4: CF rankings per case study."""
    blocks = []
    for name, report in reports.items():
        entries = ", ".join(f"{c.name}={c.cf:.1%}" for c in report.top(top_k))
        blocks.append(f"{name}: {entries}")
    return "\n".join(blocks)


def format_speedup_rows(rows: list[SpeedupRow], title: str) -> str:
    """Figures 5-8: one line per configuration with per-strategy speedups."""
    if not rows:
        return f"{title}: (no rows)"
    keys = sorted({k for r in rows for k in r.speedups})
    header = f"{'config':<22}" + "".join(f"{k:>18}" for k in keys)
    lines = [title, header]
    for r in rows:
        lines.append(
            f"{r.label:<22}"
            + "".join(f"{r.speedups.get(k, float('nan')):>17.2f}x" for k in keys)
        )
    return "\n".join(lines)
