"""The eight evaluation configurations of Section VII.

*"We tuned t to be 16, 24, 32 and 64 and n to be 2, 3, 4 ... In total, we
have eight configurations (T16-N4, T24-N4, T32-N4, T64-N4, T24-N3,
T16-N2, T24-N2, T32-N2)."*
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["RunConfig", "EVAL_CONFIGS", "config_by_name"]


@dataclass(frozen=True, slots=True, order=True)
class RunConfig:
    """One ``Tt-Nn`` configuration."""

    n_threads: int
    n_nodes: int

    def __post_init__(self) -> None:
        if self.n_threads < 1 or self.n_nodes < 1:
            raise ConfigError(f"bad configuration {self}")
        if self.n_threads % self.n_nodes != 0:
            raise ConfigError(f"{self.name}: threads must divide among nodes")

    @property
    def name(self) -> str:
        return f"T{self.n_threads}-N{self.n_nodes}"

    @property
    def threads_per_node(self) -> int:
        return self.n_threads // self.n_nodes

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


#: The paper's eight configurations, in its order of presentation.
EVAL_CONFIGS: tuple[RunConfig, ...] = (
    RunConfig(16, 4),
    RunConfig(24, 4),
    RunConfig(32, 4),
    RunConfig(64, 4),
    RunConfig(24, 3),
    RunConfig(16, 2),
    RunConfig(24, 2),
    RunConfig(32, 2),
)


def config_by_name(name: str) -> RunConfig:
    """Parse ``T16-N4``-style names."""
    for cfg in EVAL_CONFIGS:
        if cfg.name == name:
            return cfg
    try:
        t, n = name.upper().lstrip("T").split("-N")
        return RunConfig(int(t), int(n))
    except (ValueError, ConfigError) as exc:
        raise ConfigError(f"cannot parse configuration {name!r}") from exc
