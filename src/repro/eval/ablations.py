"""Ablation studies over DR-BW's design choices (DESIGN.md Section 6).

Each function isolates one knob:

* :func:`ablate_sampling_period` — classifier accuracy vs PEBS period
  (the paper attributes its few misclassifications to sampling sparsity);
* :func:`ablate_feature_set` — the Table I features vs the two
  tree-selected features vs single-feature baselines;
* :func:`ablate_channel_granularity` — per-channel classification
  (Section IV.B) vs whole-program aggregation;
* :func:`ablate_heuristics` — the learned tree vs the Related-Work
  heuristics on a benchmark detection slice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.baselines import LatencyThresholdHeuristic, RemoteAccessHeuristic
from repro.core.classifier import DrBwClassifier, classify_case
from repro.core.features import TABLE1_FEATURE_NAMES
from repro.core.profiler import DrBwProfiler, ProfilerConfig
from repro.core.training import collect_training_set, training_matrix
from repro.core.validation import cross_validate
from repro.eval.configs import RunConfig
from repro.numasim.machine import Machine
from repro.pmu.sampler import SamplerConfig
from repro.types import Mode
from repro.workloads.suites.registry import BENCHMARKS

__all__ = [
    "AblationRow",
    "ablate_sampling_period",
    "ablate_feature_set",
    "ablate_channel_granularity",
    "ablate_heuristics",
    "ablate_machine_parameters",
]


@dataclass(frozen=True)
class AblationRow:
    """One ablation setting and its score."""

    setting: str
    accuracy: float
    detail: str = ""


def ablate_sampling_period(
    periods: tuple[int, ...] = (500, 1000, 2000, 4000, 8000),
    seed: int = 0,
    jobs: int | None = None,
) -> list[AblationRow]:
    """Retrain + cross-validate at each sampling period.

    Sparser sampling gives fewer remote samples per run and noisier
    latency averages; accuracy should degrade gently as the period grows.
    """
    rows = []
    for period in periods:
        machine = Machine()
        profiler = DrBwProfiler(
            machine, ProfilerConfig(sampler=SamplerConfig(period=period))
        )
        instances = collect_training_set(machine, profiler, seed=seed, jobs=jobs)
        X, y = training_matrix(instances)
        clf = DrBwClassifier(feature_names=TABLE1_FEATURE_NAMES)
        cv = cross_validate(clf, X, y, k=10, seed=seed)
        median_remote = float(np.median(X[y == Mode.RMC.value, 5]))
        rows.append(
            AblationRow(
                setting=f"1/{period}",
                accuracy=cv.accuracy,
                detail=f"median rmc remote samples: {median_remote:.0f}",
            )
        )
    return rows


def ablate_feature_set(seed: int = 0, jobs: int | None = None) -> list[AblationRow]:
    """Cross-validate on restricted feature views of the training set."""
    machine = Machine()
    instances = collect_training_set(machine, seed=seed, jobs=jobs)
    X, y = training_matrix(instances)

    views: dict[str, list[str]] = {
        "all 13 (Table I)": list(TABLE1_FEATURE_NAMES),
        "paper tree pair (#6, #7)": [
            "num_remote_dram_samples", "avg_remote_dram_latency"
        ],
        "remote latency only (#7)": ["avg_remote_dram_latency"],
        "remote count only (#6)": ["num_remote_dram_samples"],
        "latency ratios only (#1-5)": [
            n for n in TABLE1_FEATURE_NAMES if n.startswith("ratio_")
        ],
    }
    rows = []
    for name, cols in views.items():
        idx = [TABLE1_FEATURE_NAMES.index(c) for c in cols]
        clf = DrBwClassifier(feature_names=tuple(cols))
        cv = cross_validate(clf, X[:, idx], y, k=10, seed=seed)
        rows.append(AblationRow(setting=name, accuracy=cv.accuracy))
    return rows


def ablate_channel_granularity(
    benchmarks: tuple[str, ...] = ("AMG2006", "UA", "EP"),
    configs: tuple[RunConfig, ...] = (RunConfig(32, 4), RunConfig(64, 4)),
    seed: int = 0,
    jobs: int | None = None,
) -> list[AblationRow]:
    """Per-channel vs whole-program classification on a detection slice.

    Whole-program aggregation merges every channel's samples into one
    pooled feature vector; a single hot channel gets diluted by calm ones
    (especially the calm *directions*), which is exactly why the paper
    classifies per channel.  Both views come from the same campaign
    payload: the pooled vector is the per-channel vectors averaged, with
    count features summed.
    """
    from repro.eval.experiments import shared_classifier
    from repro.parallel import CampaignRunner
    from repro.parallel.shards import (
        benchmark_workload_spec,
        payload_channel_features,
        profile_shard,
    )

    clf, _ = shared_classifier(seed)
    cases = [
        (name, inp, cfg)
        for name in benchmarks
        for inp in BENCHMARKS[name].inputs
        for cfg in configs
    ]
    specs = [
        profile_shard(
            benchmark_workload_spec(name, inp), cfg.n_threads, cfg.n_nodes, oracle=True
        )
        for name, inp, cfg in cases
    ]
    runner = CampaignRunner(jobs=jobs, use_cache=False, campaign_seed=seed)
    outcomes = {"per-channel": [], "whole-program": []}
    for _, outcome in zip(cases, runner.run(specs)):
        per_channel = payload_channel_features(outcome.payload)
        actual = Mode(outcome.payload["oracle"]["mode"])

        labels = {
            ch: clf.classify_channel_detailed(fv).mode
            for ch, fv in per_channel.items()
        }
        outcomes["per-channel"].append(classify_case(labels) is actual)

        pooled = _whole_program_label(clf, per_channel)
        outcomes["whole-program"].append(pooled is actual)

    return [
        AblationRow(
            setting=mode,
            accuracy=float(np.mean(hits)),
            detail=f"{sum(hits)}/{len(hits)} cases",
        )
        for mode, hits in outcomes.items()
    ]


def ablate_machine_parameters(
    seed: int = 0, jobs: int | None = None
) -> list[AblationRow]:
    """Sensitivity of end-to-end detection to the machine model's knobs.

    Varies interconnect bandwidth and the queueing-inflation cap around the
    defaults and re-runs a small train-and-detect slice (AMG2006 must stay
    detected everywhere, EP must stay clean).  The pipeline retrains per
    machine, so the claim under test is *robustness of the method*, not of
    one fitted threshold.  Non-default machines ride through the campaign
    as scalar deltas against the default topology/latency model.
    """
    import dataclasses

    from repro.core.training import train_default_classifier
    from repro.numasim.latency import LatencyModel
    from repro.numasim.topology import NumaTopology
    from repro.parallel import CampaignRunner
    from repro.parallel.shards import (
        benchmark_workload_spec,
        machine_spec,
        payload_channel_features,
        profile_shard,
    )

    settings: dict[str, Machine] = {
        "defaults": Machine(),
        "links x0.7": Machine(
            topology=dataclasses.replace(
                NumaTopology(), link_bw_bytes_per_cycle=4.7 * 0.7
            )
        ),
        "links x1.5": Machine(
            topology=dataclasses.replace(
                NumaTopology(), link_bw_bytes_per_cycle=4.7 * 1.5
            )
        ),
        "inflation cap 4": Machine(
            latency_model=dataclasses.replace(LatencyModel(), max_inflation=4.0)
        ),
        "inflation cap 16": Machine(
            latency_model=dataclasses.replace(LatencyModel(), max_inflation=16.0)
        ),
    }

    slice_specs = [("AMG2006", "30x30x30", Mode.RMC), ("EP", "C", Mode.GOOD)]
    configs = (RunConfig(32, 4), RunConfig(64, 4))
    rows = []
    for name, machine in settings.items():
        clf, _ = train_default_classifier(machine, seed=seed, jobs=jobs)
        mspec = machine_spec(machine)
        cases = [
            (bench, inp, expected, cfg)
            for bench, inp, expected in slice_specs
            for cfg in configs
        ]
        specs = [
            profile_shard(
                benchmark_workload_spec(bench, inp),
                cfg.n_threads,
                cfg.n_nodes,
                machine=mspec,
            )
            for bench, inp, _, cfg in cases
        ]
        runner = CampaignRunner(jobs=jobs, use_cache=False, campaign_seed=seed)
        hits = []
        for (_, _, expected, _), outcome in zip(cases, runner.run(specs)):
            labels = {
                ch: clf.classify_channel_detailed(fv).mode
                for ch, fv in payload_channel_features(outcome.payload).items()
            }
            hits.append(classify_case(labels) is expected)
        rows.append(
            AblationRow(
                setting=name,
                accuracy=float(np.mean(hits)),
                detail=f"{sum(hits)}/{len(hits)} slice cases",
            )
        )
    return rows


def _whole_program_label(clf: DrBwClassifier, per_channel: dict) -> Mode:
    """Classify pooled features: every remote channel's vector merged."""
    if not per_channel:
        return Mode.GOOD
    vectors = [per_channel[ch].values for ch in sorted(per_channel)]
    pooled = np.mean(np.stack(vectors), axis=0)
    # Counts pool additively rather than averaging.
    for i, name in enumerate(TABLE1_FEATURE_NAMES):
        if name.startswith("num_"):
            pooled[i] = sum(v[i] for v in vectors)
    from repro.core.classifier import MIN_CHANNEL_SUPPORT
    from repro.core.features import FeatureVector

    fv = FeatureVector(names=TABLE1_FEATURE_NAMES, values=pooled)
    if fv["num_remote_dram_samples"] < MIN_CHANNEL_SUPPORT:
        return Mode.GOOD
    return clf.classify_channel(fv)


def ablate_heuristics(seed: int = 0) -> list[AblationRow]:
    """The learned tree vs the Related-Work heuristics, on the training set.

    The 192 mini-program runs are exactly the population that exposes the
    heuristics: the 48 bandit runs carry heavy remote traffic *without*
    contention (defeating the remote-access-count heuristic), and sparse
    runs with interference outliers defeat fixed latency thresholds.  The
    tree's score is out-of-fold (10-fold CV); the fixed heuristics have
    nothing to fit, so they score on the full set.
    """
    from repro.eval.experiments import shared_classifier

    clf, instances = shared_classifier(seed)
    X, y = training_matrix(list(instances))
    cv = cross_validate(clf, X, y, k=10, seed=seed)

    from repro.core.features import FeatureVector

    detectors = {
        "latency threshold": LatencyThresholdHeuristic(),
        "remote-access count": RemoteAccessHeuristic(),
    }
    rows = [
        AblationRow(
            setting="DR-BW tree (out-of-fold)",
            accuracy=cv.accuracy,
            detail=f"{round(cv.accuracy * len(y))}/{len(y)} runs",
        )
    ]
    for name, det in detectors.items():
        hits = []
        for row, label in zip(X, y):
            fv = FeatureVector(names=TABLE1_FEATURE_NAMES, values=row)
            hits.append(det.classify_channel(fv).value == label)
        rows.append(
            AblationRow(
                setting=name,
                accuracy=float(np.mean(hits)),
                detail=f"{sum(hits)}/{len(hits)} runs",
            )
        )
    return rows
