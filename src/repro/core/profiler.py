"""DR-BW's profiler: sampling, channel association, object attribution.

This is Section IV of the paper as a library component:

* run the (simulated) program with PEBS-style address sampling enabled —
  sampling costs cycles, so the profiled run carries a small per-access
  stall (the Table VII overhead model: one interrupt per ``period``
  accesses plus ``malloc``-family interception);
* derive each sample's **source node** from its CPU id and the hardware
  topology, and its **target node** by looking the sampled address up
  through libnuma (Section IV.B) — associating the sample with a directed
  channel;
* attribute each sample to the **data object** whose allocation range
  contains the address (Section IV.C); static/stack data is not tracked,
  so such samples stay unattributed (``object_id == -1``), exactly like
  the paper's tool in the SP and LULESH case studies.

The profiler degrades gracefully under lossy collection: samples whose
address cannot be mapped or whose node lookup transiently fails are
**quarantined** into a structured :class:`DroppedSampleReport` (counted by
reason) instead of aborting the run, and remote channels whose surviving
batch falls below a configurable floor are **re-sampled** with a reseeded
sampler at a progressively shorter period (bounded attempts).  Fault
injection itself lives in :mod:`repro.faults`; set
:attr:`ProfilerConfig.faults` to enable it.
"""

from __future__ import annotations

import dataclasses
import logging
from dataclasses import dataclass, field

import numpy as np

from repro.core.features import FeatureVector, SampleSet, extract_channel_features
from repro.numasim.machine import Machine
from repro.pmu.sample import MemorySample, RawSampleBatch
from repro.pmu.sampler import AddressSampler, SamplerConfig
from repro.osl.threads import bind_threads_tt_nn
from repro.telemetry import capture_run_timelines, get_telemetry
from repro.types import Channel, MemLevel
from repro.workloads.base import CompiledWorkload, Workload, compile_workload
from repro.workloads.runner import WorkloadRun, run_workload

logger = logging.getLogger(__name__)

__all__ = [
    "ProfilerConfig",
    "DroppedSampleReport",
    "ProfileResult",
    "DrBwProfiler",
]


@dataclass(frozen=True)
class ProfilerConfig:
    """Profiler knobs.

    ``interrupt_cost_cycles`` is the price of one PEBS sample delivery
    (interrupt, record parsing, allocation-table lookup); at the paper's
    1-in-2000 period a ~800-cycle interrupt amortizes to less
    than one cycle per access — inside the <10% overhead the paper reports.

    ``faults`` (a :class:`repro.faults.FaultPlan`, or ``None``) injects
    collection failures; ``resample_floor`` / ``resample_attempts`` bound
    the retry loop that re-samples remote channels whose batch came back
    too thin — each attempt reseeds the sampler and divides the period by
    ``resample_backoff`` (shorter period ⇒ more samples).
    """

    sampler: SamplerConfig = field(default_factory=SamplerConfig)
    interrupt_cost_cycles: float = 800.0
    alloc_intercept_cost_cycles: float = 2000.0
    faults: object | None = None  # repro.faults.FaultPlan, kept untyped to avoid a cycle
    resample_floor: int = 0
    resample_attempts: int = 3
    resample_backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.resample_floor < 0 or self.resample_attempts < 0:
            raise ValueError("resample_floor and resample_attempts must be >= 0")
        if self.resample_backoff < 1.0:
            raise ValueError("resample_backoff must be >= 1")

    @property
    def stall_per_access(self) -> float:
        """Amortized sampling cost injected per memory access."""
        return self.interrupt_cost_cycles / self.sampler.period


@dataclass
class DroppedSampleReport:
    """What the profiler lost, and why — the degradation ledger.

    ``quarantined`` counts samples the profiler received but had to
    discard during attribution, by reason; ``injected`` counts the
    perturbations the fault layer reports having applied upstream
    (informational — an injected corruption that still mapped somewhere is
    *not* quarantined, it is a silent mis-attribution, as on real
    hardware).
    """

    observed: int = 0
    kept: int = 0
    quarantined: dict[str, int] = field(default_factory=dict)
    injected: dict[str, int] = field(default_factory=dict)
    resample_attempts: int = 0
    resampled_channels: tuple[Channel, ...] = ()

    @property
    def total_quarantined(self) -> int:
        return sum(self.quarantined.values())

    @property
    def drop_fraction(self) -> float:
        """Fraction of observed samples quarantined (0 when none observed)."""
        return self.total_quarantined / self.observed if self.observed else 0.0

    @property
    def is_clean(self) -> bool:
        """True when nothing was quarantined, injected, or retried."""
        return (
            not self.total_quarantined
            and not any(self.injected.values())
            and self.resample_attempts == 0
        )

    def count(self, reason: str, n: int) -> None:
        if n:
            self.quarantined[reason] = self.quarantined.get(reason, 0) + int(n)


@dataclass
class ProfileResult:
    """Everything DR-BW collected about one profiled execution."""

    workload: Workload
    run: WorkloadRun
    sample_set: SampleSet
    config: ProfilerConfig
    dropped: DroppedSampleReport = field(default_factory=DroppedSampleReport)

    @property
    def samples(self) -> list[MemorySample]:
        """Per-record attributed samples (materialized on demand)."""
        return self.sample_set.to_samples()

    @property
    def compiled(self) -> CompiledWorkload:
        return self.run.compiled

    @property
    def total_cycles(self) -> float:
        """Execution time of the profiled run, in cycles."""
        return self.run.total_cycles

    def channels_with_remote_samples(self) -> list[Channel]:
        """Remote channels that observed at least one remote-DRAM sample."""
        return self.sample_set.remote_channels()

    def features_for(self, channel: Channel) -> FeatureVector:
        """Table I feature vector for one channel."""
        return extract_channel_features(self.sample_set, channel)

    def features_per_channel(self) -> dict[Channel, FeatureVector]:
        """Table I features for every channel with remote-DRAM samples."""
        channels = self.channels_with_remote_samples()
        with get_telemetry().span("features.extract", n_channels=len(channels)):
            return {
                ch: extract_channel_features(self.sample_set, ch)
                for ch in channels
            }


class DrBwProfiler:
    """Run a workload under DR-BW's sampling profiler."""

    def __init__(self, machine: Machine, config: ProfilerConfig | None = None) -> None:
        self.machine = machine
        self.config = config or ProfilerConfig()

    def profile(
        self,
        workload: Workload,
        n_threads: int,
        n_nodes: int,
        seed: int | None = None,
    ) -> ProfileResult:
        """Execute ``workload`` with sampling on; return attributed samples."""
        tel = get_telemetry()
        with tel.span(
            "profiler.profile",
            workload=workload.name,
            n_threads=n_threads,
            n_nodes=n_nodes,
        ) as sp:
            run = run_workload(
                workload,
                self.machine,
                n_threads=n_threads,
                n_nodes=n_nodes,
                extra_stall_cycles_per_access=self.config.stall_per_access,
            )
            sampler_cfg = self.config.sampler
            if seed is not None:
                sampler_cfg = dataclasses.replace(sampler_cfg, seed=seed)

            report = DroppedSampleReport()
            batch, lookup_failed = self._collect(run, sampler_cfg, report, attempt=0)
            fields = self._attribute(batch, run.compiled, lookup_failed, report)
            fields = self._resample_thin_channels(run, sampler_cfg, fields, report)
            report.kept = int(fields["address"].shape[0])
            sp.set(observed=report.observed, kept=report.kept)
            if tel.enabled:
                self._record_metrics(tel, fields, report)
                # Snapshot, don't accumulate: a session may profile many
                # runs (training collects 192), and the artifact's timeline
                # view is of the *measured* run — always the last one.
                tel.timelines[:] = capture_run_timelines(run.result)
            return ProfileResult(
                workload=workload,
                run=run,
                sample_set=SampleSet.from_arrays(**fields),
                config=self.config,
                dropped=report,
            )

    def profile_live(
        self,
        workload: Workload,
        n_threads: int,
        n_nodes: int,
        monitor,
        seed: int | None = None,
        interval_cycles: float | None = None,
    ) -> ProfileResult:
        """Profile ``workload`` while streaming samples into ``monitor``.

        The streaming counterpart of :meth:`profile`: instead of thinning
        the run's access buckets after it finishes, the engine's interval
        hook delivers per-interval access rates *during* execution; each
        interval is sampled, attributed, and pushed into ``monitor`` (any
        object with an ``observe_interval(record, fields, observed=...,
        quarantined=...)`` method — canonically
        :class:`repro.monitor.LiveMonitor`) before the next interval is
        simulated.  Per-interval Poisson thinning is distributionally
        identical to end-of-run thinning, so the returned
        :class:`ProfileResult` carries the same sample statistics as the
        batch path.

        ``interval_cycles`` bounds the monitoring interval length (defaults
        to ``monitor.interval_cycles`` when the monitor declares one, else
        one interval per stationary span).  Thin-channel resampling is a
        post-hoc repair and deliberately does not run in streaming mode —
        degraded channels surface through the monitor's verdict/alert
        stream instead.
        """
        tel = get_telemetry()
        with tel.span(
            "profiler.profile_live",
            workload=workload.name,
            n_threads=n_threads,
            n_nodes=n_nodes,
        ) as sp:
            bindings = bind_threads_tt_nn(self.machine.topology, n_threads, n_nodes)
            compiled = compile_workload(workload, self.machine.topology, bindings)
            sampler_cfg = self.config.sampler
            if seed is not None:
                sampler_cfg = dataclasses.replace(sampler_cfg, seed=seed)
            sampler: AddressSampler | object = AddressSampler(
                sampler_cfg,
                page_table=compiled.page_table,
                latency_model=self.machine.latency_model,
            )
            page_table = compiled.page_table
            plan = self.config.faults
            faulty_sampler = None
            faulty_table = None
            if plan is not None:
                from repro.faults import FaultyAddressSampler, FaultyPageTable

                faulty_sampler = FaultyAddressSampler(
                    sampler, plan, n_cpus=self.machine.topology.n_cpus
                )
                faulty_table = FaultyPageTable(page_table, plan)
                sampler, page_table = faulty_sampler, faulty_table

            if interval_cycles is None:
                interval_cycles = getattr(monitor, "interval_cycles", None)

            report = DroppedSampleReport()
            topo = self.machine.topology
            chunks: list[dict[str, np.ndarray]] = []
            n_intervals = 0
            seen_lookup_failures = 0

            def on_interval(record) -> None:
                nonlocal n_intervals, seen_lookup_failures
                n_intervals += 1
                batch = sampler.sample_interval(record)
                observed = len(batch)
                report.observed += observed
                src = (batch.cpu % topo.n_cores) // topo.cores_per_socket
                dst = page_table.nodes_of_addresses(
                    batch.address, accessor_nodes=src, on_unmapped="ignore"
                )
                bad = dst < 0
                n_bad = int(bad.sum())
                if faulty_table is not None:
                    delta = faulty_table.injected_failures - seen_lookup_failures
                    seen_lookup_failures = faulty_table.injected_failures
                    transient = min(delta, n_bad)
                    report.count("lookup_failure", transient)
                    report.count("unmapped_address", n_bad - transient)
                else:
                    report.count("unmapped_address", n_bad)
                if n_bad:
                    keep = ~bad
                    batch = batch.select(keep)
                    src = src[keep]
                    dst = dst[keep]
                fields = {
                    "address": batch.address,
                    "cpu": batch.cpu,
                    "thread_id": batch.thread_id,
                    "level": batch.level,
                    "latency": batch.latency,
                    "src_node": np.asarray(src, dtype=np.int64),
                    "dst_node": np.asarray(dst, dtype=np.int64),
                    "object_id": compiled.allocator.object_ids_of_addresses(batch.address),
                }
                chunks.append(fields)
                monitor.observe_interval(
                    record, fields, observed=observed, quarantined=n_bad
                )

            result = self.machine.run(
                compiled.programs,
                barriers=workload.barriers,
                extra_stall_cycles_per_access=self.config.stall_per_access,
                interval_listener=on_interval,
                interval_max_cycles=interval_cycles,
            )
            run = WorkloadRun(compiled=compiled, result=result)

            if faulty_sampler is not None:
                for reason, n in faulty_sampler.injected.items():
                    if n:
                        report.injected[reason] = report.injected.get(reason, 0) + n
            if faulty_table is not None and faulty_table.injected_failures:
                report.injected["lookup_failure"] = faulty_table.injected_failures

            fields = self._concat_chunks(chunks)
            report.kept = int(fields["address"].shape[0])
            sp.set(observed=report.observed, kept=report.kept, intervals=n_intervals)
            if tel.enabled:
                self._record_metrics(tel, fields, report)
                tel.timelines[:] = capture_run_timelines(result)
            finalize = getattr(monitor, "finalize", None)
            if finalize is not None:
                finalize(run)
            return ProfileResult(
                workload=workload,
                run=run,
                sample_set=SampleSet.from_arrays(**fields),
                config=self.config,
                dropped=report,
            )

    @staticmethod
    def _concat_chunks(chunks: list[dict[str, np.ndarray]]) -> dict[str, np.ndarray]:
        """Union of per-interval field dicts (typed empties when no samples)."""
        if chunks:
            return {
                name: np.concatenate([c[name] for c in chunks])
                for name in chunks[0]
            }
        empty_i = lambda: np.zeros(0, dtype=np.int64)  # noqa: E731
        return {
            "address": empty_i(),
            "cpu": empty_i(),
            "thread_id": empty_i(),
            "level": empty_i(),
            "latency": np.zeros(0, dtype=np.float64),
            "src_node": empty_i(),
            "dst_node": empty_i(),
            "object_id": empty_i(),
        }

    def measure_overhead(
        self, workload: Workload, n_threads: int, n_nodes: int
    ) -> tuple[float, float, float]:
        """(cycles without profiling, cycles with, overhead fraction).

        The Table VII experiment: the same run with sampling off and on.
        """
        plain = run_workload(workload, self.machine, n_threads, n_nodes)
        profiled = run_workload(
            workload,
            self.machine,
            n_threads,
            n_nodes,
            extra_stall_cycles_per_access=self.config.stall_per_access,
        )
        overhead = profiled.total_cycles / plain.total_cycles - 1.0
        return plain.total_cycles, profiled.total_cycles, overhead

    # -- internals ----------------------------------------------------------------

    def _record_metrics(
        self, tel, fields: dict[str, np.ndarray], report: DroppedSampleReport
    ) -> None:
        """Push the profile's sample statistics into the metrics registry.

        Everything here is vectorized over the final attributed batch;
        the per-channel loop runs once per observed remote channel (a
        dozen entries on the 4-socket default machine).
        """
        m = tel.metrics
        m.counter("profiler.samples.observed").inc(report.observed)
        m.counter("profiler.samples.kept").inc(report.kept)
        for reason, n in report.quarantined.items():
            m.counter(f"profiler.quarantined.{reason}").inc(n)
        for reason, n in report.injected.items():
            if n:
                m.counter(f"profiler.injected.{reason}").inc(n)
        m.counter("profiler.resample.attempts").inc(report.resample_attempts)
        m.counter("profiler.resample.channels").inc(len(report.resampled_channels))

        levels, counts = np.unique(fields["level"], return_counts=True)
        for lvl, n in zip(levels, counts):
            name = MemLevel(int(lvl)).name.lower()
            m.counter(f"profiler.samples.level.{name}").inc(int(n))

        remote = (fields["src_node"] != fields["dst_node"]) & (
            fields["level"] == int(MemLevel.REMOTE_DRAM)
        )
        if np.any(remote):
            src = fields["src_node"][remote]
            dst = fields["dst_node"][remote]
            lat = fields["latency"][remote]
            pairs = np.unique(np.stack([src, dst], axis=1), axis=0)
            for s, d in pairs:
                on_channel = (src == s) & (dst == d)
                m.histogram(f"profiler.remote_latency.{s}->{d}").observe_many(
                    lat[on_channel]
                )

    def _collect(
        self,
        run: WorkloadRun,
        sampler_cfg: SamplerConfig,
        report: DroppedSampleReport,
        attempt: int,
    ) -> tuple[RawSampleBatch, np.ndarray]:
        """One sampling pass: the (possibly faulted) batch plus the mask of
        samples whose node lookup failed."""
        with get_telemetry().span("profiler.collect", attempt=attempt) as sp:
            batch, lookup_failed = self._collect_inner(
                run, sampler_cfg, report, attempt
            )
            sp.set(observed=len(batch), lookup_failed=int(lookup_failed.sum()))
            return batch, lookup_failed

    def _collect_inner(
        self,
        run: WorkloadRun,
        sampler_cfg: SamplerConfig,
        report: DroppedSampleReport,
        attempt: int,
    ) -> tuple[RawSampleBatch, np.ndarray]:
        sampler: AddressSampler | object = AddressSampler(
            sampler_cfg,
            page_table=run.compiled.page_table,
            latency_model=self.machine.latency_model,
        )
        page_table = run.compiled.page_table
        plan = self.config.faults
        faulty_sampler = None
        faulty_table = None
        if plan is not None:
            from repro.faults import FaultyAddressSampler, FaultyPageTable

            attempt_plan = plan.with_seed(plan.seed + 7919 * attempt) if attempt else plan
            faulty_sampler = FaultyAddressSampler(
                sampler, attempt_plan, n_cpus=self.machine.topology.n_cpus
            )
            faulty_table = FaultyPageTable(page_table, attempt_plan)
            sampler, page_table = faulty_sampler, faulty_table

        batch = sampler.sample_run_batch(run.result)
        report.observed += len(batch)

        topo = self.machine.topology
        src = (batch.cpu % topo.n_cores) // topo.cores_per_socket
        dst = page_table.nodes_of_addresses(
            batch.address, accessor_nodes=src, on_unmapped="ignore"
        )
        lookup_failed = dst < 0
        if faulty_sampler is not None:
            for reason, n in faulty_sampler.injected.items():
                if n:
                    report.injected[reason] = report.injected.get(reason, 0) + n
        if faulty_table is not None and faulty_table.injected_failures:
            report.injected["lookup_failure"] = (
                report.injected.get("lookup_failure", 0) + faulty_table.injected_failures
            )
            # Transient libnuma failures vs. genuinely unmappable addresses:
            # the wrapper knows how many it failed; the remainder of the bad
            # lookups never mapped at all.
            transient = min(faulty_table.injected_failures, int(lookup_failed.sum()))
            report.count("lookup_failure", transient)
            report.count("unmapped_address", int(lookup_failed.sum()) - transient)
        else:
            report.count("unmapped_address", int(lookup_failed.sum()))
        return batch, lookup_failed

    def _attribute(
        self,
        batch: RawSampleBatch,
        compiled: CompiledWorkload,
        lookup_failed: np.ndarray,
        report: DroppedSampleReport,
    ) -> dict[str, np.ndarray]:
        """Vectorized channel association + data-object attribution.

        Source nodes come from CPU ids and the topology; target nodes from
        the libnuma page-table lookup; object ids from the allocation
        table's range index (heap objects only, -1 otherwise).  Samples
        whose lookup failed are quarantined (already counted by
        :meth:`_collect`) rather than crashing the columnar SampleSet.
        """
        with get_telemetry().span("profiler.attribute", n_samples=len(batch)):
            return self._attribute_inner(batch, compiled, lookup_failed, report)

    def _attribute_inner(
        self,
        batch: RawSampleBatch,
        compiled: CompiledWorkload,
        lookup_failed: np.ndarray,
        report: DroppedSampleReport,
    ) -> dict[str, np.ndarray]:
        topo = self.machine.topology
        if np.any(lookup_failed):
            batch = batch.select(~lookup_failed)
        cores = batch.cpu % topo.n_cores
        src = cores // topo.cores_per_socket
        dst = compiled.page_table.nodes_of_addresses(batch.address, accessor_nodes=src)
        object_id = compiled.allocator.object_ids_of_addresses(batch.address)
        return {
            "address": batch.address,
            "cpu": batch.cpu,
            "thread_id": batch.thread_id,
            "level": batch.level,
            "latency": batch.latency,
            "src_node": np.asarray(src, dtype=np.int64),
            "dst_node": dst,
            "object_id": object_id,
        }

    def _resample_thin_channels(
        self,
        run: WorkloadRun,
        sampler_cfg: SamplerConfig,
        fields: dict[str, np.ndarray],
        report: DroppedSampleReport,
    ) -> dict[str, np.ndarray]:
        """Re-sample remote channels whose batch fell below the floor.

        Bounded attempts; each attempt reseeds the sampler and divides the
        period by ``resample_backoff`` so the retry collects more records
        per access.  Only samples landing on the deficient channels are
        merged in — healthy channels keep their first-pass statistics.
        """
        cfg = self.config
        if cfg.resample_floor <= 0 or cfg.resample_attempts <= 0:
            return fields

        def thin_channels(f: dict[str, np.ndarray]) -> set[tuple[int, int]]:
            remote = (f["src_node"] != f["dst_node"]) & (
                f["level"] == int(MemLevel.REMOTE_DRAM)
            )
            if not np.any(remote):
                return set()
            pairs, counts = np.unique(
                np.stack([f["src_node"][remote], f["dst_node"][remote]], axis=1),
                axis=0,
                return_counts=True,
            )
            return {
                (int(s), int(d))
                for (s, d), c in zip(pairs, counts)
                if c < cfg.resample_floor
            }

        deficient = thin_channels(fields)
        resample_span = get_telemetry().span(
            "profiler.resample", floor=cfg.resample_floor
        )
        with resample_span as sp:
            fields, attempt, retried = self._resample_loop(
                run, sampler_cfg, fields, report, deficient, thin_channels
            )
            sp.set(attempts=attempt, channels=len(retried))

        report.resample_attempts = attempt
        report.resampled_channels = tuple(Channel(s, d) for s, d in sorted(retried))
        return fields

    def _resample_loop(
        self,
        run: WorkloadRun,
        sampler_cfg: SamplerConfig,
        fields: dict[str, np.ndarray],
        report: DroppedSampleReport,
        deficient: set[tuple[int, int]],
        thin_channels,
    ) -> tuple[dict[str, np.ndarray], int, set[tuple[int, int]]]:
        cfg = self.config
        attempt = 0
        retried: set[tuple[int, int]] = set()
        while deficient and attempt < cfg.resample_attempts:
            attempt += 1
            retry_cfg = dataclasses.replace(
                sampler_cfg,
                seed=sampler_cfg.seed + 7919 * attempt,
                period=max(1, int(sampler_cfg.period / cfg.resample_backoff**attempt)),
            )
            logger.info(
                "resampling %d thin channel(s) (attempt %d, period %d)",
                len(deficient), attempt, retry_cfg.period,
            )
            extra_report = DroppedSampleReport()
            batch, lookup_failed = self._collect(run, retry_cfg, extra_report, attempt)
            extra = self._attribute(batch, run.compiled, lookup_failed, extra_report)
            for reason, n in extra_report.quarantined.items():
                report.count(reason, n)
            for reason, n in extra_report.injected.items():
                report.injected[reason] = report.injected.get(reason, 0) + n
            report.observed += extra_report.observed

            on_deficient = np.zeros(extra["address"].shape[0], dtype=bool)
            for s, d in deficient:
                on_deficient |= (extra["src_node"] == s) & (extra["dst_node"] == d)
            if np.any(on_deficient):
                fields = {
                    name: np.concatenate([fields[name], extra[name][on_deficient]])
                    for name in fields
                }
            retried |= deficient
            deficient = {ch for ch in thin_channels(fields) if ch in deficient}
        return fields, attempt, retried
