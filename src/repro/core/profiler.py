"""DR-BW's profiler: sampling, channel association, object attribution.

This is Section IV of the paper as a library component:

* run the (simulated) program with PEBS-style address sampling enabled —
  sampling costs cycles, so the profiled run carries a small per-access
  stall (the Table VII overhead model: one interrupt per ``period``
  accesses plus ``malloc``-family interception);
* derive each sample's **source node** from its CPU id and the hardware
  topology, and its **target node** by looking the sampled address up
  through libnuma (Section IV.B) — associating the sample with a directed
  channel;
* attribute each sample to the **data object** whose allocation range
  contains the address (Section IV.C); static/stack data is not tracked,
  so such samples stay unattributed (``object_id == -1``), exactly like
  the paper's tool in the SP and LULESH case studies.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.core.features import FeatureVector, SampleSet, extract_channel_features
from repro.numasim.machine import Machine
from repro.pmu.sample import MemorySample
from repro.pmu.sampler import AddressSampler, SamplerConfig
from repro.types import Channel
from repro.workloads.base import CompiledWorkload, Workload
from repro.workloads.runner import WorkloadRun, run_workload

__all__ = ["ProfilerConfig", "ProfileResult", "DrBwProfiler"]


@dataclass(frozen=True)
class ProfilerConfig:
    """Profiler knobs.

    ``interrupt_cost_cycles`` is the price of one PEBS sample delivery
    (interrupt, record parsing, allocation-table lookup); at the paper's
    1-in-2000 period a ~800-cycle interrupt amortizes to less
    than one cycle per access — inside the <10% overhead the paper reports.
    """

    sampler: SamplerConfig = field(default_factory=SamplerConfig)
    interrupt_cost_cycles: float = 800.0
    alloc_intercept_cost_cycles: float = 2000.0

    @property
    def stall_per_access(self) -> float:
        """Amortized sampling cost injected per memory access."""
        return self.interrupt_cost_cycles / self.sampler.period


@dataclass
class ProfileResult:
    """Everything DR-BW collected about one profiled execution."""

    workload: Workload
    run: WorkloadRun
    sample_set: SampleSet
    config: ProfilerConfig

    @property
    def samples(self) -> list[MemorySample]:
        """Per-record attributed samples (materialized on demand)."""
        return self.sample_set.to_samples()

    @property
    def compiled(self) -> CompiledWorkload:
        return self.run.compiled

    @property
    def total_cycles(self) -> float:
        """Execution time of the profiled run, in cycles."""
        return self.run.total_cycles

    def channels_with_remote_samples(self) -> list[Channel]:
        """Remote channels that observed at least one remote-DRAM sample."""
        return self.sample_set.remote_channels()

    def features_for(self, channel: Channel) -> FeatureVector:
        """Table I feature vector for one channel."""
        return extract_channel_features(self.sample_set, channel)

    def features_per_channel(self) -> dict[Channel, FeatureVector]:
        """Table I features for every channel with remote-DRAM samples."""
        return {
            ch: extract_channel_features(self.sample_set, ch)
            for ch in self.channels_with_remote_samples()
        }


class DrBwProfiler:
    """Run a workload under DR-BW's sampling profiler."""

    def __init__(self, machine: Machine, config: ProfilerConfig | None = None) -> None:
        self.machine = machine
        self.config = config or ProfilerConfig()

    def profile(
        self,
        workload: Workload,
        n_threads: int,
        n_nodes: int,
        seed: int | None = None,
    ) -> ProfileResult:
        """Execute ``workload`` with sampling on; return attributed samples."""
        run = run_workload(
            workload,
            self.machine,
            n_threads=n_threads,
            n_nodes=n_nodes,
            extra_stall_cycles_per_access=self.config.stall_per_access,
        )
        sampler_cfg = self.config.sampler
        if seed is not None:
            sampler_cfg = dataclasses.replace(sampler_cfg, seed=seed)
        sampler = AddressSampler(
            sampler_cfg,
            page_table=run.compiled.page_table,
            latency_model=self.machine.latency_model,
        )
        batch = sampler.sample_run_batch(run.result)
        sample_set = self._attribute(batch, run.compiled)
        return ProfileResult(
            workload=workload,
            run=run,
            sample_set=sample_set,
            config=self.config,
        )

    def measure_overhead(
        self, workload: Workload, n_threads: int, n_nodes: int
    ) -> tuple[float, float, float]:
        """(cycles without profiling, cycles with, overhead fraction).

        The Table VII experiment: the same run with sampling off and on.
        """
        plain = run_workload(workload, self.machine, n_threads, n_nodes)
        profiled = run_workload(
            workload,
            self.machine,
            n_threads,
            n_nodes,
            extra_stall_cycles_per_access=self.config.stall_per_access,
        )
        overhead = profiled.total_cycles / plain.total_cycles - 1.0
        return plain.total_cycles, profiled.total_cycles, overhead

    # -- internals ----------------------------------------------------------------

    def _attribute(self, batch, compiled: CompiledWorkload) -> SampleSet:
        """Vectorized channel association + data-object attribution.

        Source nodes come from CPU ids and the topology; target nodes from
        the libnuma page-table lookup; object ids from the allocation
        table's range index (heap objects only, -1 otherwise).
        """
        topo = self.machine.topology
        cores = batch.cpu % topo.n_cores
        src = cores // topo.cores_per_socket
        dst = compiled.page_table.nodes_of_addresses(batch.address, accessor_nodes=src)
        object_id = compiled.allocator.object_ids_of_addresses(batch.address)
        return SampleSet.from_arrays(
            address=batch.address,
            cpu=batch.cpu,
            thread_id=batch.thread_id,
            level=batch.level,
            latency=batch.latency,
            src_node=np.asarray(src, dtype=np.int64),
            dst_node=dst,
            object_id=object_id,
        )
