"""DR-BW's core: profiler, feature extraction, classifier, diagnoser.

This package is the paper's contribution proper:

* :mod:`repro.core.profiler` — runs a workload with PEBS-style sampling,
  associates samples with interconnect channels, and attributes them to
  heap data objects (paper Section IV);
* :mod:`repro.core.features` — the candidate feature list and the 13
  selected features of Table I (Section V.B);
* :mod:`repro.core.selection` — the good-vs-rmc significance screen that
  produced Table I;
* :mod:`repro.core.dtree` — a from-scratch CART decision tree (the paper
  used Matlab's toolbox; sklearn is unavailable offline);
* :mod:`repro.core.training` — micro-benchmark training-set collection
  (Table II) and classifier fitting (Table III / Figure 3);
* :mod:`repro.core.classifier` — per-channel and per-case classification
  rules (Section VII.A);
* :mod:`repro.core.diagnoser` — Contribution Fraction metrics and
  root-cause ranking (Section VI);
* :mod:`repro.core.validation` — stratified k-fold cross-validation and
  confusion matrices;
* :mod:`repro.core.report` — human-readable diagnosis reports.
"""

from repro.core.profiler import DrBwProfiler, ProfileResult
from repro.core.features import FeatureVector, SampleSet, extract_channel_features
from repro.core.dtree import DecisionTreeClassifier
from repro.core.classifier import DrBwClassifier
from repro.core.diagnoser import Diagnoser, DiagnosisReport

__all__ = [
    "DrBwProfiler",
    "ProfileResult",
    "FeatureVector",
    "SampleSet",
    "extract_channel_features",
    "DecisionTreeClassifier",
    "DrBwClassifier",
    "Diagnoser",
    "DiagnosisReport",
]
