"""Model validation: stratified k-fold cross-validation, confusion matrices.

The paper validates its tree with *stratified 10-fold cross validation* on
the 192 training instances (Section V.D) and reports a confusion matrix
(Table III) plus derived rates (Table VI: correctness, false-positive rate,
false-negative rate).  These helpers reproduce that arithmetic for any
classifier exposing ``fit``/``predict``.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError

__all__ = [
    "ConfusionMatrix",
    "stratified_kfold_indices",
    "cross_validate",
    "CrossValidationResult",
]


@dataclass(frozen=True)
class ConfusionMatrix:
    """Counts of actual × predicted labels.

    ``labels[i]`` names row/column ``i``; ``counts[i, j]`` is the number of
    instances with actual class ``i`` predicted as class ``j``.
    """

    labels: tuple
    counts: np.ndarray

    def __post_init__(self) -> None:
        c = np.asarray(self.counts, dtype=np.int64)
        k = len(self.labels)
        if c.shape != (k, k):
            raise ModelError(f"confusion matrix shape {c.shape} for {k} labels")
        if np.any(c < 0):
            raise ModelError("confusion matrix counts must be >= 0")
        object.__setattr__(self, "counts", c)

    @classmethod
    def from_predictions(cls, actual: np.ndarray, predicted: np.ndarray, labels=None) -> "ConfusionMatrix":
        """Build from parallel actual/predicted label arrays."""
        actual = np.asarray(actual)
        predicted = np.asarray(predicted)
        if actual.shape != predicted.shape:
            raise ModelError("actual and predicted must have the same shape")
        if labels is None:
            labels = tuple(np.unique(np.concatenate([actual, predicted])))
        idx = {lab: i for i, lab in enumerate(labels)}
        counts = np.zeros((len(labels), len(labels)), dtype=np.int64)
        for a, p in zip(actual, predicted):
            counts[idx[a], idx[p]] += 1
        return cls(labels=tuple(labels), counts=counts)

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    @property
    def accuracy(self) -> float:
        """Overall correctness: trace / total."""
        if self.total == 0:
            return 0.0
        return float(np.trace(self.counts) / self.total)

    def rate(self, actual_label, predicted_label) -> float:
        """P(predicted | actual) — e.g. false-positive/negative rates."""
        i = self.labels.index(actual_label)
        j = self.labels.index(predicted_label)
        row = self.counts[i].sum()
        return float(self.counts[i, j] / row) if row else 0.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        width = max(len(str(l)) for l in self.labels) + 2
        header = " " * width + "".join(f"{str(l):>{width}}" for l in self.labels)
        rows = [
            f"{str(l):>{width}}" + "".join(f"{c:>{width}}" for c in row)
            for l, row in zip(self.labels, self.counts)
        ]
        return "\n".join([header] + rows)


def stratified_kfold_indices(
    y: np.ndarray, k: int, seed: int = 0
) -> list[np.ndarray]:
    """Index folds preserving class proportions.

    Each class's indices are shuffled and dealt round-robin into ``k``
    folds, so every fold's class mix matches the population within ±1.
    """
    y = np.asarray(y)
    if k < 2:
        raise ModelError(f"need k >= 2 folds, got {k}")
    if y.shape[0] < k:
        raise ModelError(f"cannot make {k} folds from {y.shape[0]} instances")
    rng = np.random.default_rng(seed)
    folds: list[list[int]] = [[] for _ in range(k)]
    for label in np.unique(y):
        idx = np.nonzero(y == label)[0]
        rng.shuffle(idx)
        for pos, i in enumerate(idx):
            folds[pos % k].append(int(i))
    return [np.array(sorted(f), dtype=np.int64) for f in folds]


@dataclass(frozen=True)
class CrossValidationResult:
    """Aggregated out-of-fold predictions."""

    confusion: ConfusionMatrix
    fold_accuracies: tuple[float, ...]

    @property
    def accuracy(self) -> float:
        """Pooled out-of-fold accuracy (the paper's 187/192 number)."""
        return self.confusion.accuracy


def cross_validate(model, X: np.ndarray, y: np.ndarray, k: int = 10, seed: int = 0) -> CrossValidationResult:
    """Stratified k-fold CV; returns pooled confusion matrix and fold scores.

    ``model`` is cloned per fold via ``copy.deepcopy`` after clearing any
    fitted state — any ``fit``/``predict`` object works.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    folds = stratified_kfold_indices(y, k=k, seed=seed)
    labels = tuple(np.unique(y))
    all_actual: list = []
    all_pred: list = []
    fold_acc: list[float] = []
    for test_idx in folds:
        train_mask = np.ones(len(y), dtype=bool)
        train_mask[test_idx] = False
        clone = copy.deepcopy(model)
        clone.fit(X[train_mask], y[train_mask])
        pred = clone.predict(X[test_idx])
        all_actual.extend(y[test_idx])
        all_pred.extend(pred)
        fold_acc.append(float((pred == y[test_idx]).mean()))
    confusion = ConfusionMatrix.from_predictions(
        np.array(all_actual), np.array(all_pred), labels=labels
    )
    return CrossValidationResult(confusion=confusion, fold_accuracies=tuple(fold_acc))
