"""Heuristic baseline detectors (the paper's Related Work, Section II.B).

DR-BW's pitch is that single predefined heuristics are brittle; these are
the two heuristics the paper names, implemented as drop-in channel
classifiers so the ablation benchmarks can race them against the learned
tree:

* :class:`LatencyThresholdHeuristic` — accesses above a fixed latency
  threshold are contentious ("[7]"; HPCToolkit-NUMA-style, with the
  threshold usually hand-tuned per machine);
* :class:`RemoteAccessHeuristic` — data allocated on one node but accessed
  from threads on all sockets implies contention ("[20]"), approximated
  observably as "many remote samples from several source nodes".

Both expose the same ``classify_channel`` / ``classify_profile`` surface
as :class:`~repro.core.classifier.DrBwClassifier`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.features import FeatureVector
from repro.core.profiler import ProfileResult
from repro.errors import ModelError
from repro.types import Channel, Mode

__all__ = ["LatencyThresholdHeuristic", "RemoteAccessHeuristic"]


@dataclass(frozen=True)
class LatencyThresholdHeuristic:
    """'Accesses that exceed a certain latency threshold are classified as
    contentious' — flag a channel when the fraction of its source node's
    samples above ``threshold_cycles`` exceeds ``flag_fraction``.

    The paper notes the threshold is hard to pick; the ablation sweeps it.
    """

    threshold_cycles: float = 500.0
    flag_fraction: float = 0.05

    def classify_channel(self, features: FeatureVector) -> Mode:
        ratio = self._ratio(features)
        return Mode.RMC if ratio > self.flag_fraction else Mode.GOOD

    def _ratio(self, features: FeatureVector) -> float:
        # Pick the closest Table-I ratio feature at or above the threshold.
        candidates = [
            (1000, "ratio_latency_above_1000"),
            (500, "ratio_latency_above_500"),
            (200, "ratio_latency_above_200"),
            (100, "ratio_latency_above_100"),
            (50, "ratio_latency_above_50"),
        ]
        eligible = [(t, n) for t, n in candidates if t >= self.threshold_cycles]
        if not eligible:
            raise ModelError(
                f"threshold {self.threshold_cycles} above the largest "
                "Table I latency bucket (1000 cycles)"
            )
        _, name = min(eligible)
        return features[name]

    def classify_profile(self, profile: ProfileResult) -> dict[Channel, Mode]:
        return {
            ch: self.classify_channel(fv)
            for ch, fv in profile.features_per_channel().items()
        }


@dataclass(frozen=True)
class RemoteAccessHeuristic:
    """'Data allocated in one NUMA socket is accessed from threads in all
    sockets' — flag a channel carrying at least ``min_remote_samples``
    remote-DRAM samples, regardless of latency.

    This is exactly the heuristic the bandit training runs defeat: heavy
    remote traffic at healthy latency is *not* contention.
    """

    min_remote_samples: int = 100

    def classify_channel(self, features: FeatureVector) -> Mode:
        return (
            Mode.RMC
            if features["num_remote_dram_samples"] >= self.min_remote_samples
            else Mode.GOOD
        )

    def classify_profile(self, profile: ProfileResult) -> dict[Channel, Mode]:
        return {
            ch: self.classify_channel(fv)
            for ch, fv in profile.features_per_channel().items()
        }
