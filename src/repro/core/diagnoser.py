"""DR-BW's root-cause diagnoser (Section VI).

Once the classifier flags contended channels, the diagnoser quantifies how
much each data object contributes to the contention:

* per channel ``c``: ``CF_c(A) = Samples(c, A) / Samples(c, ALL)``;
* across channels: the same ratio with both sums taken over all
  *contended* channels only (Section VI.A.b) — samples on calm channels
  are not analyzed.

``Samples(c, A)`` counts remote-DRAM samples on channel ``c`` that
attribute to object ``A``.  Samples whose address falls outside any
tracked heap object (static or stack data) are grouped under the
``UNATTRIBUTED`` pseudo-object — they still appear in the denominator,
mirroring the paper's LULESH and SP case studies where untracked static
objects limit what the diagnoser can blame.

The CF values over all (pseudo-)objects sum to 1.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

import numpy as np

from repro.core.features import SampleSet
from repro.core.profiler import ProfileResult
from repro.errors import ModelError
from repro.telemetry import get_telemetry
from repro.types import Channel, MemLevel, Mode

__all__ = ["UNATTRIBUTED", "ObjectContribution", "DiagnosisReport", "Diagnoser"]

logger = logging.getLogger(__name__)

#: Pseudo-object id for samples outside any tracked heap allocation.
UNATTRIBUTED = -1


@dataclass(frozen=True)
class ObjectContribution:
    """One ranked entry of a diagnosis."""

    object_id: int
    name: str
    site: str
    cf: float
    n_samples: int

    @property
    def is_unattributed(self) -> bool:
        return self.object_id == UNATTRIBUTED


@dataclass(frozen=True)
class DiagnosisReport:
    """Ranked contribution fractions over contended channels.

    ``attribution_coverage`` is the fraction of the analyzed remote-DRAM
    samples that attributed to a tracked heap object — the paper's SP and
    LULESH studies show exactly this number limiting what the diagnoser
    can blame, and under lossy collection it tells the reader how much of
    the ranking rests on resolvable data.
    """

    workload_name: str
    contended_channels: tuple[Channel, ...]
    contributions: tuple[ObjectContribution, ...]
    attribution_coverage: float = 1.0

    def top(self, k: int = 5) -> tuple[ObjectContribution, ...]:
        """The ``k`` largest contributors."""
        return self.contributions[:k]

    def cf_of(self, name: str) -> float:
        """CF of the named object (0 when absent)."""
        for c in self.contributions:
            if c.name == name:
                return c.cf
        return 0.0

    @property
    def total_cf(self) -> float:
        """Sum of all CF values (1.0 when any samples exist)."""
        return sum(c.cf for c in self.contributions)


class Diagnoser:
    """Compute Contribution Fractions and rank root causes."""

    def cf_per_channel(
        self, samples: SampleSet, channel: Channel
    ) -> dict[int, float]:
        """``CF_c(A)`` for every object with samples on ``channel``."""
        if not channel.is_remote:
            raise ModelError(f"diagnosis is per remote channel, got {channel}")
        mask = samples.on_channel(channel) & samples.at_level(MemLevel.REMOTE_DRAM)
        return self._cf_from_mask(samples, mask)

    def cf_cross_channels(
        self, samples: SampleSet, channels: list[Channel]
    ) -> dict[int, float]:
        """``CF(A)`` pooled over the given contended channels."""
        if not channels:
            raise ModelError("no contended channels to diagnose")
        mask = np.zeros(len(samples), dtype=bool)
        for ch in channels:
            if not ch.is_remote:
                raise ModelError(f"diagnosis is per remote channel, got {ch}")
            mask |= samples.on_channel(ch)
        mask &= samples.at_level(MemLevel.REMOTE_DRAM)
        return self._cf_from_mask(samples, mask)

    @staticmethod
    def _cf_from_mask(samples: SampleSet, mask: np.ndarray) -> dict[int, float]:
        total = int(mask.sum())
        if total == 0:
            return {}
        ids, counts = np.unique(samples.object_id[mask], return_counts=True)
        return {int(i): float(c) / total for i, c in zip(ids, counts)}

    def diagnose(
        self,
        profile: ProfileResult,
        channel_labels: dict[Channel, Mode],
        skip_unattributed: bool = False,
    ) -> DiagnosisReport:
        """Full Section VI analysis of a profiled run.

        ``channel_labels`` comes from the classifier; only ``rmc`` channels
        enter the cross-channel CF.  Raises when nothing is contended —
        there is no contention to explain.

        By default unattributable samples keep their pseudo-object row in
        the ranking (the paper's presentation).  ``skip_unattributed=True``
        drops them from both numerator and denominator — CF over tracked
        heap objects only — which is the degraded-collection mode: the
        report still states how much was skipped via
        ``attribution_coverage``.
        """
        contended = sorted(ch for ch, m in channel_labels.items() if m is Mode.RMC)
        if not contended:
            raise ModelError("no contended channels; nothing to diagnose")
        with get_telemetry().span(
            "diagnoser.diagnose", n_contended=len(contended)
        ) as sp:
            report = self._diagnose_inner(
                profile, contended, skip_unattributed=skip_unattributed
            )
            sp.set(
                n_objects=len(report.contributions),
                coverage=round(report.attribution_coverage, 4),
            )
            logger.info(
                "diagnosed %d object(s) over %d channel(s), %.1f%% attributed",
                len(report.contributions), len(contended),
                report.attribution_coverage * 100.0,
            )
            tel = get_telemetry()
            if tel.enabled:
                tel.metrics.gauge("diagnoser.attribution_coverage").set(
                    report.attribution_coverage
                )
                tel.metrics.counter("diagnoser.ranked_objects").inc(
                    len(report.contributions)
                )
            return report

    def _diagnose_inner(
        self,
        profile: ProfileResult,
        contended: list[Channel],
        skip_unattributed: bool,
    ) -> DiagnosisReport:
        cf = self.cf_cross_channels(profile.sample_set, contended)
        counts_mask = np.zeros(len(profile.sample_set), dtype=bool)
        for ch in contended:
            counts_mask |= profile.sample_set.on_channel(ch)
        counts_mask &= profile.sample_set.at_level(MemLevel.REMOTE_DRAM)

        total = int(counts_mask.sum())
        unattributed = int(
            (counts_mask & (profile.sample_set.object_id == UNATTRIBUTED)).sum()
        )
        coverage = (total - unattributed) / total if total else 0.0
        if skip_unattributed:
            cf.pop(UNATTRIBUTED, None)
            attributed_total = sum(cf.values())
            if attributed_total > 0:
                cf = {oid: f / attributed_total for oid, f in cf.items()}

        allocator = profile.compiled.allocator
        contributions: list[ObjectContribution] = []
        for oid, fraction in cf.items():
            n = int(
                (
                    counts_mask & (profile.sample_set.object_id == oid)
                ).sum()
            )
            if oid == UNATTRIBUTED:
                name, site = "<unattributed static/stack>", "-"
            else:
                obj = allocator.get(oid)
                name, site = obj.name, obj.site
            contributions.append(
                ObjectContribution(object_id=oid, name=name, site=site, cf=fraction, n_samples=n)
            )
        contributions.sort(key=lambda c: (-c.cf, c.object_id))
        return DiagnosisReport(
            workload_name=profile.workload.name,
            contended_channels=tuple(contended),
            contributions=tuple(contributions),
            attribution_coverage=coverage,
        )
