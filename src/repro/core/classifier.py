"""The DR-BW contention classifier (Sections V.D and VII.A).

A thin pipeline around the CART tree:

* features are z-score normalized with statistics stored at fit time (the
  paper's tree branches on "the normalized value of the corresponding
  feature");
* :meth:`DrBwClassifier.classify_channel` labels one channel's feature
  vector ``good`` or ``rmc``;
* :meth:`DrBwClassifier.classify_profile` applies the paper's
  case-aggregation rule — *"if there is at least one remote access channel
  which is detected to have contention, we treat this case as rmc"*;
* :func:`classify_benchmark` applies the benchmark-level rule — a program
  is ``rmc`` when any of its cases is.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dtree import DecisionTreeClassifier
from repro.core.features import FeatureVector
from repro.core.profiler import ProfileResult
from repro.errors import ModelError
from repro.types import Channel, Mode

__all__ = [
    "MIN_CHANNEL_SUPPORT",
    "DrBwClassifier",
    "classify_case",
    "classify_benchmark",
]

#: Minimum remote-DRAM samples a channel needs before it can be classified.
#: Below this, latency averages are sampling noise — the role the paper's
#: remote-sample-count feature (Table I #6) plays in its decision tree.
MIN_CHANNEL_SUPPORT = 25


@dataclass
class DrBwClassifier:
    """Normalizing wrapper over the decision tree."""

    feature_names: tuple[str, ...]
    tree: DecisionTreeClassifier = field(
        default_factory=lambda: DecisionTreeClassifier(max_depth=3, min_samples_leaf=3)
    )
    _mean: np.ndarray | None = field(default=None, init=False, repr=False)
    _std: np.ndarray | None = field(default=None, init=False, repr=False)

    # -- fitting -------------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DrBwClassifier":
        """Fit normalization statistics and the tree on labeled features."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != len(self.feature_names):
            raise ModelError(
                f"X must have shape (n, {len(self.feature_names)}), got {X.shape}"
            )
        self._mean = X.mean(axis=0)
        std = X.std(axis=0)
        self._std = np.where(std > 1e-12, std, 1.0)
        self.tree.fit(self.normalize(X), np.asarray(y))
        return self

    def normalize(self, X: np.ndarray) -> np.ndarray:
        """Apply the stored z-score normalization."""
        if self._mean is None or self._std is None:
            raise ModelError("classifier is not fitted")
        return (np.asarray(X, dtype=np.float64) - self._mean) / self._std

    @property
    def is_fitted(self) -> bool:
        return self._mean is not None and self.tree.root is not None

    # -- prediction ------------------------------------------------------------

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Vector prediction over raw (unnormalized) feature rows."""
        return self.tree.predict(self.normalize(X))

    def classify_channel(self, features: FeatureVector) -> Mode:
        """Label one channel's Table I features."""
        if features.names != self.feature_names:
            raise ModelError("feature vector does not match the trained feature set")
        label = self.predict(features.values[None, :])[0]
        return Mode(label)

    def classify_profile(
        self, profile: ProfileResult, min_support: int = MIN_CHANNEL_SUPPORT
    ) -> dict[Channel, Mode]:
        """Per-channel labels for one profiled run.

        Channels with fewer than ``min_support`` remote-DRAM samples are
        labeled ``good`` without consulting the tree: a handful of samples
        cannot evidence *bandwidth* contention, and their latency averages
        are dominated by interference outliers.
        """
        out: dict[Channel, Mode] = {}
        for ch, fv in profile.features_per_channel().items():
            if fv["num_remote_dram_samples"] < min_support:
                out[ch] = Mode.GOOD
            else:
                out[ch] = self.classify_channel(fv)
        return out

    # -- introspection ------------------------------------------------------------

    def render_tree(self) -> str:
        """Figure 3-style rendering with feature names."""
        return self.tree.render(list(self.feature_names))

    def used_feature_names(self) -> set[str]:
        """Names of the features the fitted tree splits on."""
        return {self.feature_names[i] for i in self.tree.used_features()}

    # -- (de)serialization ---------------------------------------------------------

    def to_dict(self) -> dict:
        """Portable representation (for saving a trained model)."""
        if not self.is_fitted:
            raise ModelError("cannot serialize an unfitted classifier")

        def node_dict(node):
            if node.is_leaf:
                return {
                    "leaf": True,
                    "prediction": int(node.prediction),
                    "counts": node.class_counts.tolist(),
                    "n": node.n_samples,
                }
            return {
                "leaf": False,
                "feature": int(node.feature),
                "threshold": float(node.threshold),
                "counts": node.class_counts.tolist(),
                "n": node.n_samples,
                "prediction": int(node.prediction),
                "left": node_dict(node.left),
                "right": node_dict(node.right),
            }

        assert self._mean is not None and self._std is not None
        assert self.tree.classes_ is not None
        return {
            "feature_names": list(self.feature_names),
            "mean": self._mean.tolist(),
            "std": self._std.tolist(),
            "classes": [str(c) for c in self.tree.classes_],
            "root": node_dict(self.tree.root),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DrBwClassifier":
        """Rebuild a trained classifier from :meth:`to_dict` output."""
        from repro.core.dtree import TreeNode

        def build(d) -> TreeNode:
            node = TreeNode(
                n_samples=d["n"],
                class_counts=np.array(d["counts"], dtype=np.int64),
                prediction=d["prediction"],
            )
            if not d["leaf"]:
                node.feature = d["feature"]
                node.threshold = d["threshold"]
                node.left = build(d["left"])
                node.right = build(d["right"])
            return node

        clf = cls(feature_names=tuple(data["feature_names"]))
        clf._mean = np.array(data["mean"], dtype=np.float64)
        clf._std = np.array(data["std"], dtype=np.float64)
        clf.tree.classes_ = np.array(data["classes"])
        clf.tree.n_features_ = len(data["feature_names"])
        clf.tree.root = build(data["root"])
        return clf


def classify_case(channel_labels: dict[Channel, Mode]) -> Mode:
    """Case rule: ``rmc`` when at least one channel is contended."""
    return (
        Mode.RMC
        if any(m is Mode.RMC for m in channel_labels.values())
        else Mode.GOOD
    )


def classify_benchmark(case_labels: list[Mode]) -> Mode:
    """Benchmark rule: ``rmc`` when at least one case is contended."""
    if not case_labels:
        raise ModelError("no cases to aggregate")
    return Mode.RMC if any(m is Mode.RMC for m in case_labels) else Mode.GOOD
