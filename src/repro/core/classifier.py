"""The DR-BW contention classifier (Sections V.D and VII.A).

A thin pipeline around the CART tree:

* features are z-score normalized with statistics stored at fit time (the
  paper's tree branches on "the normalized value of the corresponding
  feature");
* :meth:`DrBwClassifier.classify_channel` labels one channel's feature
  vector ``good`` or ``rmc``;
* :meth:`DrBwClassifier.classify_profile` applies the paper's
  case-aggregation rule — *"if there is at least one remote access channel
  which is detected to have contention, we treat this case as rmc"*;
* :func:`classify_benchmark` applies the benchmark-level rule — a program
  is ``rmc`` when any of its cases is.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

import numpy as np

from repro.core.dtree import DecisionTreeClassifier
from repro.core.features import FeatureVector
from repro.core.profiler import ProfileResult
from repro.errors import ModelError
from repro.telemetry import MARGIN_BUCKETS, get_telemetry
from repro.types import Channel, Mode

logger = logging.getLogger(__name__)

__all__ = [
    "MIN_CHANNEL_SUPPORT",
    "ChannelVerdict",
    "DrBwClassifier",
    "validate_model_dict",
    "classify_case",
    "classify_benchmark",
]

#: Minimum remote-DRAM samples a channel needs before it can be classified.
#: Below this, latency averages are sampling noise — the role the paper's
#: remote-sample-count feature (Table I #6) plays in its decision tree.
MIN_CHANNEL_SUPPORT = 25


@dataclass(frozen=True)
class ChannelVerdict:
    """One channel's label plus how much to trust it.

    ``confidence`` combines the fitted tree's leaf purity (class margin)
    with a sample-support factor: a pure leaf reached on 4 remote samples
    is still a guess, and a thin batch after lossy collection must say so
    instead of masquerading as a confident ``good``.  When the batch falls
    below the support floor the verdict is ``insufficient-data``:
    ``mode`` degrades to the conservative ``good`` (matching the legacy
    label) and ``confidence`` is 0.
    """

    mode: Mode
    confidence: float
    n_remote_samples: int
    insufficient_data: bool = False

    @property
    def label(self) -> str:
        """Rendered label: the mode, or ``insufficient-data``."""
        return "insufficient-data" if self.insufficient_data else self.mode.value


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ModelError(f"model JSON invalid: {message}")


def _validate_node(d: object, n_features: int, n_classes: int, path: str) -> None:
    _require(isinstance(d, dict), f"node {path} is not an object")
    for key in ("leaf", "prediction", "counts", "n"):
        _require(key in d, f"node {path} is missing key {key!r}")
    _require(isinstance(d["leaf"], bool), f"node {path}: 'leaf' must be a bool")
    _require(
        isinstance(d["prediction"], int) and 0 <= d["prediction"] < n_classes,
        f"node {path}: prediction {d['prediction']!r} out of range",
    )
    counts = d["counts"]
    _require(
        isinstance(counts, list)
        and len(counts) == n_classes
        and all(isinstance(c, (int, float)) for c in counts),
        f"node {path}: 'counts' must list {n_classes} numbers",
    )
    if not d["leaf"]:
        for key in ("feature", "threshold", "left", "right"):
            _require(key in d, f"split node {path} is missing key {key!r}")
        _require(
            isinstance(d["feature"], int) and 0 <= d["feature"] < n_features,
            f"node {path}: feature index {d.get('feature')!r} out of range "
            f"for {n_features} features",
        )
        _require(
            isinstance(d["threshold"], (int, float)),
            f"node {path}: threshold must be a number",
        )
        _validate_node(d["left"], n_features, n_classes, path + ".left")
        _validate_node(d["right"], n_features, n_classes, path + ".right")


def validate_model_dict(data: object) -> dict:
    """Check a model-JSON payload before trusting any of its fields.

    Raises :class:`ModelError` with a message naming the first defect —
    a truncated download or a hand-edited file should never surface as a
    ``KeyError`` three stack frames into tree reconstruction.
    """
    _require(isinstance(data, dict), "top level must be an object")
    for key in ("feature_names", "mean", "std", "classes", "root"):
        _require(key in data, f"missing top-level key {key!r}")
    names = data["feature_names"]
    _require(
        isinstance(names, list) and names and all(isinstance(n, str) for n in names),
        "'feature_names' must be a non-empty list of strings",
    )
    n_features = len(names)
    for key in ("mean", "std"):
        vec = data[key]
        _require(
            isinstance(vec, list)
            and len(vec) == n_features
            and all(isinstance(v, (int, float)) for v in vec),
            f"{key!r} must list {n_features} numbers (one per feature)",
        )
    classes = data["classes"]
    _require(
        isinstance(classes, list)
        and len(classes) >= 2
        and all(isinstance(c, str) for c in classes),
        "'classes' must list at least two class labels",
    )
    _validate_node(data["root"], n_features, len(classes), "root")
    return data


@dataclass
class DrBwClassifier:
    """Normalizing wrapper over the decision tree."""

    feature_names: tuple[str, ...]
    tree: DecisionTreeClassifier = field(
        default_factory=lambda: DecisionTreeClassifier(max_depth=3, min_samples_leaf=3)
    )
    _mean: np.ndarray | None = field(default=None, init=False, repr=False)
    _std: np.ndarray | None = field(default=None, init=False, repr=False)

    # -- fitting -------------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DrBwClassifier":
        """Fit normalization statistics and the tree on labeled features."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != len(self.feature_names):
            raise ModelError(
                f"X must have shape (n, {len(self.feature_names)}), got {X.shape}"
            )
        self._mean = X.mean(axis=0)
        std = X.std(axis=0)
        self._std = np.where(std > 1e-12, std, 1.0)
        self.tree.fit(self.normalize(X), np.asarray(y))
        return self

    def normalize(self, X: np.ndarray) -> np.ndarray:
        """Apply the stored z-score normalization."""
        if self._mean is None or self._std is None:
            raise ModelError("classifier is not fitted")
        return (np.asarray(X, dtype=np.float64) - self._mean) / self._std

    @property
    def is_fitted(self) -> bool:
        return self._mean is not None and self.tree.root is not None

    # -- prediction ------------------------------------------------------------

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Vector prediction over raw (unnormalized) feature rows."""
        return self.tree.predict(self.normalize(X))

    def classify_channel(self, features: FeatureVector) -> Mode:
        """Label one channel's Table I features."""
        if features.names != self.feature_names:
            raise ModelError("feature vector does not match the trained feature set")
        label = self.predict(features.values[None, :])[0]
        return Mode(label)

    def classify_channel_detailed(
        self, features: FeatureVector, min_support: int = MIN_CHANNEL_SUPPORT
    ) -> ChannelVerdict:
        """Label one channel and attach a confidence.

        Confidence is ``leaf-margin × support``: the margin is the fitted
        leaf's majority fraction rescaled to [0, 1] (an evenly split leaf
        knows nothing), and support saturates as the channel's remote
        sample count reaches twice ``min_support``.  Below ``min_support``
        the verdict is ``insufficient-data``.
        """
        if features.names != self.feature_names:
            raise ModelError("feature vector does not match the trained feature set")
        tel = get_telemetry()
        n_remote = int(features["num_remote_dram_samples"])
        if n_remote < min_support:
            logger.debug(
                "insufficient data: %d remote samples (< %d floor)",
                n_remote, min_support,
            )
            tel.metrics.counter("classifier.verdict.insufficient-data").inc()
            return ChannelVerdict(
                mode=Mode.GOOD,
                confidence=0.0,
                n_remote_samples=n_remote,
                insufficient_data=True,
            )
        row = self.normalize(features.values[None, :])
        label = Mode(self.tree.predict(row)[0])
        probs = self.tree.predict_proba(row)[0]
        assert self.tree.classes_ is not None
        p_pred = float(probs[list(self.tree.classes_).index(label.value)])
        margin = max(0.0, 2.0 * p_pred - 1.0)
        support = min(1.0, n_remote / float(2 * max(min_support, 1)))
        if tel.enabled:
            tel.metrics.counter(f"classifier.verdict.{label.value}").inc()
            tel.metrics.histogram("classifier.leaf_margin", MARGIN_BUCKETS).observe(
                margin
            )
        return ChannelVerdict(
            mode=label,
            confidence=margin * support,
            n_remote_samples=n_remote,
        )

    def classify_profile(
        self, profile: ProfileResult, min_support: int = MIN_CHANNEL_SUPPORT
    ) -> dict[Channel, Mode]:
        """Per-channel labels for one profiled run.

        Channels with fewer than ``min_support`` remote-DRAM samples are
        labeled ``good`` without consulting the tree: a handful of samples
        cannot evidence *bandwidth* contention, and their latency averages
        are dominated by interference outliers.  (The degradation-aware
        variant, :meth:`classify_profile_detailed`, reports those channels
        as ``insufficient-data`` with zero confidence instead.)
        """
        return {
            ch: v.mode
            for ch, v in self.classify_profile_detailed(profile, min_support).items()
        }

    def classify_profile_detailed(
        self, profile: ProfileResult, min_support: int = MIN_CHANNEL_SUPPORT
    ) -> dict[Channel, ChannelVerdict]:
        """Per-channel verdicts with confidence for one profiled run."""
        with get_telemetry().span("classifier.classify") as sp:
            verdicts = {
                ch: self.classify_channel_detailed(fv, min_support)
                for ch, fv in profile.features_per_channel().items()
            }
            sp.set(n_channels=len(verdicts))
            return verdicts

    # -- introspection ------------------------------------------------------------

    def render_tree(self) -> str:
        """Figure 3-style rendering with feature names."""
        return self.tree.render(list(self.feature_names))

    def used_feature_names(self) -> set[str]:
        """Names of the features the fitted tree splits on."""
        return {self.feature_names[i] for i in self.tree.used_features()}

    # -- (de)serialization ---------------------------------------------------------

    def to_dict(self) -> dict:
        """Portable representation (for saving a trained model)."""
        if not self.is_fitted:
            raise ModelError("cannot serialize an unfitted classifier")

        def node_dict(node):
            if node.is_leaf:
                return {
                    "leaf": True,
                    "prediction": int(node.prediction),
                    "counts": node.class_counts.tolist(),
                    "n": node.n_samples,
                }
            return {
                "leaf": False,
                "feature": int(node.feature),
                "threshold": float(node.threshold),
                "counts": node.class_counts.tolist(),
                "n": node.n_samples,
                "prediction": int(node.prediction),
                "left": node_dict(node.left),
                "right": node_dict(node.right),
            }

        assert self._mean is not None and self._std is not None
        assert self.tree.classes_ is not None
        return {
            "feature_names": list(self.feature_names),
            "mean": self._mean.tolist(),
            "std": self._std.tolist(),
            "classes": [str(c) for c in self.tree.classes_],
            "root": node_dict(self.tree.root),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DrBwClassifier":
        """Rebuild a trained classifier from :meth:`to_dict` output.

        The payload is schema-validated first (:func:`validate_model_dict`)
        so malformed or truncated files fail with a descriptive
        :class:`ModelError` instead of a ``KeyError``/``IndexError``.
        """
        from repro.core.dtree import TreeNode

        validate_model_dict(data)

        def build(d) -> TreeNode:
            node = TreeNode(
                n_samples=d["n"],
                class_counts=np.array(d["counts"], dtype=np.int64),
                prediction=d["prediction"],
            )
            if not d["leaf"]:
                node.feature = d["feature"]
                node.threshold = d["threshold"]
                node.left = build(d["left"])
                node.right = build(d["right"])
            return node

        clf = cls(feature_names=tuple(data["feature_names"]))
        clf._mean = np.array(data["mean"], dtype=np.float64)
        clf._std = np.array(data["std"], dtype=np.float64)
        clf.tree.classes_ = np.array(data["classes"])
        clf.tree.n_features_ = len(data["feature_names"])
        clf.tree.root = build(data["root"])
        return clf

    @classmethod
    def load(cls, path: str) -> "DrBwClassifier":
        """Load a trained model from a JSON file, with readable failures.

        Missing files and syntactically broken JSON both surface as
        :class:`ModelError` so CLI-level handling stays uniform.
        """
        import json

        try:
            with open(path) as fh:
                data = json.load(fh)
        except FileNotFoundError:
            raise ModelError(f"model file not found: {path}") from None
        except json.JSONDecodeError as exc:
            raise ModelError(f"model file {path} is not valid JSON: {exc}") from None
        return cls.from_dict(data)


def classify_case(channel_labels: dict[Channel, Mode]) -> Mode:
    """Case rule: ``rmc`` when at least one channel is contended."""
    return (
        Mode.RMC
        if any(m is Mode.RMC for m in channel_labels.values())
        else Mode.GOOD
    )


def classify_benchmark(case_labels: list[Mode]) -> Mode:
    """Benchmark rule: ``rmc`` when at least one case is contended."""
    if not case_labels:
        raise ModelError("no cases to aggregate")
    return Mode.RMC if any(m is Mode.RMC for m in case_labels) else Mode.GOOD
