"""Human-readable diagnosis reports.

DR-BW's value to a developer is the final report: which channels are
contended, which data objects (by name and allocation site) to blame, and
what to do about them.  This module renders
:class:`~repro.core.diagnoser.DiagnosisReport` objects the way the paper's
case studies present them (Figure 4's CF rankings plus the suggested
remedy per access pattern).
"""

from __future__ import annotations

from repro.core.classifier import ChannelVerdict
from repro.core.diagnoser import DiagnosisReport, ObjectContribution
from repro.core.profiler import DroppedSampleReport
from repro.types import Channel, Mode

__all__ = [
    "format_channel_labels",
    "format_channel_verdicts",
    "format_degradation",
    "format_diagnosis",
    "suggest_remedy",
]


def format_channel_labels(labels: dict[Channel, Mode]) -> str:
    """One line per channel: ``0->1  rmc``."""
    if not labels:
        return "(no remote traffic observed)"
    lines = [f"  {str(ch):>6}  {labels[ch].value}" for ch in sorted(labels)]
    return "\n".join(lines)


def format_channel_verdicts(verdicts: dict[Channel, ChannelVerdict]) -> str:
    """Confidence-aware channel table: ``0->1  rmc  (conf 0.87, 412 samples)``."""
    if not verdicts:
        return "(no remote traffic observed)"
    lines = []
    for ch in sorted(verdicts):
        v = verdicts[ch]
        if v.insufficient_data:
            lines.append(
                f"  {str(ch):>6}  {v.label}  ({v.n_remote_samples} remote samples)"
            )
        else:
            lines.append(
                f"  {str(ch):>6}  {v.label}  "
                f"(conf {v.confidence:.2f}, {v.n_remote_samples} remote samples)"
            )
    return "\n".join(lines)


def format_degradation(report: DroppedSampleReport) -> str:
    """Multi-line summary of what the collection pipeline lost and why."""
    if report.is_clean:
        return "degradation: none (clean collection)"
    lines = [
        "degradation summary:",
        f"  samples observed:    {report.observed}",
        f"  samples kept:        {report.kept}",
        f"  quarantined:         {report.total_quarantined}"
        f" ({report.drop_fraction:.1%} of observed)",
    ]
    for reason in sorted(report.quarantined):
        lines.append(f"    - {reason:<18} {report.quarantined[reason]}")
    injected = {k: v for k, v in report.injected.items() if v}
    if injected:
        lines.append(
            "  injected faults:     "
            + ", ".join(f"{k}={v}" for k, v in sorted(injected.items()))
        )
    if report.resample_attempts:
        chans = ", ".join(str(c) for c in report.resampled_channels) or "-"
        lines.append(
            f"  resample attempts:   {report.resample_attempts} (channels: {chans})"
        )
    return "\n".join(lines)


def suggest_remedy(contribution: ObjectContribution, shared_read_only: bool = False) -> str:
    """The paper's menu of fixes, keyed to what the profiler knows.

    * chunk-partitioned objects → *co-locate* data with computation at the
      allocation point (AMG2006, IRSmk, LULESH);
    * read-only data randomly accessed by every thread → *replicate* per
      node (Streamcluster);
    * untracked static data → *interleave* the whole program (SP).
    """
    if contribution.is_unattributed:
        return "interleave (static data cannot be re-placed per object)"
    if shared_read_only:
        return "replicate a per-node copy (read-only shared data)"
    return "co-locate chunks with their computing threads (libnuma)"


def format_diagnosis(report: DiagnosisReport, top_k: int = 10) -> str:
    """Multi-line report: contended channels, then ranked CF table."""
    lines = [
        f"DR-BW diagnosis for {report.workload_name!r}",
        "contended channels: "
        + ", ".join(str(c) for c in report.contended_channels),
        "",
        f"{'rank':>4}  {'CF':>7}  {'samples':>8}  object (allocation site)",
    ]
    for rank, c in enumerate(report.top(top_k), start=1):
        lines.append(
            f"{rank:>4}  {c.cf:>6.1%}  {c.n_samples:>8}  {c.name} ({c.site})"
        )
    covered = sum(c.cf for c in report.top(top_k))
    if covered < 0.999:
        lines.append(f"      ({1 - covered:.1%} spread over smaller objects)")
    if report.attribution_coverage < 0.999:
        lines.append(
            f"      (attribution coverage: {report.attribution_coverage:.1%} "
            "of analyzed samples resolve to a tracked heap object)"
        )
    return "\n".join(lines)
