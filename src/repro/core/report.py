"""Human-readable diagnosis reports.

DR-BW's value to a developer is the final report: which channels are
contended, which data objects (by name and allocation site) to blame, and
what to do about them.  This module renders
:class:`~repro.core.diagnoser.DiagnosisReport` objects the way the paper's
case studies present them (Figure 4's CF rankings plus the suggested
remedy per access pattern).
"""

from __future__ import annotations

from repro.core.diagnoser import DiagnosisReport, ObjectContribution
from repro.types import Channel, Mode

__all__ = ["format_channel_labels", "format_diagnosis", "suggest_remedy"]


def format_channel_labels(labels: dict[Channel, Mode]) -> str:
    """One line per channel: ``0->1  rmc``."""
    if not labels:
        return "(no remote traffic observed)"
    lines = [f"  {str(ch):>6}  {labels[ch].value}" for ch in sorted(labels)]
    return "\n".join(lines)


def suggest_remedy(contribution: ObjectContribution, shared_read_only: bool = False) -> str:
    """The paper's menu of fixes, keyed to what the profiler knows.

    * chunk-partitioned objects → *co-locate* data with computation at the
      allocation point (AMG2006, IRSmk, LULESH);
    * read-only data randomly accessed by every thread → *replicate* per
      node (Streamcluster);
    * untracked static data → *interleave* the whole program (SP).
    """
    if contribution.is_unattributed:
        return "interleave (static data cannot be re-placed per object)"
    if shared_read_only:
        return "replicate a per-node copy (read-only shared data)"
    return "co-locate chunks with their computing threads (libnuma)"


def format_diagnosis(report: DiagnosisReport, top_k: int = 10) -> str:
    """Multi-line report: contended channels, then ranked CF table."""
    lines = [
        f"DR-BW diagnosis for {report.workload_name!r}",
        "contended channels: "
        + ", ".join(str(c) for c in report.contended_channels),
        "",
        f"{'rank':>4}  {'CF':>7}  {'samples':>8}  object (allocation site)",
    ]
    for rank, c in enumerate(report.top(top_k), start=1):
        lines.append(
            f"{rank:>4}  {c.cf:>6.1%}  {c.n_samples:>8}  {c.name} ({c.site})"
        )
    covered = sum(c.cf for c in report.top(top_k))
    if covered < 0.999:
        lines.append(f"      ({1 - covered:.1%} spread over smaller objects)")
    return "\n".join(lines)
