"""Feature extraction from attributed memory samples.

Table I of the paper lists the 13 features DR-BW selected:

==  ==========================================================
 1  Ratio of latency above 1000 among all samples
 2  Ratio of latency above 500 among all samples
 3  Ratio of latency above 200 among all samples
 4  Ratio of latency above 100 among all samples
 5  Ratio of latency above 50 among all samples
 6  # of remote dram access sample
 7  Average remote dram access latency
 8  # of local dram access sample
 9  Average local dram access latency
10  Total # of memory access sample
11  Average memory access latency
12  Total # of line fill buffer access sample
13  Line fill buffer access latency
==  ==========================================================

Features are computed **per channel** (Section IV.B): for the directed
channel ``s → d`` the remote features (6, 7) use only samples observed on
that channel, while the context features (1-5, 8-13) use all samples issued
from the source node ``s`` — the population whose latency distribution the
channel's contention distorts.

The module also exposes the *candidate* feature list (Section V.B's three
"statistics" categories) used by :mod:`repro.core.selection` to rediscover
Table I, and :class:`SampleSet`, a columnar view over attributed samples
that makes extraction vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InsufficientSamplesError, ModelError
from repro.pmu.sample import MemorySample
from repro.types import Channel, MemLevel

__all__ = [
    "LATENCY_THRESHOLDS",
    "TABLE1_FEATURE_NAMES",
    "FeatureVector",
    "SampleSet",
    "channel_sample_counts",
    "extract_channel_features",
    "candidate_features",
]

#: Latency thresholds (cycles) for features 1-5, most severe first.
LATENCY_THRESHOLDS: tuple[int, ...] = (1000, 500, 200, 100, 50)

TABLE1_FEATURE_NAMES: tuple[str, ...] = (
    "ratio_latency_above_1000",
    "ratio_latency_above_500",
    "ratio_latency_above_200",
    "ratio_latency_above_100",
    "ratio_latency_above_50",
    "num_remote_dram_samples",
    "avg_remote_dram_latency",
    "num_local_dram_samples",
    "avg_local_dram_latency",
    "num_total_samples",
    "avg_latency",
    "num_lfb_samples",
    "avg_lfb_latency",
)


@dataclass(frozen=True)
class FeatureVector:
    """A named feature vector for one (run, channel) observation."""

    names: tuple[str, ...]
    values: np.ndarray

    def __post_init__(self) -> None:
        v = np.asarray(self.values, dtype=np.float64)
        if v.shape != (len(self.names),):
            raise ModelError(
                f"feature vector has {v.shape} values for {len(self.names)} names"
            )
        if not np.all(np.isfinite(v)):
            raise ModelError("feature vector contains non-finite values")
        object.__setattr__(self, "values", v)

    def __getitem__(self, name: str) -> float:
        try:
            return float(self.values[self.names.index(name)])
        except ValueError:
            raise ModelError(f"no feature named {name!r}") from None

    def as_dict(self) -> dict[str, float]:
        """Name → value mapping."""
        return {n: float(v) for n, v in zip(self.names, self.values)}


class SampleSet:
    """Columnar view over attributed memory samples.

    Keeps one numpy array per field so feature extraction is a handful of
    vectorized masks rather than a Python loop per sample.
    """

    def __init__(self, samples: list[MemorySample]) -> None:
        n = len(samples)
        self._init_arrays(
            address=np.fromiter((s.address for s in samples), dtype=np.int64, count=n),
            cpu=np.fromiter((s.cpu for s in samples), dtype=np.int64, count=n),
            thread_id=np.fromiter((s.thread_id for s in samples), dtype=np.int64, count=n),
            level=np.fromiter((int(s.level) for s in samples), dtype=np.int64, count=n),
            latency=np.fromiter((s.latency_cycles for s in samples), dtype=np.float64, count=n),
            src_node=np.fromiter((s.src_node for s in samples), dtype=np.int64, count=n),
            dst_node=np.fromiter((s.dst_node for s in samples), dtype=np.int64, count=n),
            object_id=np.fromiter((s.object_id for s in samples), dtype=np.int64, count=n),
        )

    @classmethod
    def from_arrays(
        cls,
        address: np.ndarray,
        cpu: np.ndarray,
        thread_id: np.ndarray,
        level: np.ndarray,
        latency: np.ndarray,
        src_node: np.ndarray,
        dst_node: np.ndarray,
        object_id: np.ndarray,
    ) -> "SampleSet":
        """Columnar constructor (the profiler's vectorized path)."""
        obj = cls.__new__(cls)
        obj._init_arrays(
            address=np.asarray(address, dtype=np.int64),
            cpu=np.asarray(cpu, dtype=np.int64),
            thread_id=np.asarray(thread_id, dtype=np.int64),
            level=np.asarray(level, dtype=np.int64),
            latency=np.asarray(latency, dtype=np.float64),
            src_node=np.asarray(src_node, dtype=np.int64),
            dst_node=np.asarray(dst_node, dtype=np.int64),
            object_id=np.asarray(object_id, dtype=np.int64),
        )
        return obj

    def _init_arrays(self, **fields: np.ndarray) -> None:
        n = fields["address"].shape[0]
        for name, arr in fields.items():
            if arr.shape != (n,):
                raise ModelError(f"sample field {name} has mismatched length")
            setattr(self, name, arr)
        self.n = n
        if n and (np.any(self.src_node < 0) or np.any(self.dst_node < 0)):
            raise ModelError("SampleSet requires attributed samples (src/dst nodes set)")

    def to_samples(self) -> list[MemorySample]:
        """Materialize per-record samples (attributed)."""
        from repro.types import MemLevel as _ML

        return [
            MemorySample(
                address=int(self.address[i]),
                cpu=int(self.cpu[i]),
                thread_id=int(self.thread_id[i]),
                level=_ML(int(self.level[i])),
                latency_cycles=float(self.latency[i]),
                src_node=int(self.src_node[i]),
                dst_node=int(self.dst_node[i]),
                object_id=int(self.object_id[i]),
            )
            for i in range(self.n)
        ]

    def __len__(self) -> int:
        return self.n

    # -- masks -----------------------------------------------------------------

    def from_node(self, node: int) -> np.ndarray:
        """Mask of samples issued by CPUs on ``node``."""
        return self.src_node == node

    def on_channel(self, channel: Channel) -> np.ndarray:
        """Mask of samples whose (src, dst) matches ``channel``."""
        return (self.src_node == channel.src) & (self.dst_node == channel.dst)

    def at_level(self, level: MemLevel) -> np.ndarray:
        """Mask of samples served at ``level``."""
        return self.level == int(level)

    def remote_channels(self) -> list[Channel]:
        """Distinct remote channels with at least one DRAM sample, sorted."""
        remote = (self.src_node != self.dst_node) & (
            (self.level == int(MemLevel.REMOTE_DRAM))
        )
        pairs = {
            (int(s), int(d))
            for s, d in zip(self.src_node[remote], self.dst_node[remote])
        }
        return [Channel(s, d) for s, d in sorted(pairs)]


def _mean(values: np.ndarray) -> float:
    """Mean that treats an empty selection as 0 (no samples, no signal)."""
    return float(values.mean()) if values.size else 0.0


def channel_sample_counts(samples: SampleSet, channel: Channel) -> tuple[int, int]:
    """(source-node samples, remote-DRAM samples on the channel).

    The two populations the Table I features are computed over — callers
    use these to decide whether a channel has enough data to classify.
    """
    src_mask = samples.from_node(channel.src)
    chan_remote = samples.on_channel(channel) & samples.at_level(MemLevel.REMOTE_DRAM)
    return int(src_mask.sum()), int(chan_remote.sum())


def extract_channel_features(
    samples: SampleSet, channel: Channel, min_samples: int = 0
) -> FeatureVector:
    """The 13 Table I features for ``channel``.

    Remote-DRAM features (6, 7) come from the channel's own samples; the
    remaining context features come from every sample issued by the
    channel's source node.

    ``min_samples`` is a degradation guard: when the source-node
    population is smaller, the averages and threshold ratios are sampling
    noise, so the extractor raises :class:`InsufficientSamplesError`
    rather than emit a vector that *looks* trustworthy.  The default of 0
    keeps the permissive behavior (empty selections yield zeros — the
    features are NaN-safe by construction).
    """
    if not channel.is_remote:
        raise ModelError(f"features are defined for remote channels, got {channel}")
    src_mask = samples.from_node(channel.src)
    lat_src = samples.latency[src_mask]
    n_src = int(src_mask.sum())
    if n_src < min_samples:
        raise InsufficientSamplesError(
            f"channel {channel} has {n_src} source-node samples, "
            f"below the floor of {min_samples}"
        )

    chan_remote = samples.on_channel(channel) & samples.at_level(MemLevel.REMOTE_DRAM)
    lat_remote = samples.latency[chan_remote]

    local_dram = src_mask & samples.at_level(MemLevel.LOCAL_DRAM)
    lat_local = samples.latency[local_dram]

    lfb = src_mask & samples.at_level(MemLevel.LFB)
    lat_lfb = samples.latency[lfb]

    ratios = [
        float((lat_src > t).mean()) if n_src else 0.0 for t in LATENCY_THRESHOLDS
    ]
    values = np.array(
        ratios
        + [
            float(chan_remote.sum()),
            _mean(lat_remote),
            float(local_dram.sum()),
            _mean(lat_local),
            float(n_src),
            _mean(lat_src),
            float(lfb.sum()),
            _mean(lat_lfb),
        ]
    )
    # Belt-and-braces against degraded inputs (e.g. overflow-wrapped
    # latencies aggregated over tiny populations): the classifier must
    # never see a non-finite feature.  Identity for finite values.
    values = np.nan_to_num(values, nan=0.0, posinf=0.0, neginf=0.0)
    return FeatureVector(names=TABLE1_FEATURE_NAMES, values=values)


# ---------------------------------------------------------------------------
# Candidate features (Section V.B) for the selection experiment.
# ---------------------------------------------------------------------------

def candidate_features(samples: SampleSet, channel: Channel, topology_nodes: int) -> FeatureVector:
    """The full candidate list the paper screened before choosing Table I.

    Three categories of derived statistics:

    * *Statistics identification* — sample counts by issuing node, CPU
      parity, and thread spread;
    * *Statistics location* — counts per memory level;
    * *Statistics latency* — threshold ratios and per-level average
      latencies.

    Includes the Table I features as a subset plus the known-irrelevant
    ones (e.g. the LLC-miss remote count analog), so the selection screen
    has something to reject.
    """
    table1 = extract_channel_features(samples, channel)
    src_mask = samples.from_node(channel.src)
    lat_src = samples.latency[src_mask]

    extra_names: list[str] = []
    extra_vals: list[float] = []

    # Statistics identification.
    for node in range(topology_nodes):
        extra_names.append(f"num_samples_from_node_{node}")
        extra_vals.append(float(samples.from_node(node).sum()))
    extra_names.append("num_distinct_threads_src")
    extra_vals.append(float(np.unique(samples.thread_id[src_mask]).size))
    extra_names.append("num_distinct_cpus_src")
    extra_vals.append(float(np.unique(samples.cpu[src_mask]).size))

    # Statistics location.
    for lvl in (MemLevel.L1, MemLevel.L2, MemLevel.L3):
        m = src_mask & samples.at_level(lvl)
        extra_names.append(f"num_{lvl.name.lower()}_hit")
        extra_vals.append(float(m.sum()))
    l3_miss = src_mask & (
        samples.at_level(MemLevel.LOCAL_DRAM)
        | samples.at_level(MemLevel.REMOTE_DRAM)
        | samples.at_level(MemLevel.LFB)
    )
    extra_names.append("num_l3_miss")
    extra_vals.append(float(l3_miss.sum()))
    dram = src_mask & (
        samples.at_level(MemLevel.LOCAL_DRAM) | samples.at_level(MemLevel.REMOTE_DRAM)
    )
    extra_names.append("num_dram_access")
    extra_vals.append(float(dram.sum()))
    # The counting-event analog the paper explicitly found unhelpful:
    # remote-DRAM count over *all* channels, not the diagnosed one.
    all_remote = (samples.src_node != samples.dst_node) & samples.at_level(
        MemLevel.REMOTE_DRAM
    )
    extra_names.append("num_llc_miss_remote_dram_all_channels")
    extra_vals.append(float(all_remote.sum()))

    # Statistics latency.
    for lvl in (MemLevel.L1, MemLevel.L2, MemLevel.L3):
        m = src_mask & samples.at_level(lvl)
        extra_names.append(f"avg_{lvl.name.lower()}_latency")
        extra_vals.append(_mean(samples.latency[m]))
    extra_names.append("max_latency")
    extra_vals.append(float(lat_src.max()) if lat_src.size else 0.0)
    extra_names.append("p95_latency")
    extra_vals.append(float(np.percentile(lat_src, 95)) if lat_src.size else 0.0)

    return FeatureVector(
        names=table1.names + tuple(extra_names),
        values=np.concatenate([table1.values, np.array(extra_vals, dtype=np.float64)]),
    )
