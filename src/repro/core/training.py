"""Training-data collection and classifier fitting (Sections V.A–V.D).

The paper's training set (Table II) has 192 instances:

=========  =====  ====  ======
program     good   rmc   total
=========  =====  ====  ======
sumv          24    24      48
dotv          24    24      48
countv        24    24      48
bandit        48     –      48
total        120    72     192
=========  =====  ====  ======

Each instance is one profiled run of a mini-program under a specific
configuration (problem size × threads × node binding × allocation policy),
manually labeled ``good`` or ``rmc``.  Our configurations are built so the
label follows from the construction — large first-touch vectors streamed
from several sockets contend on node 0's channels; cache-resident,
single-node, or co-located runs do not — and the test suite verifies the
labels against measured channel utilization, standing in for the paper's
manual examination.

Feature vectors are per-channel; one run contributes the features of its
*hottest* channel (most remote-DRAM samples), or a zero-remote vector when
the run never leaves its socket.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

import numpy as np

from repro.core.classifier import DrBwClassifier
from repro.core.features import TABLE1_FEATURE_NAMES, FeatureVector
from repro.core.profiler import DrBwProfiler, ProfileResult
from repro.numasim.machine import Machine
from repro.telemetry import get_telemetry
from repro.types import Channel, Mode

logger = logging.getLogger(__name__)
from repro.workloads.bandit import make_bandit
from repro.workloads.micro import make_countv, make_dotv, make_sumv

__all__ = [
    "TrainingInstance",
    "TrainingConfig",
    "micro_training_configs",
    "bandit_training_configs",
    "all_training_configs",
    "collect_training_set",
    "train_default_classifier",
    "hottest_channel_features",
    "hottest_channel_from",
]

_MB = 1024 * 1024


@dataclass(frozen=True)
class TrainingConfig:
    """One training run: which program, at what size, on which threads."""

    program: str
    label: Mode
    vector_bytes: int = 0
    n_threads: int = 1
    n_nodes: int = 1
    colocate: bool = False
    # bandit-only knobs
    n_instances: int = 0
    streams: int = 0
    target_node: int = 1
    accesses: float = 2_000_000.0

    def describe(self) -> str:
        if self.program == "bandit":
            return (
                f"bandit i={self.n_instances} s={self.streams} "
                f"node={self.target_node} {self.vector_bytes // _MB}MB"
            )
        tag = " colocate" if self.colocate else ""
        return (
            f"{self.program} {self.vector_bytes // _MB}MB "
            f"T{self.n_threads}-N{self.n_nodes}{tag}"
        )


@dataclass(frozen=True)
class TrainingInstance:
    """A labeled feature vector plus its provenance."""

    config: TrainingConfig
    features: FeatureVector
    label: Mode
    channel: Channel | None


def micro_training_configs(program: str) -> list[TrainingConfig]:
    """24 good + 24 rmc configurations for one vector mini-program.

    *good* mixes cache-resident multi-socket runs, DRAM-heavy single-node
    runs, and co-located multi-socket runs; *rmc* is first-touch node-0
    data streamed from 2–4 sockets at four sizes.
    """
    good: list[TrainingConfig] = []
    # Cache-resident: two small sizes across six thread/node shapes (12).
    for mb in (1, 8):
        for t, n in ((2, 1), (4, 1), (8, 1), (8, 2), (16, 2), (16, 4)):
            good.append(
                TrainingConfig(program, Mode.GOOD, mb * _MB, t, n)
            )
    # DRAM-heavy but single-node: all traffic stays local (6).
    for mb in (256, 512):
        for t in (2, 4, 8):
            good.append(TrainingConfig(program, Mode.GOOD, mb * _MB, t, 1))
    # Large and multi-socket but co-located: remote-free by construction (6).
    for mb, t, n in (
        (256, 16, 2),
        (256, 32, 4),
        (512, 16, 4),
        (512, 32, 4),
        (512, 16, 2),
        (256, 24, 3),
    ):
        good.append(TrainingConfig(program, Mode.GOOD, mb * _MB, t, n, colocate=True))

    rmc: list[TrainingConfig] = []
    # First-touch on node 0, streamed from several sockets (24).
    for mb in (128, 256, 512, 1024):
        for t, n in ((8, 2), (16, 2), (32, 2), (16, 4), (32, 4), (24, 3)):
            rmc.append(TrainingConfig(program, Mode.RMC, mb * _MB, t, n))
    assert len(good) == 24 and len(rmc) == 24
    return good + rmc


def bandit_training_configs() -> list[TrainingConfig]:
    """48 bandit configurations, all labeled good (Table II).

    Single-threaded instances, remote by construction, tuned over stream
    count, co-runner count, target node, and region size — lots of remote
    samples at healthy latency.
    """
    configs: list[TrainingConfig] = []
    for n_instances in (1, 2):
        for streams in (1, 2, 3, 4):
            for target in (1, 2, 3):
                # Two run durations per shape: bandit sessions are short
                # single-threaded probes, so their remote sample counts sit
                # well below those of long multi-threaded contended runs.
                for mb, accesses in ((32, 400_000.0), (64, 1_600_000.0)):
                    configs.append(
                        TrainingConfig(
                            "bandit",
                            Mode.GOOD,
                            vector_bytes=mb * _MB,
                            n_threads=n_instances,
                            n_nodes=1,
                            n_instances=n_instances,
                            streams=streams,
                            target_node=target,
                            accesses=accesses,
                        )
                    )
    assert len(configs) == 48
    return configs


def all_training_configs() -> list[TrainingConfig]:
    """The full 192-run grid of Table II."""
    configs: list[TrainingConfig] = []
    for program in ("sumv", "dotv", "countv"):
        configs.extend(micro_training_configs(program))
    configs.extend(bandit_training_configs())
    return configs


_BUILDERS = {"sumv": make_sumv, "dotv": make_dotv, "countv": make_countv}


def _build_workload(cfg: TrainingConfig):
    if cfg.program == "bandit":
        return make_bandit(
            n_instances=cfg.n_instances,
            streams_per_instance=cfg.streams,
            target_node=cfg.target_node,
            region_bytes=cfg.vector_bytes,
            accesses_per_instance=cfg.accesses,
        )
    return _BUILDERS[cfg.program](cfg.vector_bytes, colocate=cfg.colocate)


def hottest_channel_from(
    per_channel: dict[Channel, FeatureVector],
    fallback: FeatureVector,
    min_support: int | None = None,
) -> tuple[FeatureVector, Channel | None]:
    """Pick the channel with the most remote-DRAM samples from a feature map.

    The shared core of :func:`hottest_channel_features` and the campaign
    payload path — both hand it the same ``{channel: features}`` map, so
    serial and sharded collection select identically.  Ties break toward
    the smallest channel (channels sort by ``(src, dst)``), never by dict
    iteration order.

    Runs with no channel reaching ``min_support`` (the classifier's
    evidence floor, applied here too so training sees the same
    distribution the detector will) contribute the ``fallback`` context
    features with zeroed remote features, matching what PEBS would (not)
    see.
    """
    from repro.core.classifier import MIN_CHANNEL_SUPPORT

    if min_support is None:
        min_support = MIN_CHANNEL_SUPPORT
    eligible = {
        ch: fv
        for ch, fv in per_channel.items()
        if fv["num_remote_dram_samples"] >= min_support
    }
    if not eligible:
        values = fallback.values.copy()
        for i, name in enumerate(fallback.names):
            if name in ("num_remote_dram_samples", "avg_remote_dram_latency"):
                values[i] = 0.0
        return FeatureVector(names=fallback.names, values=values), None
    ch = max(sorted(eligible), key=lambda c: eligible[c]["num_remote_dram_samples"])
    return eligible[ch], ch


def hottest_channel_features(
    profile: ProfileResult, min_support: int | None = None
) -> tuple[FeatureVector, Channel | None]:
    """Features of the channel with the most remote-DRAM samples."""
    return hottest_channel_from(
        profile.features_per_channel(),
        profile.features_for(Channel(0, 1)),
        min_support=min_support,
    )


def collect_training_set(
    machine: Machine,
    profiler: DrBwProfiler | None = None,
    configs: list[TrainingConfig] | None = None,
    seed: int = 0,
    *,
    jobs: int | None = None,
    cache=None,
    cache_dir: str | None = None,
    use_cache: bool = False,
    runner_opts: dict | None = None,
) -> list[TrainingInstance]:
    """Profile every training configuration and return labeled instances.

    Collection runs as a sharded campaign: each configuration becomes a
    declarative shard spec seeded from ``(seed, config hash)``, executed
    over ``jobs`` worker processes (``DRBW_JOBS``/serial by default) and
    optionally memoized in the on-disk result cache.  The result is
    bit-identical for any worker count.  Machines or profiler configs the
    shard encoding cannot carry (custom PMU events, per-channel capacity
    overrides) fall back to in-process collection with the same
    content-derived per-config seeds.
    """
    from repro.parallel import CampaignRunner
    from repro.parallel.shards import (
        machine_spec,
        payload_channel_features,
        payload_fallback_features,
        profile_shard,
        profiler_spec,
        training_workload_spec,
    )

    profiler = profiler or DrBwProfiler(machine)
    configs = configs if configs is not None else all_training_configs()
    mspec = machine_spec(machine)
    pspec = profiler_spec(profiler.config)
    instances: list[TrainingInstance] = []
    with get_telemetry().span("training.collect", n_configs=len(configs)):
        if mspec is None or pspec is None:
            return _collect_in_process(profiler, configs, seed)
        specs = [
            profile_shard(
                training_workload_spec(cfg),
                cfg.n_threads,
                cfg.n_nodes,
                machine=mspec,
                profiler=pspec,
            )
            for cfg in configs
        ]
        runner = CampaignRunner(
            jobs=jobs,
            cache=cache,
            cache_dir=cache_dir,
            use_cache=use_cache,
            campaign_seed=seed,
            **(runner_opts or {}),
        )
        for cfg, outcome in zip(configs, runner.run(specs)):
            features, channel = hottest_channel_from(
                payload_channel_features(outcome.payload),
                payload_fallback_features(outcome.payload),
            )
            instances.append(
                TrainingInstance(
                    config=cfg, features=features, label=cfg.label, channel=channel
                )
            )
    logger.info("collected %d training instances", len(instances))
    return instances


def _collect_in_process(
    profiler: DrBwProfiler, configs: list[TrainingConfig], seed: int
) -> list[TrainingInstance]:
    """Serial fallback for shard-unencodable machines/profilers.

    Seeds are still derived from the workload spec's content hash — never
    from the loop index alone — so inserting or reordering configurations
    does not reseed the survivors.
    """
    from repro.parallel.seeding import config_hash, shard_seed
    from repro.parallel.shards import training_workload_spec

    instances: list[TrainingInstance] = []
    for cfg in configs:
        workload = _build_workload(cfg)
        run_seed = shard_seed(seed, config_hash(training_workload_spec(cfg)))
        profile = profiler.profile(
            workload, n_threads=cfg.n_threads, n_nodes=cfg.n_nodes, seed=run_seed
        )
        features, channel = hottest_channel_features(profile)
        instances.append(
            TrainingInstance(
                config=cfg, features=features, label=cfg.label, channel=channel
            )
        )
    return instances


def training_matrix(instances: list[TrainingInstance]) -> tuple[np.ndarray, np.ndarray]:
    """(X, y) arrays from training instances."""
    X = np.stack([inst.features.values for inst in instances])
    y = np.array([inst.label.value for inst in instances])
    return X, y


def train_default_classifier(
    machine: Machine,
    profiler: DrBwProfiler | None = None,
    configs: list[TrainingConfig] | None = None,
    seed: int = 0,
    *,
    jobs: int | None = None,
    cache=None,
    cache_dir: str | None = None,
    use_cache: bool = False,
    runner_opts: dict | None = None,
) -> tuple[DrBwClassifier, list[TrainingInstance]]:
    """Collect the Table II training set and fit the DR-BW classifier."""
    instances = collect_training_set(
        machine,
        profiler,
        configs,
        seed=seed,
        jobs=jobs,
        cache=cache,
        cache_dir=cache_dir,
        use_cache=use_cache,
        runner_opts=runner_opts,
    )
    X, y = training_matrix(instances)
    clf = DrBwClassifier(feature_names=TABLE1_FEATURE_NAMES)
    with get_telemetry().span("training.fit", n_instances=len(instances)):
        clf.fit(X, y)
    return clf, instances
