"""Feature selection (Section V.B).

The paper screens a candidate feature list by running each mini-program in
both modes and keeping the features that show a *significant difference in
statistics between "good" and "rmc" for a majority of mini-programs*.  We
reproduce the screen with a standardized mean-difference test:

for each candidate feature and each mini-program, compute Cohen's d
between the good-mode and rmc-mode values; a feature is *relevant for that
program* when ``|d| >= d_threshold``; a feature is *selected* when it is
relevant for a majority of the multi-threaded mini-programs.

Run on the Table II training data this rediscovers the latency-ratio,
remote/local-DRAM and LFB features of Table I, and rejects identification
features (thread/CPU counts) and the ``LLC_MISS ... REMOTE_DRAM``-style
whole-execution count the paper calls out as unhelpful.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.types import Mode

__all__ = ["FeatureScreenResult", "cohens_d", "screen_features"]


def cohens_d(a: np.ndarray, b: np.ndarray) -> float:
    """Standardized mean difference between two samples (0 when degenerate)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.size < 2 or b.size < 2:
        return 0.0
    var_a = a.var(ddof=1)
    var_b = b.var(ddof=1)
    pooled = ((a.size - 1) * var_a + (b.size - 1) * var_b) / (a.size + b.size - 2)
    if pooled <= 1e-24:
        # Degenerate spread: significant iff the means actually differ.
        return float(np.inf) if abs(a.mean() - b.mean()) > 1e-12 else 0.0
    return float((a.mean() - b.mean()) / np.sqrt(pooled))


@dataclass(frozen=True)
class FeatureScreenResult:
    """Outcome of the good-vs-rmc screen."""

    feature_names: tuple[str, ...]
    #: |Cohen's d| per (program, feature).
    effect_sizes: dict[str, np.ndarray]
    #: features relevant for a majority of programs.
    selected: tuple[str, ...]
    rejected: tuple[str, ...]

    def is_selected(self, name: str) -> bool:
        return name in self.selected


def screen_features(
    feature_names: tuple[str, ...],
    per_program: dict[str, tuple[np.ndarray, np.ndarray]],
    d_threshold: float = 0.8,
    majority: float = 0.5,
) -> FeatureScreenResult:
    """Run the selection screen.

    ``per_program[name] = (X_good, X_rmc)`` — feature matrices of the runs
    of one mini-program in each mode.  Programs with an empty mode (the
    bandit has no rmc runs) are excluded from the vote, as in the paper,
    which screens with the *multi-threaded* mini-programs.
    """
    if not per_program:
        raise ModelError("need at least one program to screen features")
    votes: dict[str, np.ndarray] = {}
    voters = 0
    n_feat = len(feature_names)
    for program, (x_good, x_rmc) in per_program.items():
        x_good = np.asarray(x_good, dtype=np.float64)
        x_rmc = np.asarray(x_rmc, dtype=np.float64)
        if x_good.size == 0 or x_rmc.size == 0:
            continue
        if x_good.shape[1] != n_feat or x_rmc.shape[1] != n_feat:
            raise ModelError(f"program {program!r} matrices do not match feature list")
        d = np.array(
            [abs(cohens_d(x_good[:, j], x_rmc[:, j])) for j in range(n_feat)]
        )
        votes[program] = d
        voters += 1
    if voters == 0:
        raise ModelError("no program has both good and rmc runs")
    tally = np.zeros(n_feat)
    for d in votes.values():
        tally += (d >= d_threshold).astype(float)
    selected_mask = tally > voters * majority - 1e-12
    selected = tuple(n for n, s in zip(feature_names, selected_mask) if s)
    rejected = tuple(n for n, s in zip(feature_names, selected_mask) if not s)
    return FeatureScreenResult(
        feature_names=feature_names,
        effect_sizes=votes,
        selected=selected,
        rejected=rejected,
    )
