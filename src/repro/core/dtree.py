"""CART decision-tree classifier, from scratch.

The paper trains its contention classifier with the decision-tree tools in
Matlab's Statistics and Machine Learning toolbox.  Neither Matlab nor
scikit-learn is available offline, so this is a compact, well-tested CART
implementation: binary splits on continuous features chosen by Gini
impurity decrease, with the usual ``max_depth`` / ``min_samples_leaf`` /
``min_impurity_decrease`` regularizers.

The fitted tree is introspectable (:meth:`DecisionTreeClassifier.render`
prints the Figure 3-style diagram; :attr:`feature_importances_` shows which
features carry the signal — the paper's tree uses features 6 and 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ModelError

__all__ = ["TreeNode", "DecisionTreeClassifier", "gini_impurity"]


def gini_impurity(counts: np.ndarray) -> float:
    """Gini impurity of a class-count vector."""
    total = counts.sum()
    if total <= 0:
        return 0.0
    p = counts / total
    return float(1.0 - np.sum(p * p))


@dataclass
class TreeNode:
    """One node of the fitted tree (leaf when ``feature`` is None)."""

    n_samples: int
    class_counts: np.ndarray
    prediction: int
    feature: int | None = None
    threshold: float = 0.0
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None

    @property
    def impurity(self) -> float:
        return gini_impurity(self.class_counts)


@dataclass
class DecisionTreeClassifier:
    """Binary-split CART classifier on continuous features."""

    max_depth: int = 4
    min_samples_leaf: int = 2
    min_samples_split: int = 4
    min_impurity_decrease: float = 1e-3

    root: TreeNode | None = field(default=None, init=False, repr=False)
    classes_: np.ndarray | None = field(default=None, init=False, repr=False)
    n_features_: int = field(default=0, init=False, repr=False)

    # -- fitting --------------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        """Fit on feature matrix ``X`` (n, f) and labels ``y`` (n,)."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ModelError(f"X must be 2-D, got shape {X.shape}")
        if y.shape != (X.shape[0],):
            raise ModelError(f"y shape {y.shape} does not match X rows {X.shape[0]}")
        if X.shape[0] == 0:
            raise ModelError("cannot fit on an empty dataset")
        if not np.all(np.isfinite(X)):
            raise ModelError("X contains non-finite values")
        self.classes_, y_enc = np.unique(y, return_inverse=True)
        self.n_features_ = X.shape[1]
        self.root = self._grow(X, y_enc, depth=0)
        return self

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> TreeNode:
        counts = np.bincount(y, minlength=len(self.classes_))
        node = TreeNode(
            n_samples=len(y),
            class_counts=counts,
            prediction=int(np.argmax(counts)),
        )
        if (
            depth >= self.max_depth
            or len(y) < self.min_samples_split
            or node.impurity == 0.0
        ):
            return node
        split = self._best_split(X, y, counts)
        if split is None:
            return node
        feature, threshold, gain = split
        if gain < self.min_impurity_decrease:
            return node
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[mask], y[mask], depth + 1)
        node.right = self._grow(X[~mask], y[~mask], depth + 1)
        return node

    def _best_split(
        self, X: np.ndarray, y: np.ndarray, parent_counts: np.ndarray
    ) -> tuple[int, float, float] | None:
        """Best (feature, threshold, weighted impurity decrease), or None."""
        n, n_feat = X.shape
        n_classes = len(self.classes_)
        parent_imp = gini_impurity(parent_counts)
        best: tuple[int, float, float] | None = None
        best_gain = 0.0
        best_margin = -1.0
        for f in range(n_feat):
            order = np.argsort(X[:, f], kind="stable")
            xs = X[order, f]
            ys = y[order]
            # One-hot cumulative class counts along the sorted axis.
            onehot = np.zeros((n, n_classes))
            onehot[np.arange(n), ys] = 1.0
            left_counts = np.cumsum(onehot, axis=0)
            total = left_counts[-1]
            # Candidate split after position i (1-based prefix i+1).
            distinct = xs[:-1] < xs[1:]
            sizes_ok = (
                (np.arange(1, n) >= self.min_samples_leaf)
                & (n - np.arange(1, n) >= self.min_samples_leaf)
            )
            candidates = np.nonzero(distinct & sizes_ok)[0]
            if candidates.size == 0:
                continue
            lc = left_counts[candidates]
            rc = total - lc
            ln = lc.sum(axis=1)
            rn = rc.sum(axis=1)
            gini_l = 1.0 - np.sum((lc / ln[:, None]) ** 2, axis=1)
            gini_r = 1.0 - np.sum((rc / rn[:, None]) ** 2, axis=1)
            weighted = (ln * gini_l + rn * gini_r) / n
            gains = parent_imp - weighted
            i = int(np.argmax(gains))
            gain = float(gains[i])
            pos = candidates[i]
            # Tie-break equal-gain splits by the widest margin in units of
            # the feature's spread (std, not range — range is dominated by
            # outliers): the split most likely to generalize, and
            # deterministic, unlike feature-index order.
            spread = float(xs.std())
            margin = float(xs[pos + 1] - xs[pos]) / spread if spread > 0 else 0.0
            better = gain > best_gain + 1e-12 or (
                gain > best_gain - 1e-12 and margin > best_margin + 1e-12
            )
            if better:
                best_gain = gain
                best_margin = margin
                threshold = float((xs[pos] + xs[pos + 1]) / 2.0)
                best = (f, threshold, best_gain)
        return best

    # -- prediction ---------------------------------------------------------------

    def _require_fitted(self) -> TreeNode:
        if self.root is None or self.classes_ is None:
            raise ModelError("classifier is not fitted")
        return self.root

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted class labels for each row of ``X``."""
        root = self._require_fitted()
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ModelError(
                f"X must have shape (n, {self.n_features_}), got {X.shape}"
            )
        out = np.empty(X.shape[0], dtype=np.int64)
        for i, row in enumerate(X):
            node = root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
                assert node is not None
            out[i] = node.prediction
        return self.classes_[out]

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Leaf class-frequency estimates, one row per sample."""
        root = self._require_fitted()
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ModelError(
                f"X must have shape (n, {self.n_features_}), got {X.shape}"
            )
        probs = np.empty((X.shape[0], len(self.classes_)))
        for i, row in enumerate(X):
            node = root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
                assert node is not None
            probs[i] = node.class_counts / node.class_counts.sum()
        return probs

    # -- introspection -----------------------------------------------------------

    @property
    def depth(self) -> int:
        """Depth of the fitted tree (0 for a stump leaf)."""
        def d(node: TreeNode | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(d(node.left), d(node.right))

        return d(self._require_fitted())

    @property
    def n_leaves(self) -> int:
        """Number of leaves in the fitted tree."""
        def count(node: TreeNode | None) -> int:
            if node is None:
                return 0
            if node.is_leaf:
                return 1
            return count(node.left) + count(node.right)

        return count(self._require_fitted())

    def used_features(self) -> set[int]:
        """Indices of features the fitted tree actually splits on."""
        used: set[int] = set()

        def walk(node: TreeNode | None) -> None:
            if node is None or node.is_leaf:
                return
            used.add(int(node.feature))  # type: ignore[arg-type]
            walk(node.left)
            walk(node.right)

        walk(self._require_fitted())
        return used

    @property
    def feature_importances_(self) -> np.ndarray:
        """Impurity-decrease feature importances, normalized to sum to 1."""
        root = self._require_fitted()
        imp = np.zeros(self.n_features_)

        def walk(node: TreeNode) -> None:
            if node.is_leaf:
                return
            assert node.left is not None and node.right is not None
            decrease = node.n_samples * node.impurity - (
                node.left.n_samples * node.left.impurity
                + node.right.n_samples * node.right.impurity
            )
            imp[node.feature] += max(decrease, 0.0)
            walk(node.left)
            walk(node.right)

        walk(root)
        total = imp.sum()
        return imp / total if total > 0 else imp

    def render(self, feature_names: list[str] | None = None) -> str:
        """Figure 3-style text rendering of the tree."""
        root = self._require_fitted()
        assert self.classes_ is not None
        lines: list[str] = []

        def name(f: int) -> str:
            return feature_names[f] if feature_names else f"feature_{f}"

        def walk(node: TreeNode, prefix: str, tag: str) -> None:
            if node.is_leaf:
                label = self.classes_[node.prediction]
                lines.append(f"{prefix}{tag}[{label}]  (n={node.n_samples})")
                return
            lines.append(
                f"{prefix}{tag}{name(node.feature)} <= {node.threshold:.4g}?"
            )
            assert node.left is not None and node.right is not None
            walk(node.left, prefix + "    ", "yes: ")
            walk(node.right, prefix + "    ", "no:  ")

        walk(root, "", "")
        return "\n".join(lines)
