"""Deterministic fault injection for the sampling → classification pipeline.

Real PEBS collection is lossy: the PEBS-at-scale literature documents
dropped records under buffer pressure, truncated DS buffers on overflow,
effective addresses that fail to resolve, latency counters with limited
width, and records stamped with the CPU a thread *used to* run on before
it migrated.  DR-BW's pipeline has to survive all of that; this module
makes each failure mode injectable, at a configurable rate, from a single
seed, so robustness is testable and regressions are reproducible.

Design rules:

* **The happy path is untouched.**  Faults are applied by *wrappers* —
  :class:`FaultyAddressSampler` around the PEBS sampler,
  :class:`FaultyPageTable` around the libnuma-style lookup — never by
  edits to the wrapped components.  A plan with all rates at zero is a
  no-op: it draws nothing from its RNG and returns the wrapped results
  unchanged, so zero-rate runs are bit-identical to unfaulted runs.
* **Determinism.**  Every fault decision comes from
  ``np.random.default_rng`` streams derived from ``FaultPlan.seed``; the
  same plan applied to the same run perturbs the same samples.
* **Observability.**  Wrappers count every perturbation they inject
  (:attr:`FaultyAddressSampler.injected`,
  :attr:`FaultyPageTable.injected_failures`) so the profiler's
  :class:`~repro.core.profiler.DroppedSampleReport` can reconcile what was
  lost against why.

The fault taxonomy, rates, and degradation semantics are documented in
``docs/robustness.md``.
"""

from __future__ import annotations

import errno
import time
from dataclasses import dataclass, fields, replace
from typing import Callable

import numpy as np

from repro.errors import FaultError
from repro.numasim.engine import RunResult
from repro.osl.pages import PageTable
from repro.pmu.sample import MemorySample, RawSampleBatch
from repro.pmu.sampler import AddressSampler

__all__ = [
    "FaultPlan",
    "FAULT_PRESETS",
    "parse_fault_plan",
    "FaultyAddressSampler",
    "FaultyPageTable",
    "InfraFaultPlan",
    "INFRA_PRESETS",
    "parse_infra_plan",
    "FaultyResultCache",
    "faulty_executor",
]

#: Base of the garbage address region used for corrupted, unmappable
#: addresses — far above any simulated allocation.
_GARBAGE_ADDRESS_BASE = 0x7F00_0000_0000


@dataclass(frozen=True)
class FaultPlan:
    """Per-fault rates (all in ``[0, 1]``) plus the seed that fixes them.

    ============================  ================================================
    ``drop_rate``                 each sample independently lost (PEBS record
                                  dropped under buffer pressure)
    ``truncate_rate``             probability the whole batch loses a contiguous
                                  tail (DS buffer overflow before drain)
    ``corrupt_address_rate``      sample address replaced by garbage (half land
                                  in an unmapped region, half bit-flip in place)
    ``latency_overflow_rate``     latency wraps modulo the counter width
                                  (``latency_counter_max``)
    ``cpu_migration_rate``        sample stamped with a stale CPU id — the
                                  thread migrated between access and record
    ``lookup_failure_rate``       transient ``numa_node_of_address`` failure
                                  during attribution (returns "unknown node")
    ============================  ================================================
    """

    drop_rate: float = 0.0
    truncate_rate: float = 0.0
    corrupt_address_rate: float = 0.0
    latency_overflow_rate: float = 0.0
    cpu_migration_rate: float = 0.0
    lookup_failure_rate: float = 0.0
    seed: int = 0
    #: Fraction of the batch lost when a truncation fires, drawn uniformly
    #: from this range (an overflow loses whatever had not been drained).
    truncate_fraction: tuple[float, float] = (0.1, 0.5)
    #: Saturation value of the latency counter, in cycles.
    latency_counter_max: int = 4096

    _RATE_FIELDS = (
        "drop_rate",
        "truncate_rate",
        "corrupt_address_rate",
        "latency_overflow_rate",
        "cpu_migration_rate",
        "lookup_failure_rate",
    )

    def __post_init__(self) -> None:
        for name in self._RATE_FIELDS:
            v = getattr(self, name)
            if not isinstance(v, (int, float)) or not 0.0 <= float(v) <= 1.0:
                raise FaultError(f"fault rate {name} must be in [0, 1], got {v!r}")
        lo, hi = self.truncate_fraction
        if not 0.0 <= lo <= hi <= 1.0:
            raise FaultError(
                f"truncate_fraction must satisfy 0 <= lo <= hi <= 1, got {self.truncate_fraction}"
            )
        if self.latency_counter_max < 2:
            raise FaultError(
                f"latency_counter_max must be >= 2, got {self.latency_counter_max}"
            )

    @property
    def is_zero(self) -> bool:
        """True when every fault rate is zero (the plan is a no-op)."""
        return all(getattr(self, name) == 0.0 for name in self._RATE_FIELDS)

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same rates under a different seed (used by resampling retries)."""
        return replace(self, seed=seed)

    def describe(self) -> str:
        """One line listing the nonzero rates, e.g. ``drop=10% corrupt=1%``."""
        if self.is_zero:
            return "no faults"
        short = {
            "drop_rate": "drop",
            "truncate_rate": "truncate",
            "corrupt_address_rate": "corrupt",
            "latency_overflow_rate": "lat-overflow",
            "cpu_migration_rate": "cpu-migrate",
            "lookup_failure_rate": "lookup-fail",
        }
        parts = [
            f"{short[name]}={getattr(self, name):.2%}"
            for name in self._RATE_FIELDS
            if getattr(self, name) > 0
        ]
        return " ".join(parts) + f" seed={self.seed}"


#: Named plans for the CLI and the evaluation harness.  ``standard`` is the
#: documented 10%-drop / 1%-corruption plan the robustness evaluation uses.
FAULT_PRESETS: dict[str, FaultPlan] = {
    "none": FaultPlan(),
    "light": FaultPlan(drop_rate=0.02, lookup_failure_rate=0.005),
    "standard": FaultPlan(
        drop_rate=0.10,
        corrupt_address_rate=0.01,
        lookup_failure_rate=0.01,
        cpu_migration_rate=0.005,
    ),
    "heavy": FaultPlan(
        drop_rate=0.30,
        truncate_rate=0.25,
        corrupt_address_rate=0.05,
        latency_overflow_rate=0.05,
        cpu_migration_rate=0.02,
        lookup_failure_rate=0.05,
    ),
}

#: ``key=value`` spellings accepted by :func:`parse_fault_plan`.
_SPEC_KEYS = {
    "drop": "drop_rate",
    "truncate": "truncate_rate",
    "corrupt": "corrupt_address_rate",
    "lat-overflow": "latency_overflow_rate",
    "cpu-migrate": "cpu_migration_rate",
    "lookup-fail": "lookup_failure_rate",
    "seed": "seed",
}


def parse_fault_plan(spec: str) -> FaultPlan:
    """Parse a preset name or a ``key=value,...`` spec into a plan.

    ``parse_fault_plan("standard")`` returns the named preset;
    ``parse_fault_plan("drop=0.1,corrupt=0.01,seed=7")`` builds a custom
    plan.  Field names accept both the short spellings above and the full
    dataclass field names.
    """
    spec = spec.strip()
    if spec in FAULT_PRESETS:
        return FAULT_PRESETS[spec]
    field_names = {f.name for f in fields(FaultPlan)}
    kwargs: dict[str, float | int] = {}
    for part in filter(None, (p.strip() for p in spec.split(","))):
        if "=" not in part:
            raise FaultError(
                f"bad fault spec {part!r}; expected a preset "
                f"({', '.join(FAULT_PRESETS)}) or key=value pairs"
            )
        key, _, value = part.partition("=")
        key = key.strip()
        name = _SPEC_KEYS.get(key, key)
        if name not in field_names or name == "truncate_fraction":
            raise FaultError(f"unknown fault spec key {key!r}")
        try:
            kwargs[name] = int(value) if name == "seed" else float(value)
        except ValueError:
            raise FaultError(f"bad value for fault spec key {key!r}: {value!r}") from None
    if not kwargs:
        raise FaultError(
            f"empty fault spec; expected a preset ({', '.join(FAULT_PRESETS)}) "
            "or key=value pairs"
        )
    return FaultPlan(**kwargs)  # type: ignore[arg-type]


class FaultyAddressSampler:
    """Wrap an :class:`AddressSampler`, perturbing the batches it emits.

    Perturbations are applied in the order a real collector would suffer
    them: buffer-overflow truncation, per-record drops, address
    corruption, latency-counter overflow, and stale CPU stamping.
    ``injected`` accumulates the count of each across calls.
    """

    def __init__(
        self,
        inner: AddressSampler,
        plan: FaultPlan,
        n_cpus: int | None = None,
    ) -> None:
        self.inner = inner
        self.plan = plan
        self.n_cpus = n_cpus
        self._rng = np.random.default_rng(plan.seed)
        self.injected: dict[str, int] = {
            "truncated": 0,
            "dropped": 0,
            "corrupted_address": 0,
            "latency_overflow": 0,
            "cpu_migration": 0,
        }

    @property
    def config(self):
        return self.inner.config

    def sample_run_batch(self, run: RunResult) -> RawSampleBatch:
        return self.perturb(self.inner.sample_run_batch(run))

    def sample_interval(self, record) -> RawSampleBatch:
        """Streaming counterpart: perturb one interval's thinned batch."""
        return self.perturb(self.inner.sample_interval(record))

    def sample_run(self, run: RunResult) -> list[MemorySample]:
        return self.sample_run_batch(run).to_samples()

    def perturb(self, batch: RawSampleBatch) -> RawSampleBatch:
        """Apply the plan to one batch (returned batch owns its arrays)."""
        plan = self.plan
        if plan.is_zero or len(batch) == 0:
            return batch

        if plan.truncate_rate > 0 and self._rng.random() < plan.truncate_rate:
            lo, hi = plan.truncate_fraction
            lost = int(len(batch) * self._rng.uniform(lo, hi))
            if lost > 0:
                self.injected["truncated"] += lost
                batch = batch.select(np.arange(len(batch) - lost))
        if len(batch) == 0:
            return batch

        if plan.drop_rate > 0:
            keep = self._rng.random(len(batch)) >= plan.drop_rate
            self.injected["dropped"] += int(len(batch) - keep.sum())
            batch = batch.select(keep)
        if len(batch) == 0:
            return batch

        batch = batch.copy()
        n = len(batch)

        if plan.corrupt_address_rate > 0:
            hit = np.nonzero(self._rng.random(n) < plan.corrupt_address_rate)[0]
            if hit.size:
                self.injected["corrupted_address"] += int(hit.size)
                # Half the corruptions land in a far unmapped region (the
                # address failed to resolve at all); the rest flip low bits
                # in place, which may still map — a silent mis-attribution.
                garbage = self._rng.random(hit.size) < 0.5
                addrs = batch.address[hit]
                addrs[garbage] = _GARBAGE_ADDRESS_BASE + self._rng.integers(
                    0, 1 << 30, size=int(garbage.sum()), dtype=np.int64
                )
                flips = 1 << self._rng.integers(0, 20, size=int((~garbage).sum()))
                addrs[~garbage] ^= flips.astype(np.int64)
                batch.address[hit] = addrs

        if plan.latency_overflow_rate > 0:
            hit = self._rng.random(n) < plan.latency_overflow_rate
            if np.any(hit):
                self.injected["latency_overflow"] += int(hit.sum())
                wrapped = np.mod(batch.latency[hit], plan.latency_counter_max)
                batch.latency[hit] = np.maximum(wrapped, 1.0)

        if plan.cpu_migration_rate > 0:
            hit = self._rng.random(n) < plan.cpu_migration_rate
            if np.any(hit):
                self.injected["cpu_migration"] += int(hit.sum())
                n_cpus = self.n_cpus or int(batch.cpu.max()) + 1
                batch.cpu[hit] = self._rng.integers(
                    0, n_cpus, size=int(hit.sum()), dtype=np.int64
                )

        return batch


class FaultyPageTable:
    """Wrap a :class:`PageTable`, injecting transient lookup failures.

    Only the *lookup* surface is perturbed (``node_of_address`` /
    ``nodes_of_addresses`` — the calls DR-BW's attribution makes through
    libnuma); mapping and placement pass straight through, as do all other
    attributes.  A failed lookup reports node ``-1``, which the profiler
    quarantines as ``lookup_failure``.
    """

    def __init__(self, inner: PageTable, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        # Decorrelated from the sampler's stream so the same seed does not
        # fail the lookups of exactly the samples it corrupted.
        self._rng = np.random.default_rng((plan.seed << 8) ^ 0xA5)
        self.injected_failures = 0

    def __getattr__(self, name: str):
        return getattr(self.inner, name)

    def node_of_address(self, addr: int, accessor_node: int | None = None) -> int:
        if self.plan.lookup_failure_rate > 0 and self._rng.random() < self.plan.lookup_failure_rate:
            self.injected_failures += 1
            return -1
        return self.inner.node_of_address(addr, accessor_node)

    def nodes_of_addresses(
        self,
        addrs: np.ndarray,
        accessor_nodes: np.ndarray | None = None,
        on_unmapped: str = "raise",
    ) -> np.ndarray:
        out = self.inner.nodes_of_addresses(addrs, accessor_nodes, on_unmapped=on_unmapped)
        rate = self.plan.lookup_failure_rate
        if rate > 0 and out.size:
            fail = (self._rng.random(out.size) < rate) & (out >= 0)
            if np.any(fail):
                out = out.copy()
                out[fail] = -1
                self.injected_failures += int(fail.sum())
        return out


# ---------------------------------------------------------------------------
# Infrastructure faults: the execution layer, not the data path.
#
# Where FaultPlan perturbs *samples* (what a lossy PEBS collector emits),
# InfraFaultPlan perturbs the *machinery running the campaign*: worker
# processes die mid-shard, the cache filesystem corrupts / errors / fills
# up / slows down, service jobs hang.  The resilience layer
# (repro.resilience, the hardened CampaignRunner, the service watchdog)
# must absorb all of it without changing a single result byte — which the
# chaos suite in tests/resilience/ asserts.
#
# The cardinal rule: infra faults are injected *around* shard execution
# (in the runner's dispatch and the cache's I/O hooks), never *into* shard
# specs.  A fault that leaked into a spec would change its config_hash,
# hence its derived seed, hence its payload — destroying the byte-identity
# the whole exercise is meant to prove.
# ---------------------------------------------------------------------------


def _infra_unit(seed: int, *tokens: object) -> float:
    """Deterministic uniform draw in ``[0, 1)`` keyed by ``(seed, tokens)``.

    Stateless — unlike an RNG stream, the decision for one (fault, shard)
    pair does not depend on how many other decisions were drawn first, so
    it is identical under any worker count or dispatch order.
    """
    from repro.resilience import _unit_interval

    return _unit_interval(seed, *tokens)


@dataclass(frozen=True)
class InfraFaultPlan:
    """Deterministic infrastructure-fault schedule for chaos testing.

    ============================  ================================================
    ``worker_kill_rate``          fraction of shards whose worker process is
                                  killed (``os._exit``) — at ``kill_point``
                                  "before" the shard runs or "after" it finishes
                                  but before the result is returned
    ``shard_hang_rate``           fraction of shards that stall ``shard_hang_s``
                                  seconds before running (deadline-watchdog food)
    ``cache_corrupt_rate``        fraction of cache keys whose written bytes are
                                  mangled (read back as a corrupt envelope)
    ``cache_io_error_rate``       fraction of cache keys whose reads raise EIO
    ``cache_enospc_rate``         fraction of cache keys whose writes raise
                                  ENOSPC (disk full)
    ``cache_slow_s``              added latency on every cache I/O operation
    ``service_hang_rate``         fraction of service jobs that stall
                                  ``service_hang_s`` seconds mid-execution
    ============================  ================================================

    Every decision is a pure function of ``(seed, fault, identity token)``
    — no RNG stream, so dispatch order and worker count cannot change
    which shard gets which fault.  Kills and hangs additionally key on the
    attempt number and stop after ``max_faults_per_task`` attempts, so a
    targeted shard *always* completes once the retry budget exceeds the
    fault budget — making chaos runs deterministic end to end.
    """

    worker_kill_rate: float = 0.0
    kill_point: str = "before"
    shard_hang_rate: float = 0.0
    shard_hang_s: float = 30.0
    cache_corrupt_rate: float = 0.0
    cache_io_error_rate: float = 0.0
    cache_enospc_rate: float = 0.0
    cache_slow_s: float = 0.0
    service_hang_rate: float = 0.0
    service_hang_s: float = 30.0
    max_faults_per_task: int = 2
    seed: int = 0

    _RATE_FIELDS = (
        "worker_kill_rate",
        "shard_hang_rate",
        "cache_corrupt_rate",
        "cache_io_error_rate",
        "cache_enospc_rate",
        "service_hang_rate",
    )

    def __post_init__(self) -> None:
        for name in self._RATE_FIELDS:
            v = getattr(self, name)
            if not isinstance(v, (int, float)) or not 0.0 <= float(v) <= 1.0:
                raise FaultError(f"infra fault rate {name} must be in [0, 1], got {v!r}")
        if self.kill_point not in ("before", "after"):
            raise FaultError(
                f"kill_point must be 'before' or 'after', got {self.kill_point!r}"
            )
        for name in ("shard_hang_s", "cache_slow_s", "service_hang_s"):
            if getattr(self, name) < 0:
                raise FaultError(f"{name} must be >= 0, got {getattr(self, name)}")
        if self.max_faults_per_task < 1:
            raise FaultError(
                f"max_faults_per_task must be >= 1, got {self.max_faults_per_task}"
            )

    @property
    def is_zero(self) -> bool:
        """True when the plan injects nothing (bit-identical no-op)."""
        return (
            all(getattr(self, name) == 0.0 for name in self._RATE_FIELDS)
            and self.cache_slow_s == 0.0
        )

    def with_seed(self, seed: int) -> "InfraFaultPlan":
        return replace(self, seed=seed)

    def decide(self, rate_field: str, *tokens: object) -> bool:
        """One deterministic fault decision keyed by ``(seed, fault, tokens)``."""
        rate = getattr(self, rate_field)
        if rate <= 0.0:
            return False
        return _infra_unit(self.seed, rate_field, *tokens) < rate

    def kill_decision(self, token: str, attempt: int) -> bool:
        """Should the worker running attempt ``attempt`` of this shard die?

        Targeted shards are killed on attempts ``1..max_faults_per_task``
        and then left alone, so bounded retries always converge.
        """
        return attempt <= self.max_faults_per_task and self.decide(
            "worker_kill_rate", token
        )

    def hang_decision(self, token: str, attempt: int) -> bool:
        """Should attempt ``attempt`` of this shard stall past its deadline?"""
        return attempt <= self.max_faults_per_task and self.decide(
            "shard_hang_rate", token
        )

    def describe(self) -> str:
        if self.is_zero:
            return "no infra faults"
        short = {
            "worker_kill_rate": "kill",
            "shard_hang_rate": "shard-hang",
            "cache_corrupt_rate": "cache-corrupt",
            "cache_io_error_rate": "cache-io",
            "cache_enospc_rate": "enospc",
            "service_hang_rate": "svc-hang",
        }
        parts = [
            f"{short[name]}={getattr(self, name):.2%}"
            for name in self._RATE_FIELDS
            if getattr(self, name) > 0
        ]
        if self.cache_slow_s > 0:
            parts.append(f"cache-slow={self.cache_slow_s}s")
        return " ".join(parts) + f" seed={self.seed}"


#: Named infra plans.  ``chaos-standard`` is what the CI chaos-smoke job
#: and the acceptance chaos test run: worker kills plus cache corruption
#: and a full disk, all survivable within the default retry budget.
INFRA_PRESETS: dict[str, InfraFaultPlan] = {
    "none": InfraFaultPlan(),
    "chaos-standard": InfraFaultPlan(
        worker_kill_rate=0.30,
        cache_corrupt_rate=0.25,
        cache_enospc_rate=0.25,
    ),
    "chaos-heavy": InfraFaultPlan(
        worker_kill_rate=0.50,
        kill_point="after",
        cache_corrupt_rate=0.40,
        cache_io_error_rate=0.30,
        cache_enospc_rate=0.40,
        cache_slow_s=0.01,
    ),
}

_INFRA_SPEC_KEYS = {
    "kill": "worker_kill_rate",
    "kill-point": "kill_point",
    "shard-hang": "shard_hang_rate",
    "shard-hang-s": "shard_hang_s",
    "cache-corrupt": "cache_corrupt_rate",
    "cache-io": "cache_io_error_rate",
    "enospc": "cache_enospc_rate",
    "cache-slow": "cache_slow_s",
    "svc-hang": "service_hang_rate",
    "svc-hang-s": "service_hang_s",
    "max-faults": "max_faults_per_task",
    "seed": "seed",
}


def parse_infra_plan(spec: str) -> InfraFaultPlan:
    """Parse a preset name or ``key=value,...`` spec into an infra plan.

    ``parse_infra_plan("chaos-standard")`` returns the named preset;
    ``parse_infra_plan("kill=0.3,enospc=0.2,seed=7")`` builds a custom
    plan; ``parse_infra_plan("chaos-standard,seed=42")`` starts from the
    preset and overrides fields.  Keys accept the short spellings and
    full field names.
    """
    spec = spec.strip()
    if spec in INFRA_PRESETS:
        return INFRA_PRESETS[spec]
    field_names = {f.name for f in fields(InfraFaultPlan)}
    kwargs: dict[str, object] = {}
    parts = list(filter(None, (p.strip() for p in spec.split(","))))
    if parts and parts[0] in INFRA_PRESETS:
        # "chaos-standard,seed=42" — start from the preset, then override.
        base = INFRA_PRESETS[parts.pop(0)]
        kwargs.update({f.name: getattr(base, f.name) for f in fields(base)})
    for part in parts:
        if "=" not in part:
            raise FaultError(
                f"bad infra fault spec {part!r}; expected a preset "
                f"({', '.join(INFRA_PRESETS)}) or key=value pairs"
            )
        key, _, value = part.partition("=")
        key = key.strip()
        name = _INFRA_SPEC_KEYS.get(key, key)
        if name not in field_names:
            raise FaultError(f"unknown infra fault spec key {key!r}")
        try:
            if name == "kill_point":
                kwargs[name] = value.strip()
            elif name in ("seed", "max_faults_per_task"):
                kwargs[name] = int(value)
            else:
                kwargs[name] = float(value)
        except ValueError:
            raise FaultError(
                f"bad value for infra fault spec key {key!r}: {value!r}"
            ) from None
    if not kwargs:
        raise FaultError(
            f"empty infra fault spec; expected a preset ({', '.join(INFRA_PRESETS)}) "
            "or key=value pairs"
        )
    return InfraFaultPlan(**kwargs)  # type: ignore[arg-type]


def _faulty_cache_class():
    """Build :class:`FaultyResultCache` lazily (avoids an import cycle —
    ``repro.parallel`` imports are deferred until first use)."""
    from repro.parallel.cache import ResultCache

    class FaultyResultCache(ResultCache):
        """A :class:`ResultCache` whose raw I/O hooks inject infra faults.

        Because only the two ``_read_entry_text`` / ``_write_entry_text``
        hooks are overridden, every injected fault passes through the
        production error handling — breaker accounting, eviction,
        in-memory fallback — exactly as a real disk fault would.

        Key-based determinism: a key decided faulty is faulty on *every*
        operation, so e.g. an ENOSPC key permanently lives in the memory
        overlay (exactly how a real full disk behaves for new writes).
        """

        def __init__(self, *args, infra_plan: InfraFaultPlan, **kwargs) -> None:
            self.infra_plan = infra_plan
            self.injected: dict[str, int] = {
                "read_errors": 0,
                "write_enospc": 0,
                "corrupted_writes": 0,
                "slow_ops": 0,
            }
            super().__init__(*args, **kwargs)

        def _read_entry_text(self, path):
            plan = self.infra_plan
            if plan.cache_slow_s > 0:
                self.injected["slow_ops"] += 1
                time.sleep(plan.cache_slow_s)
            if plan.decide("cache_io_error_rate", "read", path.stem):
                self.injected["read_errors"] += 1
                raise OSError(errno.EIO, f"injected read error for {path.name}")
            return super()._read_entry_text(path)

        def _write_entry_text(self, path, text):
            plan = self.infra_plan
            if plan.cache_slow_s > 0:
                self.injected["slow_ops"] += 1
                time.sleep(plan.cache_slow_s)
            if plan.decide("cache_enospc_rate", "write", path.stem):
                self.injected["write_enospc"] += 1
                raise OSError(errno.ENOSPC, f"injected ENOSPC for {path.name}")
            if plan.decide("cache_corrupt_rate", "corrupt", path.stem):
                self.injected["corrupted_writes"] += 1
                text = text[: max(1, len(text) // 2)] + '#torn-write"'
            super()._write_entry_text(path, text)

    return FaultyResultCache


def __getattr__(name: str):
    if name == "FaultyResultCache":
        cls = _faulty_cache_class()
        globals()["FaultyResultCache"] = cls
        return cls
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def faulty_executor(
    plan: InfraFaultPlan,
    inner: Callable[[dict], dict] | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> Callable[[dict], dict]:
    """Wrap a service job executor so selected jobs hang mid-execution.

    The hang fires *inside* the executor — after the job left the queue,
    while a worker thread owns it — which is exactly the stuck state the
    service watchdog exists to recover from.  Decisions key on the job's
    canonical identity, so the same job hangs (or not) on every run.
    """
    if inner is None:
        from repro.service.jobspec import execute_job as inner

    def run(spec: dict) -> dict:
        if plan.service_hang_rate > 0:
            from repro.parallel.seeding import config_hash

            if plan.decide("service_hang_rate", config_hash(spec)):
                sleep(plan.service_hang_s)
        return inner(spec)

    return run
