"""Deterministic fault injection for the sampling → classification pipeline.

Real PEBS collection is lossy: the PEBS-at-scale literature documents
dropped records under buffer pressure, truncated DS buffers on overflow,
effective addresses that fail to resolve, latency counters with limited
width, and records stamped with the CPU a thread *used to* run on before
it migrated.  DR-BW's pipeline has to survive all of that; this module
makes each failure mode injectable, at a configurable rate, from a single
seed, so robustness is testable and regressions are reproducible.

Design rules:

* **The happy path is untouched.**  Faults are applied by *wrappers* —
  :class:`FaultyAddressSampler` around the PEBS sampler,
  :class:`FaultyPageTable` around the libnuma-style lookup — never by
  edits to the wrapped components.  A plan with all rates at zero is a
  no-op: it draws nothing from its RNG and returns the wrapped results
  unchanged, so zero-rate runs are bit-identical to unfaulted runs.
* **Determinism.**  Every fault decision comes from
  ``np.random.default_rng`` streams derived from ``FaultPlan.seed``; the
  same plan applied to the same run perturbs the same samples.
* **Observability.**  Wrappers count every perturbation they inject
  (:attr:`FaultyAddressSampler.injected`,
  :attr:`FaultyPageTable.injected_failures`) so the profiler's
  :class:`~repro.core.profiler.DroppedSampleReport` can reconcile what was
  lost against why.

The fault taxonomy, rates, and degradation semantics are documented in
``docs/robustness.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

import numpy as np

from repro.errors import FaultError
from repro.numasim.engine import RunResult
from repro.osl.pages import PageTable
from repro.pmu.sample import MemorySample, RawSampleBatch
from repro.pmu.sampler import AddressSampler

__all__ = [
    "FaultPlan",
    "FAULT_PRESETS",
    "parse_fault_plan",
    "FaultyAddressSampler",
    "FaultyPageTable",
]

#: Base of the garbage address region used for corrupted, unmappable
#: addresses — far above any simulated allocation.
_GARBAGE_ADDRESS_BASE = 0x7F00_0000_0000


@dataclass(frozen=True)
class FaultPlan:
    """Per-fault rates (all in ``[0, 1]``) plus the seed that fixes them.

    ============================  ================================================
    ``drop_rate``                 each sample independently lost (PEBS record
                                  dropped under buffer pressure)
    ``truncate_rate``             probability the whole batch loses a contiguous
                                  tail (DS buffer overflow before drain)
    ``corrupt_address_rate``      sample address replaced by garbage (half land
                                  in an unmapped region, half bit-flip in place)
    ``latency_overflow_rate``     latency wraps modulo the counter width
                                  (``latency_counter_max``)
    ``cpu_migration_rate``        sample stamped with a stale CPU id — the
                                  thread migrated between access and record
    ``lookup_failure_rate``       transient ``numa_node_of_address`` failure
                                  during attribution (returns "unknown node")
    ============================  ================================================
    """

    drop_rate: float = 0.0
    truncate_rate: float = 0.0
    corrupt_address_rate: float = 0.0
    latency_overflow_rate: float = 0.0
    cpu_migration_rate: float = 0.0
    lookup_failure_rate: float = 0.0
    seed: int = 0
    #: Fraction of the batch lost when a truncation fires, drawn uniformly
    #: from this range (an overflow loses whatever had not been drained).
    truncate_fraction: tuple[float, float] = (0.1, 0.5)
    #: Saturation value of the latency counter, in cycles.
    latency_counter_max: int = 4096

    _RATE_FIELDS = (
        "drop_rate",
        "truncate_rate",
        "corrupt_address_rate",
        "latency_overflow_rate",
        "cpu_migration_rate",
        "lookup_failure_rate",
    )

    def __post_init__(self) -> None:
        for name in self._RATE_FIELDS:
            v = getattr(self, name)
            if not isinstance(v, (int, float)) or not 0.0 <= float(v) <= 1.0:
                raise FaultError(f"fault rate {name} must be in [0, 1], got {v!r}")
        lo, hi = self.truncate_fraction
        if not 0.0 <= lo <= hi <= 1.0:
            raise FaultError(
                f"truncate_fraction must satisfy 0 <= lo <= hi <= 1, got {self.truncate_fraction}"
            )
        if self.latency_counter_max < 2:
            raise FaultError(
                f"latency_counter_max must be >= 2, got {self.latency_counter_max}"
            )

    @property
    def is_zero(self) -> bool:
        """True when every fault rate is zero (the plan is a no-op)."""
        return all(getattr(self, name) == 0.0 for name in self._RATE_FIELDS)

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same rates under a different seed (used by resampling retries)."""
        return replace(self, seed=seed)

    def describe(self) -> str:
        """One line listing the nonzero rates, e.g. ``drop=10% corrupt=1%``."""
        if self.is_zero:
            return "no faults"
        short = {
            "drop_rate": "drop",
            "truncate_rate": "truncate",
            "corrupt_address_rate": "corrupt",
            "latency_overflow_rate": "lat-overflow",
            "cpu_migration_rate": "cpu-migrate",
            "lookup_failure_rate": "lookup-fail",
        }
        parts = [
            f"{short[name]}={getattr(self, name):.2%}"
            for name in self._RATE_FIELDS
            if getattr(self, name) > 0
        ]
        return " ".join(parts) + f" seed={self.seed}"


#: Named plans for the CLI and the evaluation harness.  ``standard`` is the
#: documented 10%-drop / 1%-corruption plan the robustness evaluation uses.
FAULT_PRESETS: dict[str, FaultPlan] = {
    "none": FaultPlan(),
    "light": FaultPlan(drop_rate=0.02, lookup_failure_rate=0.005),
    "standard": FaultPlan(
        drop_rate=0.10,
        corrupt_address_rate=0.01,
        lookup_failure_rate=0.01,
        cpu_migration_rate=0.005,
    ),
    "heavy": FaultPlan(
        drop_rate=0.30,
        truncate_rate=0.25,
        corrupt_address_rate=0.05,
        latency_overflow_rate=0.05,
        cpu_migration_rate=0.02,
        lookup_failure_rate=0.05,
    ),
}

#: ``key=value`` spellings accepted by :func:`parse_fault_plan`.
_SPEC_KEYS = {
    "drop": "drop_rate",
    "truncate": "truncate_rate",
    "corrupt": "corrupt_address_rate",
    "lat-overflow": "latency_overflow_rate",
    "cpu-migrate": "cpu_migration_rate",
    "lookup-fail": "lookup_failure_rate",
    "seed": "seed",
}


def parse_fault_plan(spec: str) -> FaultPlan:
    """Parse a preset name or a ``key=value,...`` spec into a plan.

    ``parse_fault_plan("standard")`` returns the named preset;
    ``parse_fault_plan("drop=0.1,corrupt=0.01,seed=7")`` builds a custom
    plan.  Field names accept both the short spellings above and the full
    dataclass field names.
    """
    spec = spec.strip()
    if spec in FAULT_PRESETS:
        return FAULT_PRESETS[spec]
    field_names = {f.name for f in fields(FaultPlan)}
    kwargs: dict[str, float | int] = {}
    for part in filter(None, (p.strip() for p in spec.split(","))):
        if "=" not in part:
            raise FaultError(
                f"bad fault spec {part!r}; expected a preset "
                f"({', '.join(FAULT_PRESETS)}) or key=value pairs"
            )
        key, _, value = part.partition("=")
        key = key.strip()
        name = _SPEC_KEYS.get(key, key)
        if name not in field_names or name == "truncate_fraction":
            raise FaultError(f"unknown fault spec key {key!r}")
        try:
            kwargs[name] = int(value) if name == "seed" else float(value)
        except ValueError:
            raise FaultError(f"bad value for fault spec key {key!r}: {value!r}") from None
    if not kwargs:
        raise FaultError(
            f"empty fault spec; expected a preset ({', '.join(FAULT_PRESETS)}) "
            "or key=value pairs"
        )
    return FaultPlan(**kwargs)  # type: ignore[arg-type]


class FaultyAddressSampler:
    """Wrap an :class:`AddressSampler`, perturbing the batches it emits.

    Perturbations are applied in the order a real collector would suffer
    them: buffer-overflow truncation, per-record drops, address
    corruption, latency-counter overflow, and stale CPU stamping.
    ``injected`` accumulates the count of each across calls.
    """

    def __init__(
        self,
        inner: AddressSampler,
        plan: FaultPlan,
        n_cpus: int | None = None,
    ) -> None:
        self.inner = inner
        self.plan = plan
        self.n_cpus = n_cpus
        self._rng = np.random.default_rng(plan.seed)
        self.injected: dict[str, int] = {
            "truncated": 0,
            "dropped": 0,
            "corrupted_address": 0,
            "latency_overflow": 0,
            "cpu_migration": 0,
        }

    @property
    def config(self):
        return self.inner.config

    def sample_run_batch(self, run: RunResult) -> RawSampleBatch:
        return self.perturb(self.inner.sample_run_batch(run))

    def sample_interval(self, record) -> RawSampleBatch:
        """Streaming counterpart: perturb one interval's thinned batch."""
        return self.perturb(self.inner.sample_interval(record))

    def sample_run(self, run: RunResult) -> list[MemorySample]:
        return self.sample_run_batch(run).to_samples()

    def perturb(self, batch: RawSampleBatch) -> RawSampleBatch:
        """Apply the plan to one batch (returned batch owns its arrays)."""
        plan = self.plan
        if plan.is_zero or len(batch) == 0:
            return batch

        if plan.truncate_rate > 0 and self._rng.random() < plan.truncate_rate:
            lo, hi = plan.truncate_fraction
            lost = int(len(batch) * self._rng.uniform(lo, hi))
            if lost > 0:
                self.injected["truncated"] += lost
                batch = batch.select(np.arange(len(batch) - lost))
        if len(batch) == 0:
            return batch

        if plan.drop_rate > 0:
            keep = self._rng.random(len(batch)) >= plan.drop_rate
            self.injected["dropped"] += int(len(batch) - keep.sum())
            batch = batch.select(keep)
        if len(batch) == 0:
            return batch

        batch = batch.copy()
        n = len(batch)

        if plan.corrupt_address_rate > 0:
            hit = np.nonzero(self._rng.random(n) < plan.corrupt_address_rate)[0]
            if hit.size:
                self.injected["corrupted_address"] += int(hit.size)
                # Half the corruptions land in a far unmapped region (the
                # address failed to resolve at all); the rest flip low bits
                # in place, which may still map — a silent mis-attribution.
                garbage = self._rng.random(hit.size) < 0.5
                addrs = batch.address[hit]
                addrs[garbage] = _GARBAGE_ADDRESS_BASE + self._rng.integers(
                    0, 1 << 30, size=int(garbage.sum()), dtype=np.int64
                )
                flips = 1 << self._rng.integers(0, 20, size=int((~garbage).sum()))
                addrs[~garbage] ^= flips.astype(np.int64)
                batch.address[hit] = addrs

        if plan.latency_overflow_rate > 0:
            hit = self._rng.random(n) < plan.latency_overflow_rate
            if np.any(hit):
                self.injected["latency_overflow"] += int(hit.sum())
                wrapped = np.mod(batch.latency[hit], plan.latency_counter_max)
                batch.latency[hit] = np.maximum(wrapped, 1.0)

        if plan.cpu_migration_rate > 0:
            hit = self._rng.random(n) < plan.cpu_migration_rate
            if np.any(hit):
                self.injected["cpu_migration"] += int(hit.sum())
                n_cpus = self.n_cpus or int(batch.cpu.max()) + 1
                batch.cpu[hit] = self._rng.integers(
                    0, n_cpus, size=int(hit.sum()), dtype=np.int64
                )

        return batch


class FaultyPageTable:
    """Wrap a :class:`PageTable`, injecting transient lookup failures.

    Only the *lookup* surface is perturbed (``node_of_address`` /
    ``nodes_of_addresses`` — the calls DR-BW's attribution makes through
    libnuma); mapping and placement pass straight through, as do all other
    attributes.  A failed lookup reports node ``-1``, which the profiler
    quarantines as ``lookup_failure``.
    """

    def __init__(self, inner: PageTable, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        # Decorrelated from the sampler's stream so the same seed does not
        # fail the lookups of exactly the samples it corrupted.
        self._rng = np.random.default_rng((plan.seed << 8) ^ 0xA5)
        self.injected_failures = 0

    def __getattr__(self, name: str):
        return getattr(self.inner, name)

    def node_of_address(self, addr: int, accessor_node: int | None = None) -> int:
        if self.plan.lookup_failure_rate > 0 and self._rng.random() < self.plan.lookup_failure_rate:
            self.injected_failures += 1
            return -1
        return self.inner.node_of_address(addr, accessor_node)

    def nodes_of_addresses(
        self,
        addrs: np.ndarray,
        accessor_nodes: np.ndarray | None = None,
        on_unmapped: str = "raise",
    ) -> np.ndarray:
        out = self.inner.nodes_of_addresses(addrs, accessor_nodes, on_unmapped=on_unmapped)
        rate = self.plan.lookup_failure_rate
        if rate > 0 and out.size:
            fail = (self._rng.random(out.size) < rate) & (out >= 0)
            if np.any(fail):
                out = out.copy()
                out[fail] = -1
                self.injected_failures += int(fail.sum())
        return out
