"""Crash-resilience primitives: retries, deadlines, circuit breakers.

The execution layers (``repro.parallel`` campaigns, the ``repro.service``
daemon) share three small mechanisms:

* :class:`RetryPolicy` — bounded attempts with exponential backoff and
  **seeded deterministic jitter**: the delay before retry *k* of token
  *t* is a pure function of ``(seed, t, k)``, so a retried campaign
  sleeps the same schedule on every run and the overall result stays
  reproducible (real randomness in backoff would make wall-clock — and
  therefore logs, traces, and interleavings — diverge run to run).
* :class:`Deadline` — a monotonic-clock budget for one task, with an
  injectable clock so timeout handling is testable without sleeping.
* :class:`CircuitBreaker` — the classic closed → open → half-open state
  machine.  The on-disk :class:`~repro.parallel.cache.ResultCache` uses
  one to stop hammering a failing filesystem: after ``failure_threshold``
  consecutive I/O errors the breaker opens and the cache degrades to an
  in-memory overlay; after ``reset_after_s`` one probe operation is let
  through (half-open) and a success re-closes the breaker.

Design rule, after the PEBS-at-scale overhead discipline: resilience must
cost ~nothing when nothing fails.  On the happy path each primitive is a
branch and an integer compare — no syscalls, no allocation, no RNG draw.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigError, DeadlineExceededError

__all__ = ["RetryPolicy", "Deadline", "CircuitBreaker"]


def _unit_interval(*parts: object) -> float:
    """A deterministic uniform draw in ``[0, 1)`` from hashed tokens.

    Pure function of its inputs (SHA-256, not Python ``hash``): identical
    across processes, platforms, and ``PYTHONHASHSEED`` values.
    """
    material = "|".join(str(p) for p in parts).encode("utf-8")
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    ``max_attempts`` counts *total* tries, so ``max_attempts=1`` disables
    retrying.  ``delay_s(attempt, token)`` is the sleep before retry
    ``attempt`` (1-based: the delay after the first failure is attempt 1)
    of the task identified by ``token`` — jitter is derived from
    ``(seed, token, attempt)``, never from a live RNG.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    backoff: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ConfigError("retry delays must be >= 0")
        if self.backoff < 1.0:
            raise ConfigError(f"backoff must be >= 1, got {self.backoff}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay_s(self, attempt: int, token: str = "") -> float:
        """Backoff delay before retry ``attempt`` (>= 1) of ``token``."""
        if attempt < 1:
            return 0.0
        delay = min(self.base_delay_s * self.backoff ** (attempt - 1), self.max_delay_s)
        if self.jitter:
            # Jitter spreads delay in [delay*(1-j), delay*(1+j)] — but
            # deterministically, keyed by (seed, token, attempt).
            u = _unit_interval(self.seed, token, attempt)
            delay *= 1.0 + self.jitter * (2.0 * u - 1.0)
        return delay

    def call(
        self,
        fn: Callable[[], object],
        *,
        token: str = "",
        retry_on: tuple[type[BaseException], ...] = (OSError,),
        sleep: Callable[[float], None] = time.sleep,
    ):
        """Run ``fn`` under this policy; re-raise after the final attempt."""
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn()
            except retry_on:
                if attempt >= self.max_attempts:
                    raise
                sleep(self.delay_s(attempt, token))
        raise AssertionError("unreachable")  # pragma: no cover


class Deadline:
    """A per-task time budget on an injectable monotonic clock.

    ``timeout_s=None`` is the unbounded deadline: it never expires and
    costs one ``is None`` check per query.
    """

    __slots__ = ("timeout_s", "_clock", "_expires_at")

    def __init__(
        self,
        timeout_s: float | None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if timeout_s is not None and timeout_s <= 0:
            raise ConfigError(f"deadline timeout must be > 0, got {timeout_s}")
        self.timeout_s = timeout_s
        self._clock = clock
        self._expires_at = None if timeout_s is None else clock() + timeout_s

    @property
    def expired(self) -> bool:
        return self._expires_at is not None and self._clock() >= self._expires_at

    def remaining(self) -> float | None:
        """Seconds left (clamped at 0), or ``None`` when unbounded."""
        if self._expires_at is None:
            return None
        return max(0.0, self._expires_at - self._clock())

    def check(self, label: str = "task") -> None:
        """Raise :class:`DeadlineExceededError` once the budget is spent."""
        if self.expired:
            raise DeadlineExceededError(
                f"{label} exceeded its {self.timeout_s}s deadline"
            )


class CircuitBreaker:
    """Closed → open → half-open breaker over consecutive failures.

    Thread-safe (the service's worker threads share the cache's breaker).
    ``allow()`` answers "may I try the protected operation?": always in
    ``closed``, never in ``open``, and once per probe window in
    ``half-open``.  Callers report outcomes with :meth:`record_success`
    / :meth:`record_failure`.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_after_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_after_s <= 0:
            raise ConfigError(f"reset_after_s must be > 0, got {reset_after_s}")
        self.failure_threshold = failure_threshold
        self.reset_after_s = reset_after_s
        self._clock = clock
        self._lock = threading.Lock()
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self.trips = 0

    @property
    def state(self) -> str:
        """``closed``, ``open``, or ``half-open``."""
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if self._opened_at is None:
            return "closed"
        if self._clock() - self._opened_at >= self.reset_after_s:
            return "half-open"
        return "open"

    def allow(self) -> bool:
        """True when the protected operation should be attempted."""
        with self._lock:
            state = self._state_locked()
            if state == "closed":
                return True
            if state == "half-open":
                # One probe per window: re-arm the window so concurrent
                # callers do not all pile onto a still-broken resource.
                self._opened_at = self._clock() - self.reset_after_s + min(
                    1.0, self.reset_after_s / 2
                )
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._opened_at = None

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            if (
                self._opened_at is None
                and self._consecutive_failures >= self.failure_threshold
            ):
                self.trips += 1
            if self._consecutive_failures >= self.failure_threshold:
                self._opened_at = self._clock()
