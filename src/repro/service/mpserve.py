"""Multi-process sharded serving: the ``drbw serve --workers N`` supervisor.

One supervisor process pre-forks ``N`` worker processes, each a complete
single-process service (HTTP handler threads + job worker threads +
warm-result cache), all answering on **one** host:port:

* **SO_REUSEPORT** (Linux, macOS): every worker binds its own listening
  socket to the shared port and the kernel load-balances accepted
  connections across them.  The supervisor binds first only to reserve
  the port (and resolve ``port=0``), then closes its socket once every
  worker has reported ready — the supervisor never accepts.
* **Inherited-socket pre-fork** (portable fallback): the supervisor
  binds one listening socket and forks; every worker accepts from the
  shared inherited socket.

What makes N processes *one service*:

* the shared :class:`~repro.parallel.cache.ResultCache` directory plus
  its claim-file protocol gives **cross-process single-flight** — a
  storm of identical specs executes once fleet-wide
  (``ResultCache.single_flight``);
* a :class:`~repro.service.routing.HashRing` names an owning worker per
  job key, so the claim race is usually won without contention;
* fleet-unique job ids (``job-w1-000003``) plus shared per-job records
  (:class:`~repro.service.jobstore.JobStore`) mean a status or result
  poll answered by *any* worker — the kernel picks one per connection —
  reports the right job, byte-identically;
* ``/metrics`` scraped from any worker merges every worker's snapshot
  file into one fleet page (:mod:`~repro.service.metricsagg`);
* SIGTERM to the supervisor forwards SIGTERM to every worker; each
  drains its accepted jobs and exits 0, and the supervisor exits 0 once
  all have.

Workers are full processes, so results are byte-identical to the
single-process path by construction: the same executor produces the
same canonical JSON whichever process runs it, and the cache stores
exactly those bytes (pinned by ``tests/service/test_mpserve.py`` and
the ``bench_mpserve`` in-bench identity assertion).
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import shutil
import signal
import socket
import sys
import tempfile
import time
from dataclasses import asdict, dataclass, replace

from repro.errors import ServiceError
from repro.parallel.cache import ResultCache
from repro.service.accesslog import AccessLog, JsonlWriter
from repro.service.admission import AdmissionController
from repro.service.jobstore import JobStore
from repro.service.queue import SERVICE_CACHE_SCHEMA, ServiceQueue
from repro.service.routing import HashRing
from repro.service.server import ServiceServer

__all__ = ["WorkerConfig", "ServiceSupervisor", "build_worker_server"]

logger = logging.getLogger(__name__)

#: How long the supervisor waits for every worker to report ready.
READY_TIMEOUT_S = 30.0

#: How long the supervisor waits for workers to drain after SIGTERM
#: before escalating to SIGKILL (a drain should be bounded by job
#: runtimes; this is the backstop against a wedged worker).
DRAIN_TIMEOUT_S = 120.0


@dataclass(frozen=True)
class WorkerConfig:
    """Plain-data serve configuration, shared by supervisor and workers.

    Everything here is JSON-able on purpose: workers rebuild their whole
    stack from this one value after the fork, so nothing live (sockets
    aside) crosses the process boundary.
    """

    host: str = "127.0.0.1"
    port: int = 8787
    #: Server *processes* (the supervisor path engages when > 1).
    workers: int = 1
    #: Job worker *threads* per process.
    threads: int = 2
    capacity: int = 16
    rate: float | None = None
    burst: float = 10.0
    cache_dir: str | None = None
    no_cache: bool = False
    telemetry_enabled: bool = True
    job_timeout_s: float | None = None
    job_max_attempts: int = 1
    degraded_window_s: float = 30.0
    infra_faults: str | None = None
    access_log: str | None = None
    span_log: str | None = None
    #: Shared metrics-snapshot directory (supervisor fills it in).
    metrics_dir: str | None = None
    #: Shared per-job record directory: any worker can answer status and
    #: result polls for jobs accepted by a sibling (supervisor fills it in).
    jobs_dir: str | None = None
    #: Listener strategy: ``auto`` picks SO_REUSEPORT when the platform
    #: has it, else the inherited-socket pre-fork; tests pin one.
    listener: str = "auto"
    batch_depth_fraction: float = 0.5
    #: Non-owner claim deferral (seconds).  Off by default: the claim
    #: file is atomic, so exactly-once holds without it, and against the
    #: shared cache directory a deferral only adds latency.
    single_flight_defer_s: float = 0.0
    single_flight_timeout_s: float = 120.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ServiceError(f"workers must be >= 1, got {self.workers}")
        if self.listener not in ("auto", "reuseport", "inherit"):
            raise ServiceError(
                f"listener must be auto|reuseport|inherit, got {self.listener!r}"
            )

    def to_dict(self) -> dict:
        return asdict(self)


def _reuseport_available() -> bool:
    return hasattr(socket, "SO_REUSEPORT")


def _bind_listener(host: str, port: int, *, reuseport: bool) -> socket.socket:
    """One bound+listening TCP socket, optionally SO_REUSEPORT-shared."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if reuseport:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
        sock.listen(128)
    except OSError as exc:
        sock.close()
        raise ServiceError(f"cannot bind service on {host}:{port}: {exc}") from exc
    return sock


def build_worker_server(
    cfg: WorkerConfig,
    worker_index: int = 0,
    listener: socket.socket | None = None,
) -> tuple[ServiceServer, list]:
    """One complete service stack from plain config.

    Shared by the single-process CLI path (``worker_index=0``, no
    listener, ``cfg.workers == 1``) and by every pre-forked worker, so
    the two modes cannot drift apart.  Returns the server plus the
    closeable log writers the caller must close after serving.
    """
    worker_tag = f"w{worker_index}"
    multiproc = cfg.workers > 1

    executor = None
    infra = None
    if cfg.infra_faults:
        from repro.faults import faulty_executor, parse_infra_plan

        infra = parse_infra_plan(cfg.infra_faults)
        executor = faulty_executor(infra)
    cache = None
    if not cfg.no_cache:
        if infra is not None:
            from repro.faults import FaultyResultCache

            cache = FaultyResultCache(
                cfg.cache_dir, schema=SERVICE_CACHE_SCHEMA, infra_plan=infra
            )
        else:
            cache = ResultCache(cfg.cache_dir, schema=SERVICE_CACHE_SCHEMA)

    def _worker_path(path: str | None) -> str | None:
        # Per-process log files: concurrent appenders to one JSONL file
        # could tear records, so each worker gets a suffixed sibling.
        if path is None or not multiproc:
            return path
        return f"{path}.{worker_tag}"

    access_log_path = _worker_path(cfg.access_log)
    span_log_path = _worker_path(cfg.span_log)
    access_log = AccessLog(access_log_path) if access_log_path else None
    span_log = JsonlWriter(span_log_path) if span_log_path else None

    queue_opts: dict = {}
    if executor is not None:
        queue_opts["executor"] = executor
    if multiproc:
        # Fleet-unique job ids plus shared records: a poll for a job
        # accepted by any worker can be answered by any other.
        queue_opts["store"] = JobStore(
            prefix=f"job-{worker_tag}", shared_dir=cfg.jobs_dir
        )
    queue = ServiceQueue(
        workers=cfg.threads,
        capacity=cfg.capacity,
        cache=cache,
        telemetry_enabled=cfg.telemetry_enabled,
        job_timeout_s=cfg.job_timeout_s,
        job_max_attempts=cfg.job_max_attempts,
        degraded_window_s=cfg.degraded_window_s,
        access_log=access_log,
        span_log=span_log,
        single_flight=multiproc,
        ring=HashRing([f"w{i}" for i in range(cfg.workers)]) if multiproc else None,
        worker_tag=worker_tag,
        single_flight_defer_s=cfg.single_flight_defer_s,
        single_flight_timeout_s=cfg.single_flight_timeout_s,
        **queue_opts,
    )
    server = ServiceServer(
        queue,
        host=cfg.host,
        port=cfg.port,
        rate=cfg.rate,
        burst=cfg.burst,
        access_log=access_log,
        admission=AdmissionController(cfg.batch_depth_fraction),
        metrics_dir=cfg.metrics_dir if multiproc else None,
        worker_id=worker_tag,
        listen_socket=listener,
    )
    closers = [log for log in (access_log, span_log) if log is not None]
    return server, closers


def _worker_main(
    cfg: WorkerConfig,
    worker_index: int,
    listener: socket.socket,
    reuseport: bool,
    ready,
) -> None:
    """A worker process: build the stack, signal ready, serve until SIGTERM."""
    if reuseport:
        # The fork handed us a copy of the supervisor's port-reservation
        # socket.  Close it *before* binding our own: a forgotten copy
        # would keep that socket alive as an N+1th listener receiving a
        # share of connections nobody ever accepts.
        listener.close()
        listener = _bind_listener(cfg.host, cfg.port, reuseport=True)
    server, closers = build_worker_server(cfg, worker_index, listener)

    def _graceful(signum, frame) -> None:
        server.request_shutdown()

    signal.signal(signal.SIGTERM, _graceful)
    signal.signal(signal.SIGINT, _graceful)
    ready.set()
    try:
        server.serve_forever()
    finally:
        for log in closers:
            log.close()
    # serve_forever returns only after a requested drain completed:
    # exiting 0 is the worker's "no accepted job was lost" receipt.


class ServiceSupervisor:
    """Pre-fork, monitor, and drain ``cfg.workers`` service processes."""

    def __init__(self, cfg: WorkerConfig) -> None:
        if cfg.workers < 2:
            raise ServiceError("ServiceSupervisor needs workers >= 2; "
                               "run ServiceServer directly for one process")
        strategy = cfg.listener
        if strategy == "auto":
            strategy = "reuseport" if _reuseport_available() else "inherit"
        if strategy == "reuseport" and not _reuseport_available():
            raise ServiceError("SO_REUSEPORT is not available on this platform")
        self.strategy = strategy
        self._owns_metrics_dir = cfg.metrics_dir is None
        if cfg.metrics_dir is None:
            cfg = replace(
                cfg, metrics_dir=tempfile.mkdtemp(prefix="drbw-mpserve-metrics-")
            )
        self._owns_jobs_dir = cfg.jobs_dir is None
        if cfg.jobs_dir is None:
            cfg = replace(
                cfg, jobs_dir=tempfile.mkdtemp(prefix="drbw-mpserve-jobs-")
            )
        self.cfg = cfg
        # Worker processes are forked, not spawned: the inherited-socket
        # strategy requires FD inheritance, and fork keeps both paths on
        # one code shape.
        self._ctx = multiprocessing.get_context("fork")
        self._procs: list = []
        self._listener: socket.socket | None = None
        self._shutdown_requested = False
        self.port = cfg.port

    @property
    def url(self) -> str:
        return f"http://{self.cfg.host}:{self.port}"

    def start(self) -> ServiceSupervisor:
        """Bind, fork every worker, and wait until all are accepting."""
        if self._procs:
            raise ServiceError("supervisor already started")
        reuseport = self.strategy == "reuseport"
        # Bound either way: under reuseport this only reserves the port
        # (and resolves port=0); the workers bind their own sockets.
        self._listener = _bind_listener(
            self.cfg.host, self.cfg.port, reuseport=reuseport
        )
        self.port = self._listener.getsockname()[1]
        cfg = replace(self.cfg, port=self.port)
        events = []
        for i in range(cfg.workers):
            ready = self._ctx.Event()
            proc = self._ctx.Process(
                target=_worker_main,
                args=(cfg, i, self._listener, reuseport, ready),
                name=f"drbw-serve-{i}",
            )
            proc.start()
            self._procs.append(proc)
            events.append(ready)
        deadline = time.monotonic() + READY_TIMEOUT_S
        for i, ready in enumerate(events):
            if not ready.wait(timeout=max(0.0, deadline - time.monotonic())):
                self.terminate(sigkill=True)
                raise ServiceError(f"worker {i} did not become ready within "
                                   f"{READY_TIMEOUT_S:g}s")
        # Every worker is accepting; the supervisor's socket has done its
        # job (port reservation / fork inheritance) and closes so that,
        # under reuseport, the kernel stops routing connections to it.
        self._listener.close()
        self._listener = None
        return self

    def request_shutdown(self) -> None:
        """Forward a graceful drain to every worker (idempotent)."""
        self._shutdown_requested = True
        for proc in self._procs:
            if proc.is_alive():
                try:
                    os.kill(proc.pid, signal.SIGTERM)
                except OSError:
                    pass

    def terminate(self, *, sigkill: bool = False) -> None:
        """Hard-stop every worker (failure paths and tests)."""
        for proc in self._procs:
            if proc.is_alive():
                proc.kill() if sigkill else proc.terminate()
        for proc in self._procs:
            proc.join(timeout=10.0)
        self._cleanup()

    def wait(self) -> int:
        """Block until every worker exits; 0 only if all exited 0.

        A worker dying *without* a requested shutdown is a fleet fault:
        the rest are drained and the supervisor reports failure — a
        silently shrunken fleet must not look healthy.
        """
        unexpected_death = False
        drain_deadline: float | None = None
        try:
            while any(p.is_alive() for p in self._procs):
                if self._shutdown_requested and drain_deadline is None:
                    drain_deadline = time.monotonic() + DRAIN_TIMEOUT_S
                if drain_deadline is not None and time.monotonic() >= drain_deadline:
                    for proc in self._procs:
                        if proc.is_alive():
                            logger.error(
                                "worker %s ignored the drain; killing", proc.name
                            )
                            proc.kill()
                    drain_deadline = time.monotonic() + DRAIN_TIMEOUT_S
                for proc in self._procs:
                    proc.join(timeout=0.2)
                    if proc.exitcode is not None and not self._shutdown_requested:
                        unexpected_death = True
                        logger.error(
                            "worker %s exited unexpectedly with code %s; "
                            "draining fleet", proc.name, proc.exitcode,
                        )
                        self.request_shutdown()
        finally:
            self._cleanup()
        codes = [p.exitcode for p in self._procs]
        return 0 if all(c == 0 for c in codes) and not unexpected_death else 1

    def serve_forever(self) -> int:
        """The CLI entry point: start, wire signals, wait; returns exit code."""
        self.start()

        def _graceful(signum, frame) -> None:
            print("drbw serve: signal received, draining workers ...",
                  file=sys.stderr)
            self.request_shutdown()

        signal.signal(signal.SIGTERM, _graceful)
        signal.signal(signal.SIGINT, _graceful)
        print(
            f"drbw service listening on {self.url} "
            f"({self.cfg.workers} workers, {self.strategy} listener)",
            file=sys.stderr,
        )
        return self.wait()

    def _cleanup(self) -> None:
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        if self._owns_metrics_dir and self.cfg.metrics_dir:
            shutil.rmtree(self.cfg.metrics_dir, ignore_errors=True)
        if self._owns_jobs_dir and self.cfg.jobs_dir:
            shutil.rmtree(self.cfg.jobs_dir, ignore_errors=True)
