"""The bounded job queue, its worker pool, and the token-bucket limiter.

:class:`ServiceQueue` is the service's engine room.  ``submit`` decides,
atomically under one lock, which of three paths a spec takes:

1. **warm hit** — the result cache already holds this key's canonical
   payload: the job is born ``done`` with those bytes, no execution;
2. **coalesce** — an identical job is queued or running: attach as a
   follower and share its eventual result;
3. **enqueue** — take a slot in the bounded queue, or fail with
   :class:`~repro.errors.ServiceSaturatedError` (HTTP 429) when full.

Worker threads execute jobs through :func:`~repro.service.jobspec
.execute_job` (injectable for tests), each under its own telemetry
session; finished jobs fold their spans and counters into the service
aggregate the ``/metrics`` endpoint exposes.  Because every counter bump
happens under the queue lock together with the state change it
describes, metrics are exact, not eventually-consistent — the
saturation tests assert equalities, not inequalities.
"""

from __future__ import annotations

import json
import logging
import queue as _stdqueue
import threading
import time
from typing import Callable

from repro import telemetry
from repro.errors import ReproError, ServiceError, ServiceSaturatedError
from repro.parallel.cache import ResultCache
from repro.parallel.seeding import canonical_json
from repro.service.coalescer import Coalescer
from repro.service.jobspec import execute_job, job_key, normalize_job
from repro.service.jobstore import Job, JobStore

__all__ = ["ServiceQueue", "TokenBucket", "SERVICE_CACHE_SCHEMA", "JOB_SECONDS_BUCKETS"]

logger = logging.getLogger(__name__)

#: Envelope schema for service job results in the shared result cache —
#: disjoint from the campaign's shard schema by construction.
SERVICE_CACHE_SCHEMA = "drbw-service-job"

#: Job wall-time histogram buckets (seconds).
JOB_SECONDS_BUCKETS = (0.01, 0.05, 0.25, 1.0, 5.0, 30.0, 120.0)

#: Queue sentinel telling a worker thread to exit.
_STOP = object()


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    ``clock`` is injectable so rate-limit tests are deterministic
    instead of sleep-based.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0 or burst < 1:
            raise ServiceError(
                f"rate must be > 0 and burst >= 1, got rate={rate}, burst={burst}"
            )
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()
        self._lock = threading.Lock()

    def try_acquire(self) -> bool:
        """Take one token if available."""
        with self._lock:
            now = self._clock()
            self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
            self._last = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False

    @property
    def retry_after(self) -> float:
        """Seconds until one token will be available (0 if one already is)."""
        with self._lock:
            if self._tokens >= 1.0:
                return 0.0
            return (1.0 - self._tokens) / self.rate


class ServiceQueue:
    """Bounded queue + worker pool executing job specs."""

    def __init__(
        self,
        workers: int = 2,
        capacity: int = 16,
        cache: ResultCache | None = None,
        executor: Callable[[dict], dict] = execute_job,
        telemetry_enabled: bool = True,
        retry_after_s: float = 1.0,
    ) -> None:
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        if capacity < 1:
            raise ServiceError(f"capacity must be >= 1, got {capacity}")
        self.store = JobStore()
        self.cache = cache
        self.capacity = capacity
        self.retry_after_s = retry_after_s
        self._executor = executor
        self._n_workers = workers
        self._q: _stdqueue.Queue = _stdqueue.Queue(maxsize=capacity)
        self._lock = threading.Lock()
        self._coalescer = Coalescer()
        self._threads: list[threading.Thread] = []
        self._draining = False
        #: Service lifecycle counters — always live, whatever the
        #: telemetry setting, because ``/metrics`` and the CI smoke test
        #: scrape them unconditionally.
        self.metrics = telemetry.MetricsRegistry()
        #: Pipeline-telemetry aggregate: per-job sessions merge in here.
        self.telemetry = telemetry.Telemetry(enabled=telemetry_enabled)

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> ServiceQueue:
        if self._threads:
            raise ServiceError("service queue already started")
        for i in range(self._n_workers):
            t = threading.Thread(
                target=self._work, name=f"drbw-service-worker-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)
        return self

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def depth(self) -> int:
        """Jobs waiting in the queue (excludes running jobs and followers)."""
        return self._q.qsize()

    def drain(self) -> None:
        """Stop accepting, finish everything queued and running, stop workers.

        The graceful-shutdown path: after this returns, every accepted
        job has reached a terminal state and the worker threads are gone.
        """
        with self._lock:
            self._draining = True
        self._q.join()
        self.stop()

    def stop(self) -> None:
        """Stop worker threads (does not wait for queued work — see drain)."""
        if not self._threads:
            return
        for _ in self._threads:
            self._q.put(_STOP)
        for t in self._threads:
            t.join(timeout=30.0)
        self._threads = []

    # -- submission -------------------------------------------------------------

    def submit(self, spec: dict) -> Job:
        """Accept one job spec; returns its (possibly already done) job.

        Raises :class:`ServiceError` for malformed specs and
        :class:`ServiceSaturatedError` when the queue is full.
        """
        normalized = normalize_job(spec)
        key = job_key(normalized)
        with self._lock:
            if self._draining:
                raise ServiceError("service is draining; not accepting jobs")
            self.metrics.counter("service.jobs_submitted").inc()

            primary = self._coalescer.primary_for(key)
            if primary is not None:
                job = self.store.create(normalized, key)
                self._coalescer.attach(key, job)
                self.metrics.counter("service.jobs_coalesced").inc()
                return job

            if self.cache is not None:
                cached = self.cache.get(key)
                if cached is not None:
                    job = self.store.create(normalized, key)
                    job.state = "done"
                    job.cache_hit = True
                    job.result_text = canonical_json(cached)
                    job.finished_s = time.monotonic()
                    self.metrics.counter("service.cache_hits").inc()
                    self.metrics.counter("service.jobs_done").inc()
                    return job

            job = self.store.create(normalized, key)
            try:
                self._q.put_nowait(job)
            except _stdqueue.Full:
                job.state = "failed"
                job.error = "rejected: queue full"
                job.finished_s = time.monotonic()
                self.metrics.counter("service.jobs_rejected").inc()
                raise ServiceSaturatedError(
                    f"job queue full ({self.capacity} deep); retry later",
                    retry_after=self.retry_after_s,
                ) from None
            self._coalescer.register(key, job)
            self.metrics.gauge("service.queue_depth").set(self._q.qsize())
            return job

    # -- execution --------------------------------------------------------------

    def _work(self) -> None:
        while True:
            item = self._q.get()
            if item is _STOP:
                self._q.task_done()
                return
            try:
                self._run_one(item)
            finally:
                self._q.task_done()

    def _run_one(self, job: Job) -> None:
        with self._lock:
            job.state = "running"
            job.started_s = time.monotonic()
            self.metrics.gauge("service.queue_depth").set(self._q.qsize())

        tel = telemetry.Telemetry(enabled=self.telemetry.enabled)
        result_text: str | None = None
        error: str | None = None
        t0 = time.monotonic()
        try:
            with telemetry.session(tel):
                result = self._executor(job.spec)
            result_text = canonical_json(result)
        except ReproError as exc:
            error = f"{type(exc).__name__}: {exc}"
        except Exception as exc:  # noqa: BLE001 - a job must never kill its worker
            logger.exception("job %s crashed", job.id)
            error = f"{type(exc).__name__}: {exc}"
        elapsed = time.monotonic() - t0

        with self._lock:
            followers = self._coalescer.complete(job.key)
            now = time.monotonic()
            for j in (job, *followers):
                j.finished_s = now
                if error is None:
                    j.state = "done"
                    j.result_text = result_text
                else:
                    j.state = "failed"
                    j.error = error
            n = 1 + len(followers)
            if error is None:
                self.metrics.counter("service.jobs_done").inc(n)
                if self.cache is not None:
                    self.cache.put(job.key, json.loads(result_text))
            else:
                self.metrics.counter("service.jobs_failed").inc(n)
            self.metrics.histogram(
                "service.job_seconds", JOB_SECONDS_BUCKETS
            ).observe(elapsed)
            if tel.enabled:
                self.telemetry.tracer.merge_records(
                    tel.tracer.to_dicts(), shard=job.id
                )
                for name, c in sorted(tel.metrics.counters.items()):
                    self.telemetry.metrics.counter(name).inc(c.value)
