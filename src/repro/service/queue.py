"""The bounded job queue, its worker pool, and the token-bucket limiter.

:class:`ServiceQueue` is the service's engine room.  ``submit`` decides,
atomically under one lock, which of three paths a spec takes:

1. **warm hit** — the result cache already holds this key's canonical
   payload: the job is born ``done`` with those bytes, no execution;
2. **coalesce** — an identical job is queued or running: attach as a
   follower and share its eventual result;
3. **enqueue** — take a slot in the bounded queue, or fail with
   :class:`~repro.errors.ServiceSaturatedError` (HTTP 429) when full.

Worker threads execute jobs through :func:`~repro.service.jobspec
.execute_job` (injectable for tests), each under its own telemetry
session; finished jobs fold their spans and counters into the service
aggregate the ``/metrics`` endpoint exposes.  Because every counter bump
happens under the queue lock together with the state change it
describes, metrics are exact, not eventually-consistent — the
saturation tests assert equalities, not inequalities.

With ``job_timeout_s`` set, a **watchdog thread** patrols running jobs.
A job past its deadline is *abandoned*: its delivery is accounted for
(so drain cannot hang on it), the stuck worker thread is retired and a
replacement spawned, and the job is either requeued (while attempts
remain under ``job_max_attempts``) or failed along with its coalesced
followers.  If the stuck executor ever does return, its result is
discarded — the abandoned generation is recorded precisely so a late
result cannot overwrite the watchdog's verdict.  The watchdog also
respawns worker threads that died outright.  Each incident is
timestamped; :meth:`ServiceQueue.health` reports ``degraded`` (distinct
from unready) while incidents are recent or the result cache's circuit
breaker is open.  See ``docs/robustness.md``.
"""

from __future__ import annotations

import json
import logging
import queue as _stdqueue
import threading
import time
from typing import Callable

from repro import telemetry
from repro.errors import ReproError, ServiceError, ServiceSaturatedError
from repro.parallel.cache import ResultCache
from repro.parallel.seeding import canonical_json
from repro.service.accesslog import AccessLog, JsonlWriter
from repro.service.coalescer import Coalescer
from repro.service.jobspec import execute_job, job_key, normalize_job
from repro.service.jobstore import Job, JobStore
from repro.service.trace import TraceContext, mint_trace

__all__ = [
    "ServiceQueue",
    "TokenBucket",
    "SERVICE_CACHE_SCHEMA",
    "JOB_SECONDS_BUCKETS",
    "WAIT_SECONDS_BUCKETS",
]

logger = logging.getLogger(__name__)

#: Envelope schema for service job results in the shared result cache —
#: disjoint from the campaign's shard schema by construction.
SERVICE_CACHE_SCHEMA = "drbw-service-job"

#: Job wall-time histogram buckets (seconds).
JOB_SECONDS_BUCKETS = (0.01, 0.05, 0.25, 1.0, 5.0, 30.0, 120.0)

#: Queue-wait histogram buckets (seconds) — waits are usually far below
#: execution times, so the buckets start in the millisecond range.
WAIT_SECONDS_BUCKETS = (0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0, 60.0)

#: Queue sentinel telling a worker thread to exit.
_STOP = object()


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    ``clock`` is injectable so rate-limit tests are deterministic
    instead of sleep-based.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0 or burst < 1:
            raise ServiceError(
                f"rate must be > 0 and burst >= 1, got rate={rate}, burst={burst}"
            )
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()
        self._lock = threading.Lock()

    def try_acquire(self) -> bool:
        """Take one token if available."""
        with self._lock:
            now = self._clock()
            self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
            self._last = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False

    @property
    def retry_after(self) -> float:
        """Seconds until one token will be available (0 if one already is)."""
        with self._lock:
            if self._tokens >= 1.0:
                return 0.0
            return (1.0 - self._tokens) / self.rate

    @property
    def is_full(self) -> bool:
        """True once the bucket has refilled to burst capacity.

        A full bucket carries no refill debt, so forgetting it loses no
        state — the eviction criterion for idle per-client buckets.
        """
        with self._lock:
            now = self._clock()
            self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
            self._last = now
            return self._tokens >= self.burst


class ServiceQueue:
    """Bounded queue + worker pool executing job specs."""

    def __init__(
        self,
        workers: int = 2,
        capacity: int = 16,
        cache: ResultCache | None = None,
        executor: Callable[[dict], dict] = execute_job,
        telemetry_enabled: bool = True,
        retry_after_s: float = 1.0,
        job_timeout_s: float | None = None,
        job_max_attempts: int = 1,
        watchdog_interval_s: float = 0.25,
        degraded_window_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        access_log: AccessLog | None = None,
        span_log: JsonlWriter | None = None,
        single_flight: bool = False,
        ring=None,
        worker_tag: str | None = None,
        single_flight_defer_s: float = 0.0,
        single_flight_timeout_s: float = 120.0,
        store: JobStore | None = None,
    ) -> None:
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        if capacity < 1:
            raise ServiceError(f"capacity must be >= 1, got {capacity}")
        if job_timeout_s is not None and job_timeout_s <= 0:
            raise ServiceError(f"job_timeout_s must be > 0, got {job_timeout_s}")
        if job_max_attempts < 1:
            raise ServiceError(f"job_max_attempts must be >= 1, got {job_max_attempts}")
        # Injectable so multi-process workers can run a store with a
        # fleet-unique id prefix and a shared record directory.
        self.store = store if store is not None else JobStore()
        self.cache = cache
        self.capacity = capacity
        self.retry_after_s = retry_after_s
        self.job_timeout_s = job_timeout_s
        self.job_max_attempts = job_max_attempts
        self.watchdog_interval_s = watchdog_interval_s
        self.degraded_window_s = degraded_window_s
        self.clock = clock
        self._executor = executor
        self._n_workers = workers
        self._q: _stdqueue.Queue = _stdqueue.Queue(maxsize=capacity)
        self._lock = threading.Lock()
        self._coalescer = Coalescer()
        self._threads: list[threading.Thread] = []
        self._draining = False
        self._stopping = False
        self._watchdog: threading.Thread | None = None
        self._watchdog_stop = threading.Event()
        #: job.id -> (job, worker thread, attempt generation, deadline).
        self._inflight: dict[str, tuple[Job, threading.Thread, int, float | None]] = {}
        #: (job.id, generation) pairs whose eventual result must be discarded.
        self._abandoned: set[tuple[str, int]] = set()
        #: Monotonic timestamps of recent watchdog incidents (degraded signal).
        self._incidents: list[float] = []
        self._worker_serial = 0
        #: Workers currently executing a job (worker-utilization gauge).
        self._busy = 0
        #: Structured JSONL sinks for the request-path observability
        #: plane: one ``job`` record per terminal job, one tagged span
        #: dict per merged worker span.  Both optional and off by default.
        self._access_log = access_log
        self._span_log = span_log
        #: Cross-process single-flight (PR 10): when several pre-forked
        #: worker processes share one cache directory, identical job keys
        #: execute once fleet-wide via the cache's claim-file protocol.
        #: ``ring``/``worker_tag`` give each key an owning process that
        #: classifies claims first.  Non-owners *may* defer their first
        #: claim attempt by ``single_flight_defer_s``; exactly-once never
        #: depends on it (the claim file is atomic), so it defaults to 0 —
        #: with a shared cache directory there is no per-worker locality
        #: for a deferral to buy, only added latency.
        self._single_flight = single_flight and cache is not None
        self._ring = ring
        self._worker_tag = worker_tag
        self._single_flight_defer_s = single_flight_defer_s
        self._single_flight_timeout_s = single_flight_timeout_s
        #: Service lifecycle counters — always live, whatever the
        #: telemetry setting, because ``/metrics`` and the CI smoke test
        #: scrape them unconditionally.
        self.metrics = telemetry.MetricsRegistry()
        #: Pipeline-telemetry aggregate: per-job sessions merge in here.
        self.telemetry = telemetry.Telemetry(enabled=telemetry_enabled)

    # -- lifecycle --------------------------------------------------------------

    def _spawn_worker_locked(self) -> threading.Thread:
        self._worker_serial += 1
        t = threading.Thread(
            target=self._work,
            name=f"drbw-service-worker-{self._worker_serial}",
            daemon=True,
        )
        t.start()
        self._threads.append(t)
        return t

    def start(self) -> ServiceQueue:
        if self._threads:
            raise ServiceError("service queue already started")
        with self._lock:
            for _ in range(self._n_workers):
                self._spawn_worker_locked()
        if self.job_timeout_s is not None:
            self._watchdog_stop.clear()
            self._watchdog = threading.Thread(
                target=self._watch, name="drbw-service-watchdog", daemon=True
            )
            self._watchdog.start()
        return self

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def depth(self) -> int:
        """Jobs waiting in the queue (excludes running jobs and followers)."""
        return self._q.qsize()

    def drain(self) -> None:
        """Stop accepting, finish everything queued and running, stop workers.

        The graceful-shutdown path: after this returns, every accepted
        job has reached a terminal state and the worker threads are gone.
        (Abandoned deliveries were already accounted by the watchdog, so
        a hung job cannot wedge the drain.)
        """
        with self._lock:
            self._draining = True
        self._q.join()
        self.stop()

    def stop(self) -> None:
        """Stop worker threads (does not wait for queued work — see drain)."""
        # Halt the watchdog first so it cannot respawn workers mid-stop.
        self._watchdog_stop.set()
        if self._watchdog is not None:
            self._watchdog.join(timeout=10.0)
            self._watchdog = None
        with self._lock:
            self._stopping = True
            threads = list(self._threads)
        if not threads:
            return
        for _ in threads:
            self._q.put(_STOP)
        for t in threads:
            t.join(timeout=30.0)
        with self._lock:
            self._threads = []

    # -- watchdog ---------------------------------------------------------------

    def _watch(self) -> None:
        while not self._watchdog_stop.wait(self.watchdog_interval_s):
            try:
                self._watchdog_pass()
            except Exception:  # noqa: BLE001 - the watchdog must outlive bugs
                logger.exception("service watchdog pass failed")

    def _watchdog_pass(self) -> None:
        now = self.clock()
        with self._lock:
            if self._stopping:
                return
            self._incidents = [
                t for t in self._incidents if now - t <= self.degraded_window_s
            ]
            expired = [
                entry for entry in self._inflight.values()
                if entry[3] is not None and now >= entry[3]
            ]
            for job, thread, gen, _deadline in expired:
                self._abandon_locked(job, thread, gen)
            # Belt and braces: a worker thread that died outright (a bug
            # this layer cannot rule out) gets replaced so capacity never
            # silently decays.
            for t in list(self._threads):
                if not t.is_alive():
                    self._threads.remove(t)
                    self._spawn_worker_locked()
                    self._incidents.append(now)
                    self.metrics.counter("service.workers_restarted").inc()
                    logger.warning("service worker %s died; restarted", t.name)

    def _abandon_locked(self, job: Job, thread: threading.Thread, gen: int) -> None:
        """Take a hung job away from its stuck worker (lock held).

        The stuck thread keeps running its executor call — Python cannot
        preempt it — but from here on it is a zombie: its delivery is
        accounted, its thread retired from the pool, and its eventual
        result (if any) discarded by generation check.
        """
        self._inflight.pop(job.id, None)
        self._abandoned.add((job.id, gen))
        # Account the delivery the stuck worker will never task_done.
        self._q.task_done()
        self._incidents.append(self.clock())
        self.metrics.counter("service.jobs_timed_out").inc()
        # Retire the wedged thread and restore capacity.
        if thread in self._threads:
            self._threads.remove(thread)
            self._spawn_worker_locked()
            self.metrics.counter("service.workers_restarted").inc()
        timeout = self.job_timeout_s
        if (
            job.attempts < self.job_max_attempts
            and not self._draining
            and not self._stopping
        ):
            try:
                self._q.put_nowait(job)
            except _stdqueue.Full:
                pass  # no room to retry: fall through to failure
            else:
                job.state = "queued"
                self.metrics.counter("service.jobs_requeued").inc()
                logger.warning(
                    "job %s exceeded its %ss deadline; requeued (attempt %d/%d)",
                    job.id, timeout, job.attempts, self.job_max_attempts,
                )
                return
        followers = self._coalescer.complete(job.key)
        now = time.monotonic()
        error = (
            f"DeadlineExceededError: job exceeded its {timeout}s deadline "
            f"after {job.attempts} attempt(s)"
        )
        for j in (job, *followers):
            j.finished_s = now
            j.state = "failed"
            j.error = error
            self._log_job_locked(j)
        self.metrics.counter("service.jobs_failed").inc(1 + len(followers))
        logger.warning("job %s failed by watchdog: %s", job.id, error)

    def health(self) -> dict:
        """Readiness detail for ``/readyz``: ``ready`` or ``degraded``.

        Degraded means "serving, but something recently went wrong":
        the cache circuit is open, or watchdog incidents (timeouts,
        worker restarts) happened within ``degraded_window_s``.  Distinct
        from *unready* (draining/stopped), which fails the probe.
        """
        reasons: list[str] = []
        if self.cache is not None and getattr(self.cache, "degraded", False):
            reasons.append("cache circuit open")
        now = self.clock()
        with self._lock:
            recent = [t for t in self._incidents if now - t <= self.degraded_window_s]
        if recent:
            reasons.append(
                f"{len(recent)} watchdog incident(s) in the last "
                f"{self.degraded_window_s:g}s"
            )
        return {"state": "degraded" if reasons else "ready", "reasons": reasons}

    # -- request-path observability ----------------------------------------------

    def _log_job_locked(self, job: Job) -> None:
        """One access-log ``job`` record for a job reaching a terminal state.

        Also republishes the job's shared record (multi-process mode), so
        sibling workers serve the terminal state — this is the single
        hook every terminal transition already goes through.
        """
        self.store.publish(job)
        if self._access_log is None:
            return
        wait = job.queue_wait_s()
        exec_s = job.exec_s()
        self._access_log.record(
            "job",
            job_id=job.id,
            endpoint=job.spec.get("kind"),
            state=job.state,
            trace_id=job.trace_id,
            primary_trace_id=job.primary_trace_id,
            coalesced=job.coalesced,
            cache_hit=job.cache_hit,
            queue_wait_s=None if wait is None else round(wait, 6),
            exec_s=None if exec_s is None else round(exec_s, 6),
            attempts=job.attempts or None,
            error=job.error,
        )

    def _adjust_busy_locked(self, delta: int) -> None:
        """Track executing workers; exported as busy + utilization gauges."""
        self._busy += delta
        self.metrics.gauge("service.workers_busy").set(self._busy)
        self.metrics.gauge("service.worker_utilization").set(
            self._busy / self._n_workers
        )

    # -- submission -------------------------------------------------------------

    def submit(self, spec: dict, trace: TraceContext | None = None) -> Job:
        """Accept one job spec; returns its (possibly already done) job.

        ``trace`` is the submitting request's trace context (from the
        ``X-Drbw-Trace`` header, or minted by the server); library callers
        that pass none get a fresh one, so every job has a trace identity.

        Raises :class:`ServiceError` for malformed specs and
        :class:`ServiceSaturatedError` when the queue is full.
        """
        normalized = normalize_job(spec)
        key = job_key(normalized)
        if trace is None:
            trace = mint_trace()
        with self._lock:
            if self._draining:
                raise ServiceError("service is draining; not accepting jobs")
            self.metrics.counter("service.jobs_submitted").inc()

            primary = self._coalescer.primary_for(key)
            if primary is not None:
                job = self.store.create(normalized, key)
                job.trace_id = trace.trace_id
                self._coalescer.attach(key, job)
                self.metrics.counter("service.jobs_coalesced").inc()
                return job

            if self.cache is not None:
                cached = self.cache.get(key)
                if cached is not None:
                    job = self.store.create(normalized, key)
                    job.trace_id = trace.trace_id
                    job.state = "done"
                    job.cache_hit = True
                    job.result_text = canonical_json(cached)
                    job.finished_s = time.monotonic()
                    self.metrics.counter("service.cache_hits").inc()
                    self.metrics.counter("service.jobs_done").inc()
                    self._log_job_locked(job)
                    return job

            job = self.store.create(normalized, key)
            job.trace_id = trace.trace_id
            try:
                self._q.put_nowait(job)
            except _stdqueue.Full:
                job.state = "failed"
                job.error = "rejected: queue full"
                job.finished_s = time.monotonic()
                self.metrics.counter("service.jobs_rejected").inc()
                self._log_job_locked(job)
                raise ServiceSaturatedError(
                    f"job queue full ({self.capacity} deep); retry later",
                    retry_after=self.retry_after_s,
                ) from None
            self._coalescer.register(key, job)
            self.metrics.gauge("service.queue_depth").set(self._q.qsize())
            return job

    # -- execution --------------------------------------------------------------

    def _work(self) -> None:
        me = threading.current_thread()
        while True:
            item = self._q.get()
            if item is _STOP:
                self._q.task_done()
                return
            abandoned = False
            try:
                abandoned = self._run_one(item)
            finally:
                if not abandoned:
                    self._q.task_done()
                # An abandoned delivery was task_done'd by the watchdog
                # when it retired this thread; doing it again here would
                # corrupt the queue's unfinished-task accounting.
            with self._lock:
                retired = me not in self._threads
            if retired:
                # The watchdog replaced this thread while it was stuck;
                # its successor owns the queue now.
                return

    def _run_single_flight(self, job: Job, tel) -> dict:
        """Execute ``job`` through the cache's cross-process claim protocol.

        At most one process in the fleet runs the executor for this key;
        everyone else reads the published cache entry, whose canonical
        bytes are exactly what a local execution would have produced (the
        byte-identity contract the multi-process tests pin).  When the
        ring names another worker as the key's owner, this process defers
        its first claim attempt so the owner usually wins the race.
        """
        defer = 0.0
        if self._ring is not None and self._worker_tag is not None:
            owner = self._ring.node_for(job.key)
            if owner == self._worker_tag:
                self.metrics.counter("service.routing_owned").inc()
            else:
                self.metrics.counter("service.routing_deferred").inc()
                defer = self._single_flight_defer_s

        def _compute() -> dict:
            with telemetry.session(tel):
                return self._executor(job.spec)

        result, executed_here = self.cache.single_flight(
            job.key,
            _compute,
            defer_s=defer,
            timeout_s=self._single_flight_timeout_s,
        )
        if executed_here:
            self.metrics.counter("service.single_flight_executed").inc()
        else:
            self.metrics.counter("service.single_flight_followed").inc()
        return result

    def _run_one(self, job: Job) -> bool:
        """Execute one job; returns True when the watchdog abandoned it."""
        me = threading.current_thread()
        with self._lock:
            job.state = "running"
            job.started_s = time.monotonic()
            job.attempts += 1
            gen = job.attempts
            deadline = (
                None if self.job_timeout_s is None
                else self.clock() + self.job_timeout_s
            )
            self._inflight[job.id] = (job, me, gen, deadline)
            self.metrics.gauge("service.queue_depth").set(self._q.qsize())
            self.metrics.histogram(
                "service.queue_wait_seconds", WAIT_SECONDS_BUCKETS
            ).observe(job.queue_wait_s() or 0.0)
            self._adjust_busy_locked(+1)

        tel = telemetry.Telemetry(enabled=self.telemetry.enabled)
        result_text: str | None = None
        error: str | None = None
        stored_by_single_flight = False
        t0 = time.monotonic()
        try:
            if self._single_flight:
                result = self._run_single_flight(job, tel)
                stored_by_single_flight = True
            else:
                with telemetry.session(tel):
                    result = self._executor(job.spec)
            result_text = canonical_json(result)
        except ReproError as exc:
            error = f"{type(exc).__name__}: {exc}"
        except Exception as exc:  # noqa: BLE001 - a job must never kill its worker
            logger.exception("job %s crashed", job.id)
            error = f"{type(exc).__name__}: {exc}"
        elapsed = time.monotonic() - t0

        with self._lock:
            self._adjust_busy_locked(-1)
            entry = self._inflight.get(job.id)
            if entry is not None and entry[2] == gen:
                del self._inflight[job.id]
            if (job.id, gen) in self._abandoned:
                # The watchdog already ruled on this attempt (failed or
                # requeued it) — a late result must not overrule it.
                self._abandoned.discard((job.id, gen))
                self.metrics.counter("service.results_abandoned").inc()
                return True
            followers = self._coalescer.complete(job.key)
            now = time.monotonic()
            for j in (job, *followers):
                j.finished_s = now
                if error is None:
                    j.state = "done"
                    j.result_text = result_text
                else:
                    j.state = "failed"
                    j.error = error
            n = 1 + len(followers)
            if error is None:
                self.metrics.counter("service.jobs_done").inc(n)
                if self.cache is not None and not stored_by_single_flight:
                    self.cache.put(job.key, json.loads(result_text))
            else:
                self.metrics.counter("service.jobs_failed").inc(n)
            self.metrics.histogram(
                "service.job_seconds", JOB_SECONDS_BUCKETS
            ).observe(elapsed)
            for j in (job, *followers):
                self._log_job_locked(j)
            if tel.enabled:
                # Tag every worker span with the submitting request's
                # trace before merging, so an access-log trace_id resolves
                # to the spans of the execution that served it.
                tagged = []
                for rec in tel.tracer.to_dicts():
                    attrs = dict(rec.get("attrs") or {})
                    attrs["trace_id"] = job.trace_id
                    attrs["job_id"] = job.id
                    tagged.append(dict(rec, attrs=attrs))
                self.telemetry.tracer.merge_records(tagged, shard=job.id)
                for name, c in sorted(tel.metrics.counters.items()):
                    self.telemetry.metrics.counter(name).inc(c.value)
                if self._span_log is not None:
                    for rec in tagged:
                        self._span_log.write(rec)
        return False
