"""A tiny urllib client for the profiling service.

Bundled so scripts, the CI smoke test, and operators poking at a daemon
don't each reinvent submit/poll/fetch against raw HTTP.  Errors come
back as :class:`~repro.errors.ServiceError` (or
:class:`~repro.errors.ServiceSaturatedError` for 429s, carrying the
server's ``Retry-After``), so callers handle the service exactly like
the rest of the library.

Usage::

    client = ServiceClient("http://127.0.0.1:8787")
    status = client.submit({"kind": "detect", "benchmark": "Streamcluster"})
    result = client.wait(status["id"], timeout=600)
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from repro.errors import ServiceError, ServiceSaturatedError

__all__ = ["ServiceClient"]


class ServiceClient:
    """HTTP client bound to one service base URL."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- raw HTTP ---------------------------------------------------------------

    def _request(self, path: str, data: bytes | None = None) -> tuple[int, dict, bytes]:
        req = urllib.request.Request(
            self.base_url + path,
            data=data,
            headers={"Content-Type": "application/json"} if data else {},
            method="POST" if data is not None else "GET",
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return resp.status, dict(resp.headers), resp.read()
        except urllib.error.HTTPError as exc:
            body = exc.read()
            message = self._error_message(body, exc)
            if exc.code == 429:
                retry = float(exc.headers.get("Retry-After", "1") or "1")
                raise ServiceSaturatedError(message, retry_after=retry) from None
            raise ServiceError(f"HTTP {exc.code}: {message}") from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {exc.reason}"
            ) from None

    @staticmethod
    def _error_message(body: bytes, exc: urllib.error.HTTPError) -> str:
        try:
            return json.loads(body)["error"]
        except (ValueError, KeyError, TypeError):
            return exc.reason or f"status {exc.code}"

    # -- API --------------------------------------------------------------------

    def submit(self, spec: dict) -> dict:
        """POST one job spec; returns its status payload."""
        _, _, body = self._request(
            "/v1/jobs", json.dumps(spec).encode("utf-8")
        )
        return json.loads(body)

    def status(self, job_id: str) -> dict:
        _, _, body = self._request(f"/v1/jobs/{job_id}")
        return json.loads(body)

    def result_text(self, job_id: str) -> str:
        """The finished job's result — the exact ``--json`` CLI bytes."""
        _, _, body = self._request(f"/v1/jobs/{job_id}/result")
        return body.decode("utf-8")

    def result(self, job_id: str) -> dict:
        return json.loads(self.result_text(job_id))

    def wait(self, job_id: str, timeout: float = 600.0, poll_s: float = 0.2) -> dict:
        """Poll until the job reaches a terminal state; returns the result.

        Raises :class:`ServiceError` on job failure or timeout.
        """
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] == "done":
                return self.result(job_id)
            if status["state"] == "failed":
                raise ServiceError(
                    f"job {job_id} failed: {status.get('error', 'unknown error')}"
                )
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {status['state']} after {timeout}s"
                )
            time.sleep(poll_s)

    def run(self, spec: dict, timeout: float = 600.0, poll_s: float = 0.2) -> dict:
        """Submit and wait — the one-call path scripts want."""
        return self.wait(self.submit(spec)["id"], timeout=timeout, poll_s=poll_s)

    def metrics(self) -> str:
        _, _, body = self._request("/metrics")
        return body.decode("utf-8")

    def healthy(self) -> bool:
        try:
            status, _, _ = self._request("/healthz")
        except ServiceError:
            return False
        return status == 200

    def ready(self) -> bool:
        try:
            status, _, _ = self._request("/readyz")
        except ServiceError:
            return False
        return status == 200
