"""A tiny urllib client for the profiling service.

Bundled so scripts, the CI smoke test, and operators poking at a daemon
don't each reinvent submit/poll/fetch against raw HTTP.  Errors come
back as :class:`~repro.errors.ServiceError` (or
:class:`~repro.errors.ServiceSaturatedError` for 429s, carrying the
server's ``Retry-After``), so callers handle the service exactly like
the rest of the library.

Every request carries an ``X-Drbw-Trace`` header: :meth:`ServiceClient.submit`
mints a fresh :class:`~repro.service.trace.TraceContext` per submission
(the server adopts its trace_id as the job's trace identity), and later
status/result polls for that job reuse the same trace with a fresh span
id per request, so the server's access log shows the whole conversation
under one trace.  See ``docs/service.md`` ("Request tracing & SLOs").

Two client-side resilience behaviors (see ``docs/robustness.md``):

* :meth:`ServiceClient.wait` polls with **capped exponential backoff**
  (``poll_s`` doubling up to ``poll_max_s``) instead of a fixed-interval
  busy loop — fast jobs are picked up within milliseconds, long jobs
  cost a few requests per minute instead of hundreds;
* idempotent **GETs are retried exactly once** after a transient
  transport error (``ConnectionResetError`` / ``RemoteDisconnected`` —
  e.g. the server restarted between keep-alive requests).  POSTs are
  never retried: submitting twice would double-submit the job.

Usage::

    client = ServiceClient("http://127.0.0.1:8787")
    status = client.submit({"kind": "detect", "benchmark": "Streamcluster"})
    result = client.wait(status["id"], timeout=600)
"""

from __future__ import annotations

import http.client
import json
import math
import time
import urllib.error
import urllib.request
from typing import Callable

from repro.errors import ServiceError, ServiceSaturatedError
from repro.service.trace import TRACE_HEADER, TraceContext, mint_trace

__all__ = [
    "ServiceClient",
    "parse_retry_after",
    "RETRY_AFTER_FALLBACK_S",
    "RETRY_AFTER_CAP_S",
]

#: Transport errors that justify one retry of an idempotent request.
_TRANSIENT = (ConnectionResetError, http.client.RemoteDisconnected)

#: ``Retry-After`` parsing: fallback when the header is absent, empty,
#: non-numeric, or negative, and a hard cap so a misconfigured (or
#: hostile) server cannot park a client for an hour with one header.
RETRY_AFTER_FALLBACK_S = 1.0
RETRY_AFTER_CAP_S = 60.0

#: Traces remembered for status/result correlation per client instance.
_MAX_REMEMBERED_TRACES = 4096


def parse_retry_after(value: object) -> float:
    """Seconds to wait from a ``Retry-After`` header value, defensively.

    Servers (and the proxies between) emit all sorts here: the HTTP-date
    form, empty strings, negatives, ``inf``.  Anything that is not a
    finite non-negative number falls back to
    :data:`RETRY_AFTER_FALLBACK_S`; everything is capped at
    :data:`RETRY_AFTER_CAP_S` so the backoff a caller sleeps on is always
    sane.
    """
    try:
        seconds = float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return RETRY_AFTER_FALLBACK_S
    if not math.isfinite(seconds) or seconds < 0:
        return RETRY_AFTER_FALLBACK_S
    return min(seconds, RETRY_AFTER_CAP_S)


class ServiceClient:
    """HTTP client bound to one service base URL."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self._sleep = sleep
        #: job id -> trace id, so polls reuse the submission's trace.
        self._traces: dict[str, str] = {}

    # -- tracing ----------------------------------------------------------------

    def _remember_trace(self, job_id: str, trace: TraceContext) -> None:
        if len(self._traces) >= _MAX_REMEMBERED_TRACES:
            # Clients are short-lived; a simple clear beats an LRU here —
            # the only cost is a fresh trace on polls for very old jobs.
            self._traces.clear()
        self._traces[job_id] = trace.trace_id

    def trace_for(self, job_id: str) -> TraceContext:
        """The trace context polls for ``job_id`` should carry.

        Reuses the submission's trace id with a fresh span id per
        request; jobs this client never submitted get a fresh trace.
        """
        trace_id = self._traces.get(job_id)
        if trace_id is None:
            return mint_trace()
        return TraceContext(trace_id, mint_trace().span_id)

    # -- raw HTTP ---------------------------------------------------------------

    def _request(
        self,
        path: str,
        data: bytes | None = None,
        trace: TraceContext | None = None,
    ) -> tuple[int, dict, bytes]:
        # GETs (data is None) are idempotent and safe to retry once after
        # a transient transport failure; POSTs are not (double submit).
        attempts = 2 if data is None else 1
        for attempt in range(1, attempts + 1):
            try:
                return self._request_once(path, data, trace)
            except _TRANSIENT:
                if attempt >= attempts:
                    raise ServiceError(
                        f"connection to {self.base_url} reset repeatedly"
                    ) from None
        raise AssertionError("unreachable")  # pragma: no cover

    def _request_once(
        self, path: str, data: bytes | None, trace: TraceContext | None
    ) -> tuple[int, dict, bytes]:
        headers = {TRACE_HEADER: (trace or mint_trace()).header_value()}
        if data:
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            self.base_url + path,
            data=data,
            headers=headers,
            method="POST" if data is not None else "GET",
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return resp.status, dict(resp.headers), resp.read()
        except urllib.error.HTTPError as exc:
            body = exc.read()
            message = self._error_message(body, exc)
            if exc.code == 429:
                retry = parse_retry_after(exc.headers.get("Retry-After"))
                raise ServiceSaturatedError(message, retry_after=retry) from None
            raise ServiceError(f"HTTP {exc.code}: {message}") from None
        except urllib.error.URLError as exc:
            if isinstance(exc.reason, _TRANSIENT):
                # Unwrap so the retry loop can classify it.
                raise exc.reason from None
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {exc.reason}"
            ) from None

    @staticmethod
    def _error_message(body: bytes, exc: urllib.error.HTTPError) -> str:
        try:
            return json.loads(body)["error"]
        except (ValueError, KeyError, TypeError):
            return exc.reason or f"status {exc.code}"

    # -- API --------------------------------------------------------------------

    def submit(self, spec: dict, trace: TraceContext | None = None) -> dict:
        """POST one job spec; returns its status payload.

        Mints a fresh trace context unless the caller passes one; either
        way the trace is remembered so :meth:`status`/:meth:`result`
        polls for the returned job id ride the same trace.
        """
        trace = trace or mint_trace()
        _, _, body = self._request(
            "/v1/jobs", json.dumps(spec).encode("utf-8"), trace=trace
        )
        payload = json.loads(body)
        job_id = payload.get("id")
        if isinstance(job_id, str):
            self._remember_trace(job_id, trace)
        return payload

    def status(self, job_id: str) -> dict:
        _, _, body = self._request(
            f"/v1/jobs/{job_id}", trace=self.trace_for(job_id)
        )
        return json.loads(body)

    def result_text(self, job_id: str) -> str:
        """The finished job's result — the exact ``--json`` CLI bytes."""
        _, _, body = self._request(
            f"/v1/jobs/{job_id}/result", trace=self.trace_for(job_id)
        )
        return body.decode("utf-8")

    def result(self, job_id: str) -> dict:
        return json.loads(self.result_text(job_id))

    def wait(
        self,
        job_id: str,
        timeout: float = 600.0,
        poll_s: float = 0.05,
        poll_max_s: float = 2.0,
    ) -> dict:
        """Poll until the job reaches a terminal state; returns the result.

        The poll interval starts at ``poll_s`` and doubles up to
        ``poll_max_s`` — capped exponential backoff, so short jobs return
        promptly and long jobs don't hammer the status endpoint.  Raises
        :class:`ServiceError` on job failure or timeout.
        """
        deadline = time.monotonic() + timeout
        delay = max(poll_s, 0.001)
        while True:
            status = self.status(job_id)
            if status["state"] == "done":
                return self.result(job_id)
            if status["state"] == "failed":
                raise ServiceError(
                    f"job {job_id} failed: {status.get('error', 'unknown error')}"
                )
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {status['state']} after {timeout}s"
                )
            self._sleep(min(delay, max(0.0, deadline - time.monotonic())))
            delay = min(delay * 2.0, poll_max_s)

    def run(self, spec: dict, timeout: float = 600.0, poll_s: float = 0.05) -> dict:
        """Submit and wait — the one-call path scripts want."""
        return self.wait(self.submit(spec)["id"], timeout=timeout, poll_s=poll_s)

    def metrics(self) -> str:
        _, _, body = self._request("/metrics")
        return body.decode("utf-8")

    def healthy(self) -> bool:
        try:
            status, _, _ = self._request("/healthz")
        except ServiceError:
            return False
        return status == 200

    def ready(self) -> bool:
        try:
            status, _, _ = self._request("/readyz")
        except ServiceError:
            return False
        return status == 200