"""Consistent-hash routing of job keys to worker processes.

The multi-process service pre-forks N workers behind one listener, so
any worker can receive any request.  Execution, though, wants an
*owner*: when a storm of identical specs lands across workers, the
cross-process single-flight protocol (claim files on the shared
:class:`~repro.parallel.cache.ResultCache`) serializes them — and the
race is cheapest when exactly one worker tries to claim first.  The
ring gives every job key a deterministic owner; the queue counts
owned vs non-owned executions, and non-owners *can* be configured to
defer their first claim attempt (``single_flight_defer_s``) so the
owner usually wins the race.  Deferral is off by default: the claim
file is atomic, so exactly-once holds without it, and against a shared
cache directory a deferral buys no locality — only latency.

Consistent hashing (virtual nodes over SHA-256) rather than
``hash(key) % N`` so ownership barely moves when the worker count
changes — the same property that matters for cache affinity: a restart
at a different ``--workers`` remaps only ``~1/N`` of the key space.

Ownership is advisory.  A dead or slow owner never blocks anyone: the
deferral is tens of milliseconds, after which any worker claims, and
stale claims are stolen (see ``ResultCache.single_flight``).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Sequence

from repro.errors import ServiceError

__all__ = ["HashRing", "DEFAULT_REPLICAS"]

#: Virtual nodes per worker.  64 keeps the ownership spread within a few
#: percent of uniform for single-digit worker counts while the ring stays
#: a few hundred entries.
DEFAULT_REPLICAS = 64


def _hash64(text: str) -> int:
    """Stable 64-bit ring position (first 8 bytes of SHA-256)."""
    return int.from_bytes(hashlib.sha256(text.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Deterministic key → node mapping with virtual nodes.

    ``nodes`` are opaque worker tags (``"w0"``, ``"w1"``, ...).  The ring
    is immutable; the supervisor builds one per serve invocation and
    every worker builds the identical ring from the same tag list, so no
    coordination is needed for all processes to agree on ownership.
    """

    def __init__(self, nodes: Sequence[str], replicas: int = DEFAULT_REPLICAS) -> None:
        if not nodes:
            raise ServiceError("hash ring needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise ServiceError(f"hash ring nodes must be unique: {list(nodes)}")
        if replicas < 1:
            raise ServiceError(f"replicas must be >= 1, got {replicas}")
        self.nodes = tuple(nodes)
        points = sorted(
            (_hash64(f"{node}#{i}"), node)
            for node in self.nodes
            for i in range(replicas)
        )
        self._hashes = [h for h, _ in points]
        self._owners = [n for _, n in points]

    def node_for(self, key: str) -> str:
        """The owning node for ``key`` (first ring point at/after its hash)."""
        i = bisect.bisect_right(self._hashes, _hash64(key)) % len(self._hashes)
        return self._owners[i]

    def spread(self, keys: Sequence[str]) -> dict[str, int]:
        """Keys per owner (test/debug helper for balance assertions)."""
        out = {node: 0 for node in self.nodes}
        for key in keys:
            out[self.node_for(key)] += 1
        return out
