"""The stdlib HTTP front-end: ``drbw serve``.

Endpoints (all JSON unless noted):

* ``POST /v1/jobs``            — submit a job spec; ``202`` with the job's
  status payload, ``400`` for malformed specs, ``429`` +
  ``Retry-After`` when the queue is full or the client is over its
  token-bucket rate, ``503`` while draining;
* ``GET /v1/jobs/<id>``        — job status;
* ``GET /v1/jobs/<id>/result`` — the finished job's result, served as
  the *exact bytes* ``drbw <kind> --json`` would print for the same
  spec (``409`` while the job is still queued/running, ``500`` with the
  error for failed jobs);
* ``GET /healthz``             — liveness (text ``ok``);
* ``GET /readyz``              — readiness: ``200`` while accepting,
  ``503`` once draining;
* ``GET /metrics``             — Prometheus text: service lifecycle
  counters plus the aggregated pipeline telemetry of finished jobs.

Shutdown: :meth:`ServiceServer.request_shutdown` (wired to SIGTERM by
the CLI) flips readiness, lets the queue drain every accepted job, then
stops the listener — an orchestrator doing a rolling restart loses no
work that was ever acknowledged with a 202.
"""

from __future__ import annotations

import json
import logging
import os
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import ServiceError, ServiceSaturatedError
from repro.monitor.exposition import CONTENT_TYPE, render_prometheus_multi
from repro.service.accesslog import AccessLog
from repro.service.admission import PRIORITY_HEADER, AdmissionController
from repro.service.jobstore import Job
from repro.service.metricsagg import (
    merge_registry_dicts,
    read_snapshots,
    write_snapshot,
)
from repro.service.queue import ServiceQueue, TokenBucket, WAIT_SECONDS_BUCKETS
from repro.service.trace import TRACE_HEADER, TraceContext, mint_trace, parse_trace_header

__all__ = ["ServiceServer", "MAX_BODY_BYTES", "REQUEST_SECONDS_BUCKETS"]

logger = logging.getLogger(__name__)

#: Request bodies larger than this are rejected outright (413).
MAX_BODY_BYTES = 1 << 20

#: End-to-end HTTP request latency buckets (seconds).  Most requests are
#: status polls and cache hits in the low milliseconds; the tail is a
#: submit that waited on backpressure.
REQUEST_SECONDS_BUCKETS = WAIT_SECONDS_BUCKETS

#: Idle per-client rate-limit buckets last seen longer ago than this are
#: evicted (once fully refilled) so the map stays bounded at
#: millions-of-distinct-clients scale.
BUCKET_IDLE_TTL_S = 300.0

#: Multi-process mode: how often each worker refreshes its shared-file
#: metrics snapshot, so a scrape on any sibling covers this worker even
#: if this worker never serves a scrape itself.
METRICS_PUBLISH_INTERVAL_S = 1.0


class _ServiceHandler(BaseHTTPRequestHandler):
    service: ServiceServer  # bound by ServiceServer on the subclass

    # -- plumbing ---------------------------------------------------------------

    def _send(self, status: int, body: bytes, content_type: str,
              extra: dict[str, str] | None = None) -> None:
        self._sent_status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header(TRACE_HEADER, self._trace.header_value())
        for k, v in (extra or {}).items():
            self.send_header(k, v)
        self.end_headers()
        self.wfile.write(body)

    def _json(self, status: int, payload: dict,
              extra: dict[str, str] | None = None) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self._send(status, body, "application/json", extra)

    def _error(self, status: int, message: str,
               extra: dict[str, str] | None = None) -> None:
        self._json(status, {"error": message}, extra)

    def log_message(self, format: str, *args: object) -> None:
        logger.debug("service http: " + format, *args)

    # -- request-path observability ----------------------------------------------

    @staticmethod
    def _endpoint(path: str) -> str:
        if path in ("/healthz", "/readyz", "/metrics"):
            return path[1:]
        if path == "/v1/jobs":
            return "submit"
        if path.startswith("/v1/jobs/"):
            return "result" if path.endswith("/result") else "status"
        return "other"

    def _observe(self, route, method: str) -> None:
        """Run one route with trace extraction, RED metrics, access log.

        The trace context comes from the ``X-Drbw-Trace`` header when the
        client sent a well-formed one, else it is minted here — every
        request gets a trace identity, and the response echoes it back so
        headerless clients can still correlate.
        """
        t0 = time.perf_counter()
        self._sent_status: int | None = None
        self._job: Job | None = None
        self._trace: TraceContext = (
            parse_trace_header(self.headers.get(TRACE_HEADER)) or mint_trace()
        )
        path = self.path.split("?", 1)[0]
        try:
            route(path)
        finally:
            self.service.observe_request(
                method=method,
                path=path,
                endpoint=self._endpoint(path),
                # A route that died before sending anything surfaces as a
                # connection reset to the client; account it as a 500.
                status=self._sent_status if self._sent_status is not None else 500,
                duration_s=time.perf_counter() - t0,
                trace=self._trace,
                job=self._job,
            )

    # -- routes -----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler API
        self._observe(self._route_get, "GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler API
        self._observe(self._route_post, "POST")

    def _route_get(self, path: str) -> None:
        if path == "/healthz":
            self._send(200, b"ok\n", "text/plain; charset=utf-8")
            return
        if path == "/readyz":
            if self.service.ready:
                # "degraded" (cache circuit open, recent watchdog
                # incidents) still answers 200 — the instance serves
                # traffic — but the state/reasons let operators and
                # probes tell a limping instance from a healthy one.
                health = self.service.queue.health()
                self._json(200, {
                    "ready": True,
                    "state": health["state"],
                    "reasons": health["reasons"],
                    **self.service.queue.store.counts(),
                })
            else:
                self._error(503, "draining")
            return
        if path == "/metrics":
            body = self.service.render_metrics().encode("utf-8")
            self._send(200, body, CONTENT_TYPE)
            return
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            if rest.endswith("/result"):
                self._get_result(rest[: -len("/result")])
            else:
                self._get_status(rest)
            return
        self._error(404, f"no route for {path}")

    def _get_status(self, job_id: str) -> None:
        try:
            job = self.service.queue.store.get(job_id)
        except ServiceError as exc:
            # Multi-process mode: the job may live in a sibling worker.
            record = self.service.queue.store.lookup_record(job_id)
            if record is None:
                self._error(404, str(exc))
                return
            self._json(200, record["payload"])
            return
        self._job = job
        self._json(200, job.status_payload())

    def _get_result(self, job_id: str) -> None:
        try:
            job = self.service.queue.store.get(job_id)
        except ServiceError as exc:
            record = self.service.queue.store.lookup_record(job_id)
            if record is None:
                self._error(404, str(exc))
                return
            self._result_from_record(record)
            return
        self._job = job
        if job.state == "failed":
            self._error(500, job.error or "job failed")
            return
        if job.state != "done":
            self._json(409, {"error": "job not finished", "state": job.state},
                       extra={"Retry-After": "1"})
            return
        # The result bytes are exactly what `drbw <kind> --json` prints:
        # canonical JSON plus the trailing newline print() appends.
        body = (job.result_text or "").encode("utf-8") + b"\n"
        self._send(200, body, "application/json")

    def _result_from_record(self, record: dict) -> None:
        """Serve a sibling worker's job result from its shared record.

        Same contract as the in-memory path: the record's ``result_text``
        is the canonical bytes the accepting worker stored, so the
        response is byte-identical wherever the poll lands.
        """
        payload = record["payload"]
        state = payload.get("state")
        if state == "failed":
            self._error(500, payload.get("error") or "job failed")
            return
        if state != "done":
            self._json(409, {"error": "job not finished", "state": state},
                       extra={"Retry-After": "1"})
            return
        body = (record.get("result_text") or "").encode("utf-8") + b"\n"
        self._send(200, body, "application/json")

    def _route_post(self, path: str) -> None:
        if path != "/v1/jobs":
            self._error(404, f"no route for {path}")
            return
        client = self.client_address[0]
        limiter = self.service.limiter_for(client)
        if limiter is not None and not limiter.try_acquire():
            retry = max(limiter.retry_after, 0.001)
            self.service.queue.metrics.counter("service.rate_limited").inc()
            self._error(429, f"rate limit exceeded for {client}",
                        extra={"Retry-After": f"{retry:.3f}"})
            return
        admission = self.service.admission
        if admission is not None:
            try:
                decision = admission.decide(
                    self.headers.get(PRIORITY_HEADER),
                    self.service.queue.depth,
                    self.service.queue.capacity,
                )
            except ServiceError as exc:
                self._error(400, str(exc))
                return
            if not decision.admitted:
                self.service.queue.metrics.counter(
                    f"service.admission_rejected.{decision.priority}"
                ).inc()
                self._error(
                    429, decision.reason or "admission rejected",
                    extra={"Retry-After": f"{admission.retry_after_s:.3f}"},
                )
                return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._error(400, "bad Content-Length")
            return
        if length > MAX_BODY_BYTES:
            self._error(413, f"body too large ({length} > {MAX_BODY_BYTES})")
            return
        try:
            spec = json.loads(self.rfile.read(length))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._error(400, f"body is not JSON: {exc}")
            return
        try:
            job = self.service.queue.submit(spec, trace=self._trace)
        except ServiceSaturatedError as exc:
            self._error(429, str(exc),
                        extra={"Retry-After": f"{exc.retry_after:.3f}"})
            return
        except ServiceError as exc:
            status = 503 if self.service.queue.draining else 400
            self._error(status, str(exc))
            return
        self._job = job
        self._json(202, job.status_payload())


class ServiceServer:
    """The HTTP listener wrapping one :class:`ServiceQueue`.

    ``rate``/``burst`` configure the per-client token bucket
    (``rate=None`` disables rate limiting).  ``start()`` serves on a
    background thread (tests); :meth:`serve_forever` serves on the
    calling thread until :meth:`request_shutdown` (the CLI).
    """

    def __init__(
        self,
        queue: ServiceQueue,
        host: str = "127.0.0.1",
        port: int = 0,
        rate: float | None = None,
        burst: float = 10.0,
        access_log: AccessLog | None = None,
        bucket_ttl_s: float = BUCKET_IDLE_TTL_S,
        clock=time.monotonic,
        admission: AdmissionController | None = None,
        metrics_dir: str | os.PathLike | None = None,
        worker_id: str = "w0",
        listen_socket: socket.socket | None = None,
    ) -> None:
        self.queue = queue
        #: Optional priority-class gate, checked after the token buckets.
        self.admission = admission
        #: Multi-process mode: the shared directory where every worker
        #: publishes its metrics snapshot, and this worker's tag in it.
        #: ``None`` keeps the single-process render path byte-for-byte.
        self._metrics_dir = metrics_dir
        self.worker_id = worker_id
        self._rate = rate
        self._burst = burst
        self._access_log = access_log
        self._clock = clock
        self._bucket_ttl_s = bucket_ttl_s
        self._buckets: dict[str, TokenBucket] = {}
        self._bucket_last_seen: dict[str, float] = {}
        # Sweep no more than a few times per TTL: the sweep is O(clients)
        # and must not run on every request.
        self._bucket_sweep_interval = max(bucket_ttl_s / 4.0, 1e-9)
        self._last_bucket_sweep = clock()
        self._buckets_lock = threading.Lock()
        handler = type("_BoundHandler", (_ServiceHandler,), {"service": self})
        if listen_socket is not None:
            # A pre-bound listener from the multi-process supervisor:
            # either the fork-inherited shared socket or this worker's
            # own SO_REUSEPORT socket.  Adopt it instead of binding.
            addr = listen_socket.getsockname()[:2]
            self._server = ThreadingHTTPServer(
                addr, handler, bind_and_activate=False
            )
            self._server.socket.close()
            self._server.socket = listen_socket
            self._server.server_address = addr
            self._server.server_name = addr[0]
            self._server.server_port = addr[1]
        else:
            try:
                self._server = ThreadingHTTPServer((host, port), handler)
            except OSError as exc:
                raise ServiceError(
                    f"cannot bind service on {host}:{port}: {exc}"
                ) from exc
        self._server.daemon_threads = True
        self._thread: threading.Thread | None = None
        self._metrics_pub_stop = threading.Event()
        self._metrics_pub_thread: threading.Thread | None = None
        self._closed = False
        self._shutdown_started = False
        self._shutdown_lock = threading.Lock()

    # -- introspection ----------------------------------------------------------

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        host = self._server.server_address[0]
        return f"http://{host}:{self.port}"

    @property
    def ready(self) -> bool:
        return not self.queue.draining and not self._closed

    def limiter_for(self, client: str) -> TokenBucket | None:
        if self._rate is None:
            return None
        with self._buckets_lock:
            now = self._clock()
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = self._buckets[client] = TokenBucket(
                    self._rate, self._burst, clock=self._clock
                )
            self._bucket_last_seen[client] = now
            if now - self._last_bucket_sweep >= self._bucket_sweep_interval:
                self._evict_idle_buckets(now)
            self.queue.metrics.gauge("service.rate_limiter_buckets").set(
                len(self._buckets)
            )
            return bucket

    def _evict_idle_buckets(self, now: float) -> None:
        """Drop buckets idle past the TTL *and* fully refilled.

        Must run under ``_buckets_lock``.  The full-bucket condition means
        eviction never forgets refill debt: a client evicted and re-seen
        starts from exactly the state its bucket would have reached anyway.
        """
        self._last_bucket_sweep = now
        idle = [
            client
            for client, seen in self._bucket_last_seen.items()
            if now - seen >= self._bucket_ttl_s and self._buckets[client].is_full
        ]
        for client in idle:
            del self._buckets[client]
            del self._bucket_last_seen[client]
        if idle:
            self.queue.metrics.counter("service.rate_limiter_evictions").inc(
                len(idle)
            )

    def observe_request(
        self,
        *,
        method: str,
        path: str,
        endpoint: str,
        status: int,
        duration_s: float,
        trace: TraceContext,
        job: Job | None,
    ) -> None:
        """RED accounting + one access-log record for a finished request.

        Counters are per endpoint and status class
        (``service.http.requests.<endpoint>.<class>``); latency lands in a
        per-endpoint fixed-bucket histogram.  Both live on the queue's
        always-on lifecycle registry, so ``/metrics`` exposes them whether
        or not pipeline telemetry is enabled.
        """
        metrics = self.queue.metrics
        status_class = f"{status // 100}xx"
        metrics.counter(f"service.http.requests.{endpoint}.{status_class}").inc()
        metrics.histogram(
            f"service.http.request_seconds.{endpoint}", REQUEST_SECONDS_BUCKETS
        ).observe(duration_s)
        if self._access_log is not None:
            self._access_log.record(
                "http",
                method=method,
                path=path,
                endpoint=endpoint,
                status=status,
                duration_s=round(duration_s, 6),
                trace_id=trace.trace_id,
                span_id=trace.span_id,
                job_id=None if job is None else job.id,
                coalesced=None if job is None else job.coalesced,
                cache_hit=None if job is None else job.cache_hit,
            )

    def _refresh_gauges(self) -> None:
        """Point-in-time occupancy gauges, set just before any export."""
        counts = self.queue.store.counts()
        for state, n in counts.items():
            self.queue.metrics.gauge(f"service.jobs_{state}_now").set(n)
        self.queue.metrics.gauge("service.queue_depth").set(self.queue.depth)
        with self._buckets_lock:
            self.queue.metrics.gauge("service.rate_limiter_buckets").set(
                len(self._buckets)
            )

    def _registries(self) -> list[tuple[str, object]]:
        registries: list[tuple[str, object]] = [("drbw", self.queue.metrics)]
        if self.queue.telemetry.enabled:
            registries.append(("drbw_pipeline", self.queue.telemetry.metrics))
        return registries

    def _publish_snapshot(self) -> None:
        """Refresh this worker's shared-file snapshot (multi-process mode)."""
        self._refresh_gauges()
        write_snapshot(self._metrics_dir, self.worker_id, dict(self._registries()))

    def _publish_metrics_loop(self) -> None:
        while True:
            try:
                self._publish_snapshot()
            except Exception:  # noqa: BLE001 - export must not kill the worker
                logger.exception("metrics snapshot publish failed")
            if self._metrics_pub_stop.wait(METRICS_PUBLISH_INTERVAL_S):
                return

    def _start_metrics_publisher(self) -> None:
        if self._metrics_dir is None or self._metrics_pub_thread is not None:
            return
        self._metrics_pub_stop.clear()
        self._metrics_pub_thread = threading.Thread(
            target=self._publish_metrics_loop,
            name="drbw-metrics-publisher",
            daemon=True,
        )
        self._metrics_pub_thread.start()

    def render_metrics(self) -> str:
        """The ``/metrics`` page: service counters + pipeline aggregate.

        Single-process mode renders this worker's registries directly.
        In multi-process mode (``metrics_dir`` set) the scrape covers the
        fleet: refresh our own snapshot file, merge every worker's
        snapshot, and render the sums — so whichever worker the shared
        listener hands the scrape to, the page is the whole service.
        """
        self._refresh_gauges()
        registries = self._registries()
        if self._metrics_dir is None:
            return render_prometheus_multi(registries)
        write_snapshot(self._metrics_dir, self.worker_id, dict(registries))
        snapshots = read_snapshots(self._metrics_dir)
        namespaces = sorted({
            name for doc in snapshots for name in doc["registries"]
        })
        merged = [
            (
                ns,
                merge_registry_dicts([
                    doc["registries"][ns]
                    for doc in snapshots
                    if ns in doc["registries"]
                ]),
            )
            for ns in namespaces
        ]
        for ns, registry in merged:
            if ns == "drbw":
                registry.gauge("service.metrics_workers").set(len(snapshots))
        return render_prometheus_multi(merged)

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> ServiceServer:
        """Serve on a background thread (the test-facing entry point)."""
        if self._closed:
            raise ServiceError("service server already stopped")
        if self._thread is not None:
            raise ServiceError("service server already started")
        self.queue.start()
        self._start_metrics_publisher()
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="drbw-service", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`request_shutdown`."""
        self.queue.start()
        self._start_metrics_publisher()
        try:
            self._server.serve_forever()
        finally:
            self._close()

    def request_shutdown(self) -> None:
        """Begin a graceful drain: finish accepted jobs, then stop.

        Safe to call from a signal handler; idempotent.  The drain runs
        on a helper thread because ``queue.drain()`` blocks and a signal
        handler must not.
        """
        with self._shutdown_lock:
            if self._shutdown_started:
                return
            self._shutdown_started = True
        threading.Thread(
            target=self._drain_and_stop, name="drbw-service-drain", daemon=True
        ).start()

    def _drain_and_stop(self) -> None:
        try:
            self.queue.drain()
        finally:
            self._server.shutdown()

    def stop(self) -> None:
        """Immediate stop for tests: drain the queue, close the listener."""
        thread, self._thread = self._thread, None
        if thread is not None:
            self.queue.drain()
            self._server.shutdown()
            thread.join(timeout=30.0)
        self._close()

    def _close(self) -> None:
        if not self._closed:
            self._metrics_pub_stop.set()
            if self._metrics_pub_thread is not None:
                self._metrics_pub_thread.join(timeout=5.0)
                self._metrics_pub_thread = None
                # One last snapshot so the drained totals survive for
                # scrapes served by siblings after this worker exits.
                self._publish_snapshot()
            self._server.server_close()
            self._closed = True

    def __enter__(self) -> ServiceServer:
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
