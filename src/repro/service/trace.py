"""Request-trace propagation for the profiling service.

Every request carries a :class:`TraceContext` — a 128-bit ``trace_id``
naming the end-to-end request and a 64-bit ``span_id`` naming the hop
that sent it — serialized into the ``X-Drbw-Trace`` header as
``<32 hex>-<16 hex>`` (a deliberately minimal cousin of the W3C
``traceparent`` format).  :class:`~repro.service.client.ServiceClient`
mints a context per submission; the server mints one when the header is
absent or malformed, so *every* access-log record and job has a trace
identity regardless of what the client sent.

Parsing is tolerant by design: a proxy that mangles the header must
degrade to a fresh server-minted trace, never to a 4xx or a crash.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = [
    "TRACE_HEADER",
    "TraceContext",
    "mint_trace",
    "parse_trace_header",
]

#: HTTP header carrying the serialized trace context.
TRACE_HEADER = "X-Drbw-Trace"

_TRACE_ID_HEX = 32
_SPAN_ID_HEX = 16
_HEX_DIGITS = frozenset("0123456789abcdef")


def _rand_hex(n_hex: int) -> str:
    return os.urandom(n_hex // 2).hex()


@dataclass(frozen=True)
class TraceContext:
    """One request's identity: trace (end-to-end) + span (this hop)."""

    trace_id: str
    span_id: str

    def header_value(self) -> str:
        """Wire form for the ``X-Drbw-Trace`` header."""
        return f"{self.trace_id}-{self.span_id}"

    def child(self) -> "TraceContext":
        """Same trace, fresh span id — one per hop/request."""
        return TraceContext(self.trace_id, _rand_hex(_SPAN_ID_HEX))


def mint_trace() -> TraceContext:
    """A fresh trace with a fresh root span."""
    return TraceContext(_rand_hex(_TRACE_ID_HEX), _rand_hex(_SPAN_ID_HEX))


def _valid_id(value: str, length: int) -> bool:
    return (
        len(value) == length
        and set(value) <= _HEX_DIGITS
        and set(value) != {"0"}
    )


def parse_trace_header(value: object) -> TraceContext | None:
    """Parse an ``X-Drbw-Trace`` header value; ``None`` on any malformation.

    Accepts exactly ``<32 hex>-<16 hex>`` (case-insensitive, surrounding
    whitespace tolerated); all-zero ids are rejected per the traceparent
    convention.  Callers mint a fresh context on ``None`` — a mangled
    header must never fail a request.
    """
    if not isinstance(value, str):
        return None
    parts = value.strip().lower().split("-")
    if len(parts) != 2:
        return None
    trace_id, span_id = parts
    if not _valid_id(trace_id, _TRACE_ID_HEX) or not _valid_id(span_id, _SPAN_ID_HEX):
        return None
    return TraceContext(trace_id, span_id)
