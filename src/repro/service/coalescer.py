"""Request coalescing: identical in-flight jobs execute once.

Profiling jobs take seconds to minutes, so a burst of identical requests
(a dashboard refresh storm, a retrying client) would multiply that cost
for zero information.  The coalescer maps each job key — the SHA-256 of
the normalized spec — to the one *primary* job actually executing, and
attaches every later identical submission as a *follower*.  When the
primary finishes, all followers are finished with the primary's exact
result text, so every attached client reads the same bytes.

Not thread-safe on its own: every method is called under the owning
:class:`~repro.service.queue.ServiceQueue`'s lock, which is also what
makes "check for an in-flight primary, then attach or register" atomic.
"""

from __future__ import annotations

from repro.service.jobstore import Job

__all__ = ["Coalescer"]


class Coalescer:
    """key -> (primary job, followers) for jobs currently in flight."""

    def __init__(self) -> None:
        self._primary: dict[str, Job] = {}
        self._followers: dict[str, list[Job]] = {}

    def primary_for(self, key: str) -> Job | None:
        """The in-flight primary for ``key``, if any."""
        return self._primary.get(key)

    def register(self, key: str, job: Job) -> None:
        """Make ``job`` the primary execution for ``key``."""
        if key in self._primary:
            raise AssertionError(f"key {key[:12]} already has a primary")
        self._primary[key] = job
        self._followers[key] = []

    def attach(self, key: str, follower: Job) -> Job:
        """Attach ``follower`` to the in-flight primary; returns the primary.

        The follower keeps its own ``trace_id`` (each HTTP request is its
        own trace) but inherits the primary's as ``primary_trace_id`` so
        its access-log record resolves to the spans of the execution that
        actually produced its result.
        """
        primary = self._primary[key]
        follower.coalesced = True
        follower.primary_trace_id = primary.trace_id
        self._followers[key].append(follower)
        return primary

    def complete(self, key: str) -> list[Job]:
        """Retire ``key`` and return its followers (to be finished with
        the primary's result)."""
        self._primary.pop(key, None)
        return self._followers.pop(key, [])

    @property
    def in_flight(self) -> int:
        return len(self._primary)
