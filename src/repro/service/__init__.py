"""The DR-BW profiling service: batch jobs over HTTP, CLI-identical results.

``drbw serve`` runs a stdlib-only daemon that accepts profile / detect /
diagnose jobs as JSON specs, executes them on a bounded worker pool, and
serves results that are **byte-identical** to what the corresponding
``drbw`` command prints with ``--json`` (the two paths share one
executor, :func:`~repro.service.jobspec.execute_job`).

The moving parts, one module each:

* :mod:`~repro.service.jobspec`   — spec validation, canonical job
  identity, and execution;
* :mod:`~repro.service.jobstore`  — the in-memory job table and states;
* :mod:`~repro.service.coalescer` — identical in-flight jobs execute
  once, every submitter reads the same bytes;
* :mod:`~repro.service.queue`     — the bounded queue, worker threads,
  warm-result cache, and token-bucket rate limiter;
* :mod:`~repro.service.server`    — the HTTP endpoints, backpressure
  responses (429 + ``Retry-After``), and graceful SIGTERM drain;
* :mod:`~repro.service.mpserve`   — the ``--workers N`` pre-fork
  supervisor: shared listener (SO_REUSEPORT or inherited socket),
  cross-process single-flight, fleet drain;
* :mod:`~repro.service.routing`   — consistent-hash ownership of job
  keys across worker processes;
* :mod:`~repro.service.admission` — priority classes
  (``X-Drbw-Priority``) layered over the token buckets;
* :mod:`~repro.service.metricsagg` — ``/metrics`` snapshot merge so any
  worker's scrape covers the whole fleet;
* :mod:`~repro.service.client`    — a urllib client for scripts and the
  CI smoke test;
* :mod:`~repro.service.trace`     — ``X-Drbw-Trace`` request-trace
  propagation (client-minted or server-minted);
* :mod:`~repro.service.accesslog` — the structured JSONL access log
  (one record per HTTP request and per terminal job).

See ``docs/service.md`` for the operator's view, including the
"Request tracing & SLOs" section.
"""

from repro.service.accesslog import (
    ACCESS_LOG_VERSION,
    AccessLog,
    JsonlWriter,
    read_access_log,
    validate_access_record,
)
from repro.service.admission import (
    DEFAULT_PRIORITY,
    PRIORITIES,
    PRIORITY_HEADER,
    AdmissionController,
)
from repro.service.client import ServiceClient, parse_retry_after
from repro.service.coalescer import Coalescer
from repro.service.mpserve import ServiceSupervisor, WorkerConfig, build_worker_server
from repro.service.routing import HashRing
from repro.service.jobspec import (
    JOB_KINDS,
    execute_job,
    job_key,
    normalize_job,
)
from repro.service.jobstore import JOB_STATES, Job, JobStore
from repro.service.queue import (
    SERVICE_CACHE_SCHEMA,
    ServiceQueue,
    TokenBucket,
)
from repro.service.server import ServiceServer
from repro.service.trace import (
    TRACE_HEADER,
    TraceContext,
    mint_trace,
    parse_trace_header,
)

__all__ = [
    "ACCESS_LOG_VERSION",
    "AccessLog",
    "AdmissionController",
    "Coalescer",
    "DEFAULT_PRIORITY",
    "HashRing",
    "PRIORITIES",
    "PRIORITY_HEADER",
    "Job",
    "JobStore",
    "JOB_KINDS",
    "JOB_STATES",
    "JsonlWriter",
    "SERVICE_CACHE_SCHEMA",
    "ServiceClient",
    "ServiceQueue",
    "ServiceServer",
    "ServiceSupervisor",
    "TokenBucket",
    "WorkerConfig",
    "build_worker_server",
    "TRACE_HEADER",
    "TraceContext",
    "execute_job",
    "job_key",
    "mint_trace",
    "normalize_job",
    "parse_retry_after",
    "parse_trace_header",
    "read_access_log",
    "validate_access_record",
]
