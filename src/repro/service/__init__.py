"""The DR-BW profiling service: batch jobs over HTTP, CLI-identical results.

``drbw serve`` runs a stdlib-only daemon that accepts profile / detect /
diagnose jobs as JSON specs, executes them on a bounded worker pool, and
serves results that are **byte-identical** to what the corresponding
``drbw`` command prints with ``--json`` (the two paths share one
executor, :func:`~repro.service.jobspec.execute_job`).

The moving parts, one module each:

* :mod:`~repro.service.jobspec`   — spec validation, canonical job
  identity, and execution;
* :mod:`~repro.service.jobstore`  — the in-memory job table and states;
* :mod:`~repro.service.coalescer` — identical in-flight jobs execute
  once, every submitter reads the same bytes;
* :mod:`~repro.service.queue`     — the bounded queue, worker threads,
  warm-result cache, and token-bucket rate limiter;
* :mod:`~repro.service.server`    — the HTTP endpoints, backpressure
  responses (429 + ``Retry-After``), and graceful SIGTERM drain;
* :mod:`~repro.service.client`    — a urllib client for scripts and the
  CI smoke test.

See ``docs/service.md`` for the operator's view.
"""

from repro.service.client import ServiceClient
from repro.service.coalescer import Coalescer
from repro.service.jobspec import (
    JOB_KINDS,
    execute_job,
    job_key,
    normalize_job,
)
from repro.service.jobstore import JOB_STATES, Job, JobStore
from repro.service.queue import (
    SERVICE_CACHE_SCHEMA,
    ServiceQueue,
    TokenBucket,
)
from repro.service.server import ServiceServer

__all__ = [
    "Coalescer",
    "Job",
    "JobStore",
    "JOB_KINDS",
    "JOB_STATES",
    "SERVICE_CACHE_SCHEMA",
    "ServiceClient",
    "ServiceQueue",
    "ServiceServer",
    "TokenBucket",
    "execute_job",
    "job_key",
    "normalize_job",
]
