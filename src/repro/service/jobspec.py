"""Job specs: validation, canonical identity, and execution.

A job spec is a plain JSON dict naming one unit of pipeline work:

* ``{"kind": "detect", "benchmark": ..., ...}`` — profile one benchmark
  analog and classify every channel (the ``drbw detect`` computation);
* ``{"kind": "diagnose", ...}`` — detect, then rank contended data
  objects by Contribution Fraction (``drbw diagnose``);
* ``{"kind": "profile", "spec": <shard spec>, "seed": N}`` — execute one
  raw profile shard exactly as a campaign worker would
  (:func:`repro.parallel.shards.run_profile_shard`).

:func:`normalize_job` fills defaults and rejects malformed specs with a
typed :class:`~repro.errors.ServiceError`; :func:`job_key` hashes the
normalized spec (plus the package version) into the identity used for
request coalescing and the warm-result cache; :func:`execute_job` runs
the work and returns a plain-JSON result.

**Byte identity with the CLI** is by construction, not by test luck:
``drbw detect --json`` / ``drbw diagnose --json`` print
``canonical_json(execute_job(spec))`` for the spec built from their
arguments, and the service stores exactly those canonical bytes as the
job result — the same function produces both, so the service can never
drift from the command line.
"""

from __future__ import annotations

from typing import Any

import repro
from repro.errors import ConfigError, ServiceError
from repro.parallel.seeding import canonical_json, config_hash

__all__ = [
    "JOB_KINDS",
    "execute_job",
    "job_key",
    "normalize_job",
    "verdicts_payload",
    "degradation_payload",
    "diagnosis_payload",
]

#: Spec kinds the service executes.
JOB_KINDS = ("detect", "diagnose", "profile")

#: Keys allowed in a detect/diagnose spec (everything else is a typo we
#: reject rather than silently ignore — a misspelled ``seeed`` changing
#: the job identity but not the computation would poison the cache).
_DETECT_KEYS = {"kind", "benchmark", "input", "config", "seed", "faults", "model"}
_PROFILE_KEYS = {"kind", "spec", "seed"}


# -- result payload fragments (shared with the CLI) -------------------------------


def verdicts_payload(verdicts) -> list[dict]:
    """JSON form of per-channel verdicts, in sorted channel order."""
    return [
        {
            "channel": str(ch),
            "label": v.label,
            "mode": v.mode.value,
            "confidence": v.confidence,
            "n_remote_samples": v.n_remote_samples,
            "insufficient_data": v.insufficient_data,
        }
        for ch, v in sorted(verdicts.items())
    ]


def degradation_payload(d) -> dict:
    """JSON form of one run's quarantine/degradation ledger."""
    return {
        "observed": d.observed,
        "kept": d.kept,
        "quarantined": dict(d.quarantined),
        "injected": {k: v for k, v in d.injected.items() if v},
        "drop_fraction": d.drop_fraction,
        "resample_attempts": d.resample_attempts,
        "resampled_channels": [str(c) for c in d.resampled_channels],
    }


def diagnosis_payload(report) -> dict:
    """JSON form of a Contribution-Fraction diagnosis report."""
    return {
        "contended_channels": [str(c) for c in report.contended_channels],
        "attribution_coverage": report.attribution_coverage,
        "top": [
            {"name": c.name, "site": c.site, "cf": c.cf, "n_samples": c.n_samples}
            for c in report.top(10)
        ],
    }


# -- validation / identity --------------------------------------------------------


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ServiceError(message)


def normalize_job(spec: Any) -> dict:
    """Validated, default-filled copy of ``spec``.

    Normalization is what makes coalescing work: two requests that mean
    the same job must produce the same dict here (and therefore the same
    :func:`job_key`), even if one spelled out defaults the other omitted.
    """
    _require(isinstance(spec, dict), f"job spec must be a JSON object, got {type(spec).__name__}")
    kind = spec.get("kind")
    _require(kind in JOB_KINDS, f"job kind must be one of {JOB_KINDS}, got {kind!r}")

    if kind == "profile":
        unknown = set(spec) - _PROFILE_KEYS
        _require(not unknown, f"unknown profile job fields {sorted(unknown)}")
        shard = spec.get("spec")
        _require(isinstance(shard, dict), "profile job needs a 'spec' object (a shard spec)")
        seed = spec.get("seed", 0)
        _require(isinstance(seed, int) and not isinstance(seed, bool) and seed >= 0,
                 f"seed must be a non-negative integer, got {seed!r}")
        return {"kind": "profile", "spec": shard, "seed": seed}

    unknown = set(spec) - _DETECT_KEYS
    _require(not unknown, f"unknown {kind} job fields {sorted(unknown)}")
    benchmark = spec.get("benchmark")
    _require(isinstance(benchmark, str) and benchmark,
             f"{kind} job needs a 'benchmark' name")
    from repro.workloads.suites.registry import BENCHMARKS

    bench = BENCHMARKS.get(benchmark)
    _require(bench is not None, f"unknown benchmark {benchmark!r}")
    inp = spec.get("input") or bench.inputs[-1]
    _require(inp in bench.inputs,
             f"{benchmark} has inputs {list(bench.inputs)}, not {inp!r}")
    config = spec.get("config", "T32-N4")
    from repro.eval.configs import config_by_name

    try:
        config_by_name(config)
    except ConfigError as exc:
        raise ServiceError(str(exc)) from exc
    seed = spec.get("seed", 0)
    _require(isinstance(seed, int) and not isinstance(seed, bool) and seed >= 0,
             f"seed must be a non-negative integer, got {seed!r}")
    faults = spec.get("faults")
    _require(faults is None or isinstance(faults, str),
             "faults must be a preset/plan string or null")
    if faults is not None:
        from repro.faults import parse_fault_plan

        try:
            parse_fault_plan(faults)
        except ConfigError as exc:
            raise ServiceError(str(exc)) from exc
    model = spec.get("model")
    _require(model is None or isinstance(model, str),
             "model must be a path string or null")
    return {
        "kind": kind,
        "benchmark": benchmark,
        "input": inp,
        "config": config,
        "seed": seed,
        "faults": faults,
        "model": model,
    }


def job_key(spec: Any) -> str:
    """The job's coalescing/cache identity: SHA-256 over the normalized
    spec and the package version (a new release never replays old bytes)."""
    return config_hash({
        "job": normalize_job(spec),
        "version": repro.__version__,
    })


# -- execution --------------------------------------------------------------------


def _execute_detect(spec: dict) -> dict:
    from repro.core.classifier import DrBwClassifier, classify_case
    from repro.core.diagnoser import Diagnoser
    from repro.core.profiler import DrBwProfiler, ProfilerConfig
    from repro.core.training import train_default_classifier
    from repro.numasim.machine import Machine
    from repro.workloads.suites.registry import BENCHMARKS

    machine = Machine()
    if spec["model"]:
        clf = DrBwClassifier.load(spec["model"])
    else:
        clf, _ = train_default_classifier(machine, seed=spec["seed"])

    profiler_cfg = ProfilerConfig()
    if spec["faults"]:
        from repro.core.classifier import MIN_CHANNEL_SUPPORT
        from repro.faults import parse_fault_plan

        profiler_cfg = ProfilerConfig(
            faults=parse_fault_plan(spec["faults"]),
            resample_floor=MIN_CHANNEL_SUPPORT,
            resample_attempts=3,
        )

    from repro.eval.configs import config_by_name

    cfg = config_by_name(spec["config"])
    workload = BENCHMARKS[spec["benchmark"]].build(spec["input"])
    profile = DrBwProfiler(machine, profiler_cfg).profile(
        workload, cfg.n_threads, cfg.n_nodes, seed=spec["seed"]
    )
    verdicts = clf.classify_profile_detailed(profile)
    labels = {ch: v.mode for ch, v in verdicts.items()}
    verdict = classify_case(labels)

    from repro.types import Mode

    diagnosis = None
    if spec["kind"] == "diagnose" and verdict is Mode.RMC:
        diagnosis = Diagnoser().diagnose(profile, labels)

    result = {
        "kind": spec["kind"],
        "benchmark": spec["benchmark"],
        "input": spec["input"],
        "config": spec["config"],
        "seed": spec["seed"],
        "channel_verdicts": verdicts_payload(verdicts),
        "case_verdict": verdict.value,
        "degradation": degradation_payload(profile.dropped),
    }
    if spec["kind"] == "diagnose":
        result["diagnosis"] = diagnosis_payload(diagnosis) if diagnosis else None
    return result


def execute_job(spec: Any) -> dict:
    """Run one job and return its plain-JSON result.

    Accepts raw or normalized specs (normalization is idempotent), so
    the CLI and the service worker call the same entry point.  The
    result is canonical-JSON-serializable; the service stores
    ``canonical_json(result)`` verbatim as the job's result bytes.
    """
    spec = normalize_job(spec)
    from repro import telemetry

    # One root span per execution (zero-cost when telemetry is off): the
    # service worker's session always has at least this span to merge, so
    # every executed job's trace resolves to spans even if the pipeline
    # stages underneath change shape.
    attrs = (
        {"benchmark": spec["benchmark"]} if spec.get("benchmark") else {}
    )
    with telemetry.get_telemetry().span(
        f"service.execute.{spec['kind']}", **attrs
    ):
        if spec["kind"] == "profile":
            from repro.parallel.shards import run_profile_shard

            import json

            payload = run_profile_shard(spec["spec"], spec["seed"])
            # Round-trip through canonical JSON like the campaign runner,
            # so warm and fresh results are the same object shape.
            return json.loads(canonical_json(payload))
        return _execute_detect(spec)
