"""Admission control: priority classes layered over the token buckets.

The per-client token buckets answer "is this *client* sending too
fast?"; admission control answers "should this *class* of work get in
right now?".  Requests declare a priority via the ``X-Drbw-Priority``
header:

* ``interactive`` (the default, and what headerless clients get) — a
  person or probe is waiting; admitted whenever the queue has room;
* ``batch`` — backfill and bulk re-profiling; admitted only while the
  queue is shallower than ``batch_depth_fraction`` of its capacity, so
  batch traffic can never starve interactive traffic of queue slots.

Rejections are the same backpressure shape the service already speaks:
``429`` with ``Retry-After``, counted under
``service.admission_rejected.<priority>``.  An unknown priority value is
a client bug and maps to ``400``, not a silent default — a typo'd
``bacth`` silently running at interactive priority would defeat the
whole layer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ServiceError

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "PRIORITY_HEADER",
    "PRIORITIES",
    "DEFAULT_PRIORITY",
]

#: Request header carrying the priority class.
PRIORITY_HEADER = "X-Drbw-Priority"

#: Known priority classes, highest first.
PRIORITIES = ("interactive", "batch")

DEFAULT_PRIORITY = "interactive"


@dataclass(frozen=True)
class AdmissionDecision:
    admitted: bool
    priority: str
    reason: str | None = None


class AdmissionController:
    """Queue-depth-aware gate for priority classes.

    Stateless between calls — the decision reads the live queue depth —
    so one controller is safely shared by every HTTP handler thread.
    """

    def __init__(self, batch_depth_fraction: float = 0.5,
                 retry_after_s: float = 1.0) -> None:
        if not 0.0 < batch_depth_fraction <= 1.0:
            raise ServiceError(
                "batch_depth_fraction must be in (0, 1], got "
                f"{batch_depth_fraction}"
            )
        self.batch_depth_fraction = batch_depth_fraction
        self.retry_after_s = retry_after_s

    def decide(self, priority: str | None, depth: int,
               capacity: int) -> AdmissionDecision:
        """Admit or reject one submission of class ``priority``.

        Raises :class:`ServiceError` for an unknown priority (the server
        maps that to 400 — see module docstring).
        """
        priority = priority or DEFAULT_PRIORITY
        if priority not in PRIORITIES:
            raise ServiceError(
                f"unknown priority {priority!r}; expected one of "
                f"{', '.join(PRIORITIES)}"
            )
        if priority == "batch":
            threshold = self.batch_depth_fraction * capacity
            if depth >= threshold:
                return AdmissionDecision(
                    False, priority,
                    f"batch admission closed: queue depth {depth} >= "
                    f"{threshold:g} ({self.batch_depth_fraction:.0%} of "
                    f"{capacity})",
                )
        return AdmissionDecision(True, priority)
