"""In-memory job registry: states, results, and status payloads.

A :class:`Job` moves ``queued -> running -> done`` (or ``failed``).
Jobs that attached to another in-flight execution (coalesced) or were
answered from the warm-result cache skip straight to ``done``; their
status payload says so, because "why was this instant?" is the first
question an operator asks.

The store is a dict behind one lock.  That is deliberate: the service
is a front-end for *minutes*-scale profiling jobs, so job-table
operations are never the bottleneck, and a single lock makes the
coalescing invariants (exactly one primary per key, followers finish
with the primary's exact result object) easy to prove.

Multi-process serving (PR 10) adds two things:

* an **id prefix** — pre-forked workers each run their own store, so ids
  must be unique fleet-wide (``job-w0-000001`` vs ``job-w1-000001``), or
  a status poll landing on the wrong worker could answer for the wrong
  job;
* a **shared record directory** — the kernel load-balances connections
  across workers, so the worker answering ``GET /v1/jobs/<id>`` is often
  not the one that accepted the job.  Every store publishes a small JSON
  record per job (at submit and at each terminal state, atomically via
  tmp + rename) that any sibling can serve status/result from.  Records
  from siblings are a *fallback*: the accepting worker always answers
  from memory, and a sibling's view may lag by one state transition
  (``queued`` while actually running), which a polling client cannot
  distinguish anyway.
"""

from __future__ import annotations

import itertools
import json
import logging
import os
import pathlib
import re
import tempfile
import threading
import time
from dataclasses import dataclass, field

from repro.errors import ServiceError

__all__ = ["Job", "JobStore", "JOB_STATES", "JOB_RECORD_SCHEMA"]

logger = logging.getLogger(__name__)

#: Envelope schema of the shared per-job record files.
JOB_RECORD_SCHEMA = "drbw-job-record"

#: Job ids are server-minted, but they arrive back via URLs — anything
#: outside this shape is rejected before touching the filesystem.
_SAFE_JOB_ID = re.compile(r"[A-Za-z0-9_-]+\Z")

#: Legal job states.
JOB_STATES = ("queued", "running", "done", "failed")


@dataclass
class Job:
    """One submitted job and everything the status endpoints report."""

    id: str
    key: str
    spec: dict
    state: str = "queued"
    #: Canonical-JSON result text (``done`` only) — the exact bytes the
    #: CLI ``--json`` path would print for the same spec.
    result_text: str | None = None
    error: str | None = None
    #: True when this job attached to another job's in-flight execution.
    coalesced: bool = False
    #: True when the result came from the warm cache without executing.
    cache_hit: bool = False
    #: Execution attempts so far (> 1 only after a watchdog requeue).
    attempts: int = 0
    #: Trace id of the submitting request (client-sent or server-minted);
    #: merged worker spans for an executed job are tagged with it.
    trace_id: str | None = None
    #: For coalesced followers: the primary's trace id — the trace whose
    #: execution actually produced this job's result.
    primary_trace_id: str | None = None
    created_s: float = field(default_factory=time.monotonic)
    started_s: float | None = None
    finished_s: float | None = None

    def status_payload(self) -> dict:
        """The JSON body of ``GET /v1/jobs/<id>``."""
        payload = {
            "id": self.id,
            "key": self.key,
            "kind": self.spec.get("kind"),
            "state": self.state,
            "coalesced": self.coalesced,
            "cache_hit": self.cache_hit,
        }
        if self.trace_id is not None:
            payload["trace_id"] = self.trace_id
        if self.primary_trace_id is not None:
            payload["primary_trace_id"] = self.primary_trace_id
        if self.attempts > 1:
            payload["attempts"] = self.attempts
        if self.error is not None:
            payload["error"] = self.error
        if self.finished_s is not None:
            base = self.started_s if self.started_s is not None else self.created_s
            payload["duration_s"] = round(self.finished_s - base, 6)
        return payload

    def queue_wait_s(self) -> float | None:
        """Seconds from submission to execution start (0 for instant paths)."""
        if self.started_s is not None:
            return max(0.0, self.started_s - self.created_s)
        if self.finished_s is not None:
            return max(0.0, self.finished_s - self.created_s)
        return None

    def exec_s(self) -> float | None:
        """Execution wall seconds (0 for cache hits / followers)."""
        if self.finished_s is None:
            return None
        if self.started_s is None:
            return 0.0
        return max(0.0, self.finished_s - self.started_s)


class JobStore:
    """Thread-safe id -> :class:`Job` table.

    ``prefix`` makes ids unique across pre-forked workers; ``shared_dir``
    (multi-process mode only) is where this store publishes per-job
    records and reads siblings' — see the module docstring.
    """

    def __init__(self, prefix: str = "job",
                 shared_dir: str | os.PathLike | None = None) -> None:
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._ids = itertools.count(1)
        self._prefix = prefix
        self._shared_dir = (
            pathlib.Path(shared_dir) if shared_dir is not None else None
        )

    def create(self, spec: dict, key: str) -> Job:
        with self._lock:
            job = Job(id=f"{self._prefix}-{next(self._ids):06d}", key=key, spec=spec)
            self._jobs[job.id] = job
        # Published outside the table lock: the record write is I/O, and
        # the job is already reachable by id.
        self.publish(job)
        return job

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}")
        return job

    # -- shared records (multi-process fallback) ---------------------------------

    def publish(self, job: Job) -> None:
        """Write ``job``'s shared record (atomic; no-op without a shared dir).

        Never raises: a sick shared directory must not fail the job it
        describes — siblings just see a stale (or missing) record.
        """
        if self._shared_dir is None:
            return
        doc = {
            "schema": JOB_RECORD_SCHEMA,
            "payload": job.status_payload(),
            "result_text": job.result_text,
        }
        try:
            self._shared_dir.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self._shared_dir, prefix=".tmp-job-")
            with os.fdopen(fd, "w") as fh:
                json.dump(doc, fh, sort_keys=True)
            os.replace(tmp, self._shared_dir / f"{job.id}.json")
        except OSError as exc:
            logger.warning("cannot publish job record for %s: %s", job.id, exc)

    def lookup_record(self, job_id: str) -> dict | None:
        """A sibling worker's record for ``job_id``, or None.

        Only consulted after :meth:`get` misses; returns the raw record
        dict (``payload`` + ``result_text``), never a live :class:`Job`.
        """
        if self._shared_dir is None or not _SAFE_JOB_ID.match(job_id):
            return None
        try:
            doc = json.loads((self._shared_dir / f"{job_id}.json").read_text())
        except (OSError, ValueError):
            return None
        if (
            isinstance(doc, dict)
            and doc.get("schema") == JOB_RECORD_SCHEMA
            and isinstance(doc.get("payload"), dict)
        ):
            return doc
        return None

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    def counts(self) -> dict[str, int]:
        """Jobs per state (for ``/readyz`` and the metrics gauges)."""
        out = dict.fromkeys(JOB_STATES, 0)
        with self._lock:
            for job in self._jobs.values():
                out[job.state] += 1
        return out
