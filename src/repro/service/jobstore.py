"""In-memory job registry: states, results, and status payloads.

A :class:`Job` moves ``queued -> running -> done`` (or ``failed``).
Jobs that attached to another in-flight execution (coalesced) or were
answered from the warm-result cache skip straight to ``done``; their
status payload says so, because "why was this instant?" is the first
question an operator asks.

The store is a dict behind one lock.  That is deliberate: the service
is a front-end for *minutes*-scale profiling jobs, so job-table
operations are never the bottleneck, and a single lock makes the
coalescing invariants (exactly one primary per key, followers finish
with the primary's exact result object) easy to prove.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field

from repro.errors import ServiceError

__all__ = ["Job", "JobStore", "JOB_STATES"]

#: Legal job states.
JOB_STATES = ("queued", "running", "done", "failed")


@dataclass
class Job:
    """One submitted job and everything the status endpoints report."""

    id: str
    key: str
    spec: dict
    state: str = "queued"
    #: Canonical-JSON result text (``done`` only) — the exact bytes the
    #: CLI ``--json`` path would print for the same spec.
    result_text: str | None = None
    error: str | None = None
    #: True when this job attached to another job's in-flight execution.
    coalesced: bool = False
    #: True when the result came from the warm cache without executing.
    cache_hit: bool = False
    #: Execution attempts so far (> 1 only after a watchdog requeue).
    attempts: int = 0
    #: Trace id of the submitting request (client-sent or server-minted);
    #: merged worker spans for an executed job are tagged with it.
    trace_id: str | None = None
    #: For coalesced followers: the primary's trace id — the trace whose
    #: execution actually produced this job's result.
    primary_trace_id: str | None = None
    created_s: float = field(default_factory=time.monotonic)
    started_s: float | None = None
    finished_s: float | None = None

    def status_payload(self) -> dict:
        """The JSON body of ``GET /v1/jobs/<id>``."""
        payload = {
            "id": self.id,
            "key": self.key,
            "kind": self.spec.get("kind"),
            "state": self.state,
            "coalesced": self.coalesced,
            "cache_hit": self.cache_hit,
        }
        if self.trace_id is not None:
            payload["trace_id"] = self.trace_id
        if self.primary_trace_id is not None:
            payload["primary_trace_id"] = self.primary_trace_id
        if self.attempts > 1:
            payload["attempts"] = self.attempts
        if self.error is not None:
            payload["error"] = self.error
        if self.finished_s is not None:
            base = self.started_s if self.started_s is not None else self.created_s
            payload["duration_s"] = round(self.finished_s - base, 6)
        return payload

    def queue_wait_s(self) -> float | None:
        """Seconds from submission to execution start (0 for instant paths)."""
        if self.started_s is not None:
            return max(0.0, self.started_s - self.created_s)
        if self.finished_s is not None:
            return max(0.0, self.finished_s - self.created_s)
        return None

    def exec_s(self) -> float | None:
        """Execution wall seconds (0 for cache hits / followers)."""
        if self.finished_s is None:
            return None
        if self.started_s is None:
            return 0.0
        return max(0.0, self.finished_s - self.started_s)


class JobStore:
    """Thread-safe id -> :class:`Job` table."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._ids = itertools.count(1)

    def create(self, spec: dict, key: str) -> Job:
        with self._lock:
            job = Job(id=f"job-{next(self._ids):06d}", key=key, spec=spec)
            self._jobs[job.id] = job
            return job

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}")
        return job

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    def counts(self) -> dict[str, int]:
        """Jobs per state (for ``/readyz`` and the metrics gauges)."""
        out = dict.fromkeys(JOB_STATES, 0)
        with self._lock:
            for job in self._jobs.values():
                out[job.state] += 1
        return out
