"""Cross-process ``/metrics`` aggregation via shared-file snapshots.

Each worker process owns a private :class:`~repro.telemetry.metrics.
MetricsRegistry`; a scrape can land on any worker, so the page must
cover the whole fleet.  The mechanism is the simplest thing that is
correct with no IPC: every worker serializes its registries
(``MetricsRegistry.to_dict()`` — plain JSON) to
``<metrics_dir>/metrics-<worker>.json`` atomically (tmp + rename),
refreshed on every scrape it serves; whichever worker answers
``/metrics`` writes its own snapshot first, reads every sibling file,
merges, and renders one exposition page through the standard
byte-deterministic renderer.

Merge semantics: counters and histograms sum (counts, sum; min-of-min /
max-of-max); gauges sum as well, because every gauge this service
exports is an additive occupancy count (queue depth, busy workers,
jobs-in-state, limiter buckets) — a fleet-level "how many in total"
is the operator-meaningful reading.  Snapshots from a worker that died
mid-write, or that are not yet written, are simply skipped: the page
degrades to covering the workers that have reported, never errors.
"""

from __future__ import annotations

import json
import logging
import os
import pathlib
import tempfile

from repro.telemetry.metrics import MetricsRegistry

__all__ = [
    "SNAPSHOT_SCHEMA",
    "write_snapshot",
    "read_snapshots",
    "merge_registry_dicts",
]

logger = logging.getLogger(__name__)

SNAPSHOT_SCHEMA = "drbw-metrics-snapshot"
SNAPSHOT_VERSION = 1


def write_snapshot(
    metrics_dir: str | os.PathLike,
    worker: str,
    registries: dict[str, MetricsRegistry],
) -> None:
    """Atomically publish one worker's registries (name → registry).

    Never raises: metrics export must not take down a serving worker, so
    a sick shared directory just logs and skips this refresh.
    """
    root = pathlib.Path(metrics_dir)
    doc = {
        "schema": SNAPSHOT_SCHEMA,
        "schema_version": SNAPSHOT_VERSION,
        "worker": worker,
        "registries": {name: reg.to_dict() for name, reg in registries.items()},
    }
    try:
        root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=root, prefix=".tmp-metrics-")
        with os.fdopen(fd, "w") as fh:
            json.dump(doc, fh, sort_keys=True)
        os.replace(tmp, root / f"metrics-{worker}.json")
    except OSError as exc:
        logger.warning("cannot publish metrics snapshot for %s: %s", worker, exc)


def read_snapshots(metrics_dir: str | os.PathLike) -> list[dict]:
    """Every readable, well-formed snapshot in ``metrics_dir``, sorted by
    worker tag (deterministic merge order)."""
    root = pathlib.Path(metrics_dir)
    docs = []
    try:
        paths = sorted(root.glob("metrics-*.json"))
    except OSError:
        return []
    for path in paths:
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError):
            continue  # mid-rename or corrupt: skip, never error the scrape
        if (
            isinstance(doc, dict)
            and doc.get("schema") == SNAPSHOT_SCHEMA
            and isinstance(doc.get("registries"), dict)
        ):
            docs.append(doc)
    return docs


def merge_registry_dicts(dicts: list[dict]) -> MetricsRegistry:
    """Fold ``MetricsRegistry.to_dict()`` payloads into one live registry."""
    merged = MetricsRegistry()
    for doc in dicts:
        for name, value in (doc.get("counters") or {}).items():
            merged.counter(name).inc(float(value))
        for name, value in (doc.get("gauges") or {}).items():
            gauge = merged.gauge(name)
            gauge.set(gauge.value + float(value))
        for name, h in (doc.get("histograms") or {}).items():
            boundaries = tuple(float(b) for b in h["boundaries"])
            hist = merged.histogram(name, boundaries)
            if hist.boundaries != boundaries:
                # Same name, different buckets across workers: a config
                # skew bug.  Keep the first shape rather than corrupting.
                logger.warning("histogram %s has mismatched boundaries; "
                               "skipping one worker's shard", name)
                continue
            hist.counts = [a + int(b) for a, b in zip(hist.counts, h["counts"])]
            hist.count += int(h["count"])
            hist.sum += float(h["sum"])
            if h.get("min") is not None:
                hist.min = min(hist.min, float(h["min"]))
            if h.get("max") is not None:
                hist.max = max(hist.max, float(h["max"]))
    return merged
