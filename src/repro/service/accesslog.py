"""Structured JSONL access log for the profiling service.

Two record kinds share one file (and one schema version):

``http``
    One record per HTTP request, written by the server after the
    response is sent: method, path, resolved endpoint, status, wall
    duration, and the request's trace/span ids (client-sent or
    server-minted).  Submit records additionally carry the job id and
    the ``coalesced``/``cache_hit`` flags the queue resolved.

``job``
    One record per job reaching a terminal state, written by the queue:
    job id, job kind as the endpoint, final state, queue wait and
    execution wall seconds, attempts, and the submitting request's
    trace id (coalesced followers also carry ``primary_trace_id`` — the
    trace whose execution produced their result, which is the trace the
    merged worker spans are tagged with).

Every record carries ``v`` (schema version), ``kind``, ``ts`` (unix
seconds), and a non-empty ``trace_id``; :func:`read_access_log` enforces
exactly that and raises a typed :class:`~repro.errors.ServiceError` on
junk, so downstream joins (CI's trace ⇄ span check, the loadgen report)
never crash on a torn or hand-edited line.

Writers are thread-safe and flush per record: the log must survive a
SIGTERM mid-request with at most the final line torn, mirroring the
monitor's :class:`~repro.monitor.events.EventLog` discipline.
"""

from __future__ import annotations

import json
import pathlib
import threading
import time
from typing import Iterator

from repro.errors import ServiceError

__all__ = [
    "ACCESS_LOG_VERSION",
    "AccessLog",
    "JsonlWriter",
    "read_access_log",
    "validate_access_record",
]

#: Schema version stamped into every record as ``v``.
ACCESS_LOG_VERSION = 1

_RECORD_KINDS = frozenset({"http", "job"})


class JsonlWriter:
    """Thread-safe append-only JSONL sink (one flush per record)."""

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")
        self._lock = threading.Lock()

    def write(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with self._lock:
            if self._fh.closed:
                return
            self._fh.write(line + "\n")
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class AccessLog(JsonlWriter):
    """JSONL access log; stamps schema version and timestamp per record."""

    def record(self, kind: str, **fields: object) -> None:
        if kind not in _RECORD_KINDS:
            raise ServiceError(
                f"unknown access-log record kind {kind!r}; "
                f"expected one of {sorted(_RECORD_KINDS)}"
            )
        rec = {"v": ACCESS_LOG_VERSION, "kind": kind, "ts": round(time.time(), 6)}
        rec.update({k: v for k, v in fields.items() if v is not None})
        self.write(rec)


def validate_access_record(record: object) -> list[str]:
    """Schema problems for one parsed record (empty list = valid).

    Total over arbitrary JSON values — a list, scalar, or null record
    yields error strings, never an attribute crash.
    """
    if not isinstance(record, dict):
        return [f"record must be a JSON object, got {type(record).__name__}"]
    errors = []
    if record.get("v") != ACCESS_LOG_VERSION:
        errors.append(f"v must be {ACCESS_LOG_VERSION}, got {record.get('v')!r}")
    if record.get("kind") not in _RECORD_KINDS:
        errors.append(f"kind must be one of {sorted(_RECORD_KINDS)}, "
                      f"got {record.get('kind')!r}")
    ts = record.get("ts")
    if not isinstance(ts, (int, float)) or isinstance(ts, bool):
        errors.append(f"ts must be a number, got {ts!r}")
    trace_id = record.get("trace_id")
    if not isinstance(trace_id, str) or not trace_id:
        errors.append(f"trace_id must be a non-empty string, got {trace_id!r}")
    if record.get("kind") == "http":
        status = record.get("status")
        if not isinstance(status, int) or isinstance(status, bool):
            errors.append(f"http record status must be an integer, got {status!r}")
    if record.get("kind") == "job":
        for key in ("job_id", "state"):
            val = record.get(key)
            if not isinstance(val, str) or not val:
                errors.append(
                    f"job record {key} must be a non-empty string, got {val!r}"
                )
    return errors


def read_access_log(path: str | pathlib.Path) -> Iterator[dict]:
    """Yield validated records; :class:`ServiceError` on malformed lines.

    A trailing torn line (no newline, interrupted write) is tolerated and
    skipped; corruption anywhere else is a hard error — same contract as
    the campaign journal reader.
    """
    path = pathlib.Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ServiceError(f"cannot read access log {path}: {exc}") from exc
    lines = text.split("\n")
    # The writer flushes whole ``line + "\n"`` units, so a final element
    # without a trailing newline is a write the process died inside —
    # drop the fragment; every newline-terminated line must be valid.
    body = lines[:-1]
    for lineno, line in enumerate(body, start=1):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ServiceError(
                f"access log {path} line {lineno} is not valid JSON: {exc}"
            ) from exc
        errors = validate_access_record(record)
        if errors:
            raise ServiceError(
                f"access log {path} line {lineno} is invalid: {'; '.join(errors)}"
            )
        yield record
