"""Open- and closed-loop load generation against a live profiling service.

Two generators over :class:`~repro.service.client.ServiceClient`:

* :func:`run_closed_loop` — ``concurrency`` workers in a tight
  request/response loop for ``duration_s``.  Offered load adapts to the
  service (a slow server is offered less), which is what you want for
  measuring the throughput ceiling and for concurrency sweeps.
* :func:`run_open_loop` — a fixed arrival schedule at ``target_rps``
  regardless of completions, latencies measured from the *scheduled*
  arrival instant (not dispatch), so queueing delay behind a saturated
  sender pool is charged to the service — the standard defense against
  coordinated omission.

Every request is a full submit → poll → result round trip with its own
trace context (the client mints one per submission), so a loadgen run
leaves a joinable access log behind on the server.  Latencies are kept
both ways: the exact per-request list (ground truth for quantiles) and a
fixed-bucket :class:`~repro.telemetry.metrics.Histogram` whose
interpolated quantiles the SLO report cross-checks against the exact
ones — the same cross-check CI applies to the server-side histograms.

:func:`concurrency_sweep` + :func:`detect_knee` find the saturation
knee: the first sweep step whose marginal throughput per added worker
collapses below half the low-concurrency slope (or goes negative).
"""

from __future__ import annotations

import itertools
import math
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import ServiceError, ServiceSaturatedError, SloError
from repro.service.client import ServiceClient
from repro.telemetry.metrics import Histogram

__all__ = [
    "LATENCY_BUCKETS_S",
    "LoadgenResult",
    "run_closed_loop",
    "run_open_loop",
    "concurrency_sweep",
    "detect_knee",
]

#: Request-latency histogram buckets (seconds), 1 ms to 30 s.
LATENCY_BUCKETS_S: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Poll interval for loadgen waits — short, so measured latency is the
#: service's, not the poller's.
_POLL_S = 0.005


def _resolve_spec(job_spec, k: int) -> dict:
    """``job_spec`` is either one fixed dict (every request is the same
    job — exercises the coalescer and warm cache) or a factory over the
    request index (distinct jobs — every request is real work)."""
    return job_spec(k) if callable(job_spec) else job_spec


@dataclass
class LoadgenResult:
    """One load-generation run's raw outcome."""

    mode: str
    duration_s: float
    concurrency: int | None = None
    target_rps: float | None = None
    offered: int = 0
    ok: int = 0
    failed: int = 0
    rate_limited: int = 0
    #: Exact client-side latencies (seconds) of successful requests.
    latencies_s: list[float] = field(default_factory=list)
    histogram: Histogram = field(
        default_factory=lambda: Histogram(LATENCY_BUCKETS_S)
    )

    @property
    def availability(self) -> float:
        """Fraction of attempted requests that succeeded (429s count
        against it: a turned-away user is a failed user)."""
        return self.ok / self.offered if self.offered else 0.0

    @property
    def error_rate(self) -> float:
        return self.failed / self.offered if self.offered else 0.0

    @property
    def rate_limited_rate(self) -> float:
        return self.rate_limited / self.offered if self.offered else 0.0

    @property
    def achieved_rps(self) -> float:
        return self.ok / self.duration_s if self.duration_s > 0 else 0.0

    def exact_quantile(self, q: float) -> float:
        """The order statistic of rank ``ceil(q * n)`` (inverse CDF)."""
        if not 0.0 <= q <= 1.0:
            raise SloError(f"quantile must be in [0, 1], got {q}")
        if not self.latencies_s:
            return math.nan
        ordered = sorted(self.latencies_s)
        rank = max(1, math.ceil(q * len(ordered)))
        return ordered[rank - 1]

    def interpolated_quantile(self, q: float) -> float:
        """Histogram-interpolated quantile (what a server scrape yields)."""
        return self.histogram.quantile(q)

    def record(self, outcome: str, latency_s: float | None = None) -> None:
        """Account one finished request (``ok``/``failed``/``rate_limited``)."""
        self.offered += 1
        if outcome == "ok":
            self.ok += 1
            if latency_s is not None:
                self.latencies_s.append(latency_s)
                self.histogram.observe(latency_s)
        elif outcome == "rate_limited":
            self.rate_limited += 1
        else:
            self.failed += 1

    def to_dict(self) -> dict:
        """JSON-ready summary (exact latencies folded into quantiles)."""
        quantiles = {}
        for label, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
            exact = self.exact_quantile(q)
            interp = self.interpolated_quantile(q)
            entry: dict[str, object] = {
                "exact_ms": None if math.isnan(exact) else round(exact * 1e3, 3),
                "interpolated_ms": (
                    None if math.isnan(interp) else round(interp * 1e3, 3)
                ),
            }
            if not math.isnan(exact) and not math.isnan(interp):
                width = self.histogram.bucket_width(exact)
                entry["within_one_bucket"] = bool(
                    abs(interp - exact) <= width + 1e-12
                )
                entry["bucket_width_ms"] = round(width * 1e3, 3)
            quantiles[label] = entry
        return {
            "mode": self.mode,
            "duration_s": round(self.duration_s, 3),
            "concurrency": self.concurrency,
            "target_rps": self.target_rps,
            "offered": self.offered,
            "ok": self.ok,
            "failed": self.failed,
            "rate_limited": self.rate_limited,
            "availability": round(self.availability, 6),
            "error_rate": round(self.error_rate, 6),
            "rate_limited_rate": round(self.rate_limited_rate, 6),
            "achieved_rps": round(self.achieved_rps, 3),
            "quantiles": quantiles,
        }


def _one_request(
    client: ServiceClient,
    job_spec: dict,
    timeout: float,
    result: LoadgenResult,
    lock: threading.Lock,
    t_arrival: float,
) -> None:
    """Issue one round trip and account it (latency from ``t_arrival``)."""
    try:
        client.run(job_spec, timeout=timeout, poll_s=_POLL_S)
    except ServiceSaturatedError:
        with lock:
            result.record("rate_limited")
        return
    except ServiceError:
        with lock:
            result.record("failed")
        return
    latency = time.perf_counter() - t_arrival
    with lock:
        result.record("ok", latency)


def run_closed_loop(
    url: str,
    job_spec: dict | Callable[[int], dict],
    *,
    concurrency: int,
    duration_s: float,
    timeout: float = 30.0,
    client_factory: Callable[[str], ServiceClient] = ServiceClient,
) -> LoadgenResult:
    """``concurrency`` workers issuing back-to-back requests for ``duration_s``."""
    if concurrency < 1:
        raise SloError(f"concurrency must be >= 1, got {concurrency}")
    if duration_s <= 0:
        raise SloError(f"duration_s must be > 0, got {duration_s}")
    result = LoadgenResult(
        mode="closed", duration_s=duration_s, concurrency=concurrency
    )
    lock = threading.Lock()
    counter = itertools.count()  # CPython-atomic request index
    t_start = time.perf_counter()
    deadline = t_start + duration_s

    def worker() -> None:
        client = client_factory(url)
        while True:
            t0 = time.perf_counter()
            if t0 >= deadline:
                return
            spec = _resolve_spec(job_spec, next(counter))
            _one_request(client, spec, timeout, result, lock, t0)

    threads = [
        threading.Thread(target=worker, name=f"drbw-loadgen-{i}", daemon=True)
        for i in range(concurrency)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    result.duration_s = time.perf_counter() - t_start
    return result


def run_open_loop(
    url: str,
    job_spec: dict | Callable[[int], dict],
    *,
    target_rps: float,
    duration_s: float,
    timeout: float = 30.0,
    max_inflight: int = 64,
    client_factory: Callable[[str], ServiceClient] = ServiceClient,
) -> LoadgenResult:
    """A fixed arrival schedule at ``target_rps`` for ``duration_s``.

    Arrivals are scheduled on the clock, not on completions; each
    request's latency is measured from its *scheduled* arrival instant,
    so time spent queued behind ``max_inflight`` busy senders counts
    against the service (no coordinated omission).  The run waits for
    in-flight requests to finish before returning, but achieved RPS is
    computed over the arrival window.
    """
    if target_rps <= 0:
        raise SloError(f"target_rps must be > 0, got {target_rps}")
    if duration_s <= 0:
        raise SloError(f"duration_s must be > 0, got {duration_s}")
    if max_inflight < 1:
        raise SloError(f"max_inflight must be >= 1, got {max_inflight}")
    result = LoadgenResult(
        mode="open", duration_s=duration_s, target_rps=target_rps
    )
    lock = threading.Lock()
    interval = 1.0 / target_rps
    n_arrivals = max(1, int(target_rps * duration_s))
    # One client per sender slot, lazily bound to the executor thread.
    local = threading.local()

    def send(k: int, t_sched: float) -> None:
        client = getattr(local, "client", None)
        if client is None:
            client = local.client = client_factory(url)
        spec = _resolve_spec(job_spec, k)
        _one_request(client, spec, timeout, result, lock, t_sched)

    t_start = time.perf_counter()
    with ThreadPoolExecutor(
        max_workers=max_inflight, thread_name_prefix="drbw-loadgen"
    ) as pool:
        for k in range(n_arrivals):
            t_sched = t_start + k * interval
            now = time.perf_counter()
            if t_sched > now:
                time.sleep(t_sched - now)
            pool.submit(send, k, t_sched)
        # Context exit waits for the queue to drain; each request is
        # bounded by ``timeout``, so the drain is bounded too.
    result.duration_s = max(duration_s, 1e-9)
    return result


def concurrency_sweep(
    url: str,
    job_spec: dict | Callable[[int], dict],
    *,
    concurrencies: Sequence[int],
    duration_s: float,
    timeout: float = 30.0,
    client_factory: Callable[[str], ServiceClient] = ServiceClient,
) -> list[LoadgenResult]:
    """One closed-loop run per concurrency level, in the given order."""
    if not concurrencies:
        raise SloError("concurrency sweep needs at least one level")
    return [
        run_closed_loop(
            url,
            job_spec,
            concurrency=c,
            duration_s=duration_s,
            timeout=timeout,
            client_factory=client_factory,
        )
        for c in concurrencies
    ]


def detect_knee(
    results: Sequence[LoadgenResult], *, slope_fraction: float = 0.5
) -> dict | None:
    """The saturation knee of a concurrency sweep, or ``None``.

    The knee is the first sweep step whose marginal throughput per added
    worker drops below ``slope_fraction`` of the base slope (throughput
    per worker at the lowest concurrency) — beyond it, added concurrency
    buys queueing, not throughput.  Returns the knee point and both
    slopes; ``None`` when the sweep never bends (the service was not
    driven to saturation) or has fewer than two levels.
    """
    points = [
        (r.concurrency, r.achieved_rps)
        for r in results
        if r.concurrency is not None
    ]
    points.sort()
    if len(points) < 2:
        return None
    c0, r0 = points[0]
    if c0 <= 0 or r0 <= 0:
        return None
    base_slope = r0 / c0
    prev_c, prev_r = c0, r0
    for c, r in points[1:]:
        if c == prev_c:  # repeated level (e.g. a re-run): no slope to take
            prev_r = max(prev_r, r)
            continue
        marginal = (r - prev_r) / (c - prev_c)
        if marginal < slope_fraction * base_slope:
            return {
                "concurrency": prev_c,
                "achieved_rps": round(prev_r, 3),
                "next_concurrency": c,
                "marginal_rps_per_worker": round(marginal, 3),
                "base_rps_per_worker": round(base_slope, 3),
            }
        prev_c, prev_r = c, r
    return None
