"""Declarative SLO specs: what the service promises, as a JSON file.

A spec names the objective and its targets::

    {
      "schema": "drbw-slo-spec",
      "name": "service-default",
      "targets": {
        "availability": 0.99,
        "p99_ms": 250,
        "sustained_rps": 20
      }
    }

Targets (all optional, at least one required):

``availability``
    Minimum fraction of attempted requests that must succeed, in
    ``(0, 1]``.  Rate-limited (429) requests count against it — a user
    the service turned away is a user the service failed.
``p50_ms`` / ``p95_ms`` / ``p99_ms``
    Latency ceilings in milliseconds on the end-to-end request round
    trip (submit → result), checked against the *exact* client-side
    quantiles (the histogram-interpolated values are cross-checks, not
    the verdict).
``sustained_rps``
    Minimum achieved successful requests/second over the steady-state
    run.
``max_rate_limited``
    Maximum fraction of requests answered 429, in ``[0, 1)``.

Parsing is total over junk: any malformation raises a typed
:class:`~repro.errors.SloError` naming the offending field, never an
attribute crash (same discipline as every other JSON loader in the
repo — see ``tests/test_fuzz_loaders.py``).
"""

from __future__ import annotations

import json
import math
import pathlib
from dataclasses import dataclass, fields

from repro.errors import SloError

__all__ = ["SLO_SPEC_SCHEMA", "SloSpec", "parse_slo_spec", "load_slo_spec"]

#: Declared schema of an SLO spec document.
SLO_SPEC_SCHEMA = "drbw-slo-spec"

#: Target keys expressed as latency ceilings in milliseconds.
_LATENCY_TARGETS = ("p50_ms", "p95_ms", "p99_ms")


@dataclass(frozen=True)
class SloSpec:
    """One service-level objective: a name plus its targets."""

    name: str = "default"
    availability: float | None = None
    p50_ms: float | None = None
    p95_ms: float | None = None
    p99_ms: float | None = None
    sustained_rps: float | None = None
    max_rate_limited: float | None = None

    def targets(self) -> dict[str, float]:
        """The set targets as a plain dict (for reports and rendering)."""
        out = {}
        for f in fields(self):
            if f.name == "name":
                continue
            value = getattr(self, f.name)
            if value is not None:
                out[f.name] = value
        return out


_TARGET_KEYS = frozenset(
    f.name for f in fields(SloSpec) if f.name != "name"
)


def _number(targets: dict, key: str) -> float | None:
    value = targets.get(key)
    if value is None:
        return None
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise SloError(f"SLO target {key} must be a number, got {value!r}")
    value = float(value)
    if not math.isfinite(value):
        raise SloError(f"SLO target {key} must be finite, got {value!r}")
    return value


def parse_slo_spec(doc: object) -> SloSpec:
    """Parse one SLO spec document; :class:`SloError` on any malformation."""
    if not isinstance(doc, dict):
        raise SloError(
            f"SLO spec must be a JSON object, got {type(doc).__name__}"
        )
    schema = doc.get("schema")
    if schema != SLO_SPEC_SCHEMA:
        raise SloError(
            f"SLO spec schema must be {SLO_SPEC_SCHEMA!r}, got {schema!r}"
        )
    unknown_top = set(doc) - {"schema", "name", "targets"}
    if unknown_top:
        raise SloError(f"unknown SLO spec fields {sorted(unknown_top)}")
    name = doc.get("name", "default")
    if not isinstance(name, str) or not name:
        raise SloError(f"SLO spec name must be a non-empty string, got {name!r}")
    targets = doc.get("targets")
    if not isinstance(targets, dict):
        raise SloError(
            f"SLO spec needs a 'targets' object, got {type(targets).__name__}"
        )
    unknown = set(targets) - _TARGET_KEYS
    if unknown:
        raise SloError(
            f"unknown SLO targets {sorted(unknown)}; "
            f"known targets: {sorted(_TARGET_KEYS)}"
        )

    availability = _number(targets, "availability")
    if availability is not None and not 0.0 < availability <= 1.0:
        raise SloError(
            f"availability must be in (0, 1], got {availability}"
        )
    max_rate_limited = _number(targets, "max_rate_limited")
    if max_rate_limited is not None and not 0.0 <= max_rate_limited < 1.0:
        raise SloError(
            f"max_rate_limited must be in [0, 1), got {max_rate_limited}"
        )
    sustained_rps = _number(targets, "sustained_rps")
    if sustained_rps is not None and sustained_rps <= 0:
        raise SloError(f"sustained_rps must be > 0, got {sustained_rps}")
    latencies = {}
    for key in _LATENCY_TARGETS:
        value = _number(targets, key)
        if value is not None and value <= 0:
            raise SloError(f"{key} must be > 0 milliseconds, got {value}")
        latencies[key] = value

    spec = SloSpec(
        name=name,
        availability=availability,
        sustained_rps=sustained_rps,
        max_rate_limited=max_rate_limited,
        **latencies,
    )
    if not spec.targets():
        raise SloError("SLO spec sets no targets; at least one is required")
    return spec


def load_slo_spec(path: str | pathlib.Path) -> SloSpec:
    """Read and parse an SLO spec file; :class:`SloError` on any failure."""
    path = pathlib.Path(path)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise SloError(f"cannot read SLO spec {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise SloError(f"SLO spec {path} is not valid JSON: {exc}") from exc
    return parse_slo_spec(doc)
