"""Service-level objectives: load generation, quantiles, and SLO reports.

This package is the measurement half of the fleet-scale serving story:
before the service can promise anything to millions of users, someone
has to *state* the promise (a declarative :class:`~repro.slo.spec.SloSpec`
— availability, latency ceilings, sustained throughput) and *measure*
whether a live server keeps it.  Three modules:

* :mod:`~repro.slo.spec`    — the JSON SLO spec format and its loader;
* :mod:`~repro.slo.loadgen` — open-loop (target RPS) and closed-loop
  (fixed concurrency, plus concurrency sweeps with saturation-knee
  detection) load generation over
  :class:`~repro.service.client.ServiceClient`, recording exact
  client-side latencies alongside a fixed-bucket histogram;
* :mod:`~repro.slo.report`  — the ``drbw-slo-report`` artifact: measured
  rates, interpolated-vs-exact quantile cross-checks, knee, and a
  pass/fail verdict per SLO target (breach ⇒ nonzero CLI exit).

Driven by ``drbw loadgen``; published into the bench trajectory as the
``slo`` section from PR 8 on.  See ``docs/service.md``.
"""

from repro.slo.loadgen import (
    LATENCY_BUCKETS_S,
    LoadgenResult,
    concurrency_sweep,
    detect_knee,
    run_closed_loop,
    run_open_loop,
)
from repro.slo.report import (
    SLO_REPORT_SCHEMA,
    SLO_REPORT_SCHEMA_VERSION,
    build_report,
    render_report,
    validate_slo_report,
)
from repro.slo.spec import (
    SLO_SPEC_SCHEMA,
    SloSpec,
    load_slo_spec,
    parse_slo_spec,
)

__all__ = [
    "LATENCY_BUCKETS_S",
    "LoadgenResult",
    "SLO_REPORT_SCHEMA",
    "SLO_REPORT_SCHEMA_VERSION",
    "SLO_SPEC_SCHEMA",
    "SloSpec",
    "build_report",
    "concurrency_sweep",
    "detect_knee",
    "load_slo_spec",
    "parse_slo_spec",
    "render_report",
    "run_closed_loop",
    "run_open_loop",
    "validate_slo_report",
]
