"""The ``drbw-slo-report`` artifact: measurements, cross-checks, verdicts.

:func:`build_report` folds one or more loadgen runs into a single JSON
document:

* ``steady`` — the steady-state run's summary (the last run of a sweep,
  or the only run): availability, error/429 rates, achieved RPS, and
  p50/p95/p99 both exact (client-side order statistics) and
  histogram-interpolated, with a ``within_one_bucket`` bit per quantile
  (the acceptance cross-check: interpolation error is bounded by the
  bucket the exact value falls in);
* ``runs`` — every run's summary (the sweep curve);
* ``knee`` — the saturation knee when a sweep found one;
* ``slo`` — one check per spec target with its measured value and a
  pass/fail bit, plus the overall ``breached`` flag ``drbw loadgen``
  turns into a nonzero exit.

:func:`validate_slo_report` is total over junk (CI validates the file
the smoke job produced), and :func:`render_report` is the human view.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import SloError
from repro.slo.loadgen import LoadgenResult, detect_knee
from repro.slo.spec import SloSpec

__all__ = [
    "SLO_REPORT_SCHEMA",
    "SLO_REPORT_SCHEMA_VERSION",
    "build_report",
    "validate_slo_report",
    "render_report",
]

SLO_REPORT_SCHEMA = "drbw-slo-report"
SLO_REPORT_SCHEMA_VERSION = 1


def _latency_check(
    target_ms: float, steady: LoadgenResult, q: float
) -> tuple[float | None, bool]:
    """(measured exact quantile in ms, ok) for one latency ceiling."""
    exact = steady.exact_quantile(q)
    if math.isnan(exact):
        # No successful request produced a latency: a latency ceiling
        # cannot be met by a service that answered nothing.
        return None, False
    measured_ms = exact * 1e3
    return round(measured_ms, 3), measured_ms <= target_ms


def _slo_section(spec: SloSpec, steady: LoadgenResult) -> dict:
    checks: list[dict] = []

    def add(target: str, limit: float, measured, ok: bool, kind: str) -> None:
        checks.append({
            "target": target,
            "kind": kind,          # "min" or "max" against the limit
            "limit": limit,
            "measured": measured,
            "ok": bool(ok),
        })

    if spec.availability is not None:
        measured = round(steady.availability, 6)
        add("availability", spec.availability, measured,
            steady.availability >= spec.availability, "min")
    for target, q in (("p50_ms", 0.50), ("p95_ms", 0.95), ("p99_ms", 0.99)):
        limit = getattr(spec, target)
        if limit is not None:
            measured, ok = _latency_check(limit, steady, q)
            add(target, limit, measured, ok, "max")
    if spec.sustained_rps is not None:
        measured = round(steady.achieved_rps, 3)
        add("sustained_rps", spec.sustained_rps, measured,
            steady.achieved_rps >= spec.sustained_rps, "min")
    if spec.max_rate_limited is not None:
        measured = round(steady.rate_limited_rate, 6)
        add("max_rate_limited", spec.max_rate_limited, measured,
            steady.rate_limited_rate <= spec.max_rate_limited, "max")
    return {
        "name": spec.name,
        "targets": spec.targets(),
        "checks": checks,
        "breached": any(not c["ok"] for c in checks),
    }


def build_report(
    results: Sequence[LoadgenResult],
    spec: SloSpec | None = None,
    *,
    url: str | None = None,
    job: dict | None = None,
) -> dict:
    """Assemble the report; the *last* run is the steady-state verdict run."""
    if not results:
        raise SloError("an SLO report needs at least one loadgen run")
    steady = results[-1]
    report: dict = {
        "schema": SLO_REPORT_SCHEMA,
        "schema_version": SLO_REPORT_SCHEMA_VERSION,
        "url": url,
        "job": job,
        "runs": [r.to_dict() for r in results],
        "steady": steady.to_dict(),
        "knee": detect_knee(results) if len(results) > 1 else None,
    }
    report["slo"] = None if spec is None else _slo_section(spec, steady)
    return report


def validate_slo_report(doc: object) -> list[str]:
    """Schema problems (empty = valid); total over arbitrary JSON."""
    if not isinstance(doc, dict):
        return [f"report must be a JSON object, got {type(doc).__name__}"]
    errors = []
    if doc.get("schema") != SLO_REPORT_SCHEMA:
        errors.append(
            f"schema must be {SLO_REPORT_SCHEMA!r}, got {doc.get('schema')!r}"
        )
    if doc.get("schema_version") != SLO_REPORT_SCHEMA_VERSION:
        errors.append(
            f"unsupported schema_version {doc.get('schema_version')!r}"
        )
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        errors.append(f"runs must be a non-empty list, got {runs!r}")
    steady = doc.get("steady")
    if not isinstance(steady, dict):
        errors.append(f"steady must be an object, got {steady!r}")
    else:
        for key in ("availability", "achieved_rps"):
            val = steady.get(key)
            if not isinstance(val, (int, float)) or isinstance(val, bool):
                errors.append(f"steady.{key} must be a number, got {val!r}")
        quantiles = steady.get("quantiles")
        if not isinstance(quantiles, dict):
            errors.append(f"steady.quantiles must be an object, got {quantiles!r}")
        else:
            for label in ("p50", "p95", "p99"):
                if not isinstance(quantiles.get(label), dict):
                    errors.append(f"steady.quantiles.{label} must be an object")
    knee = doc.get("knee")
    if knee is not None and not isinstance(knee, dict):
        errors.append(f"knee must be an object or null, got {knee!r}")
    slo = doc.get("slo")
    if slo is not None:
        if not isinstance(slo, dict):
            errors.append(f"slo must be an object or null, got {slo!r}")
        else:
            if not isinstance(slo.get("breached"), bool):
                errors.append(
                    f"slo.breached must be a boolean, got {slo.get('breached')!r}"
                )
            checks = slo.get("checks")
            if not isinstance(checks, list):
                errors.append(f"slo.checks must be a list, got {checks!r}")
            else:
                for i, check in enumerate(checks):
                    if not isinstance(check, dict) or not isinstance(
                        check.get("ok"), bool
                    ):
                        errors.append(f"slo.checks[{i}] must carry a boolean ok")
    return errors


def render_report(report: dict) -> str:
    """Human-readable summary of a (valid) report document."""
    errors = validate_slo_report(report)
    if errors:
        raise SloError(f"cannot render invalid SLO report: {'; '.join(errors)}")
    steady = report["steady"]
    lines = [
        "SLO report",
        f"  url:            {report.get('url') or '-'}",
        f"  mode:           {steady.get('mode')} "
        f"(concurrency={steady.get('concurrency')}, "
        f"target_rps={steady.get('target_rps')})",
        f"  offered:        {steady.get('offered')} requests "
        f"over {steady.get('duration_s')}s",
        f"  availability:   {steady['availability']:.4f} "
        f"(failed {steady.get('failed')}, 429s {steady.get('rate_limited')})",
        f"  achieved_rps:   {steady['achieved_rps']:.1f}",
    ]
    for label in ("p50", "p95", "p99"):
        q = steady["quantiles"].get(label, {})
        exact = q.get("exact_ms")
        interp = q.get("interpolated_ms")
        mark = "" if q.get("within_one_bucket", True) else "  (DRIFTED)"
        lines.append(
            f"  {label}:            exact {exact} ms / "
            f"histogram {interp} ms{mark}"
        )
    knee = report.get("knee")
    if knee:
        lines.append(
            f"  knee:           concurrency {knee.get('concurrency')} "
            f"at {knee.get('achieved_rps')} rps "
            f"(marginal {knee.get('marginal_rps_per_worker')} rps/worker)"
        )
    elif len(report.get("runs", [])) > 1:
        lines.append("  knee:           not reached in this sweep")
    slo = report.get("slo")
    if slo:
        lines.append(f"  slo:            {slo.get('name')}")
        for check in slo["checks"]:
            verdict = "ok  " if check["ok"] else "FAIL"
            op = ">=" if check.get("kind") == "min" else "<="
            lines.append(
                f"    [{verdict}] {check['target']}: measured "
                f"{check['measured']} {op} {check['limit']}"
            )
        lines.append(
            "  verdict:        "
            + ("BREACHED" if slo["breached"] else "met")
        )
    return "\n".join(lines)
